"""Core plan data structures, TP engine, PP engine and placement."""

import pytest

from repro.core.placement import (
    PlacementOptimizer,
    global_cost,
    mesh_blocks,
    serpentine_placement,
)
from repro.core.plan import MemPair, RecomputeConfig, StagePlacement, TrainingPlan
from repro.core.pp_engine import PPEngine
from repro.core.tp_engine import TPEngine
from repro.interconnect.topology import MeshTopology
from repro.parallelism.strategies import ParallelismConfig


class TestRecomputeConfig:
    def test_none_has_empty_stages(self):
        cfg = RecomputeConfig.none(4)
        assert cfg.num_stages == 4
        assert all(not stage for stage in cfg.stages)

    def test_full_includes_all_recomputable(self, tiny_workload):
        ops = tiny_workload.layer_operators()
        cfg = RecomputeConfig.full(3, ops)
        assert cfg.stage(0) == frozenset(op.name for op in ops if op.recomputable)

    def test_fraction_between_zero_and_one(self, tiny_workload):
        ops = tiny_workload.layer_operators()
        none = RecomputeConfig.none(2)
        full = RecomputeConfig.full(2, ops)
        assert none.recompute_fraction(0, ops) == 0.0
        assert 0.0 < full.recompute_fraction(0, ops) <= 1.0

    def test_extra_flops_counts_recomputed_ops(self, tiny_workload):
        ops = tiny_workload.layer_operators()
        cfg = RecomputeConfig.uniform(2, ["mlp_up_proj"])
        expected = next(op.flops for op in ops if op.name == "mlp_up_proj")
        assert cfg.extra_forward_flops(0, ops) == pytest.approx(expected)

    def test_with_stage_replaces_one_entry(self):
        cfg = RecomputeConfig.none(3).with_stage(1, frozenset({"attn_norm"}))
        assert cfg.stage(1) == frozenset({"attn_norm"})
        assert cfg.stage(0) == frozenset()


class TestStagePlacement:
    def test_duplicate_die_rejected(self):
        with pytest.raises(ValueError):
            StagePlacement(stage_dies=(((0, 0),), ((0, 0),)))

    def test_center_and_distance(self):
        placement = StagePlacement(stage_dies=(((0, 0), (1, 0)), ((3, 0), (3, 1))))
        assert placement.center(0) == (0.5, 0.0)
        assert placement.stage_distance(0, 1) == pytest.approx(2.5 + 0.5)

    def test_boundary_dies_are_closest_pair(self):
        placement = StagePlacement(stage_dies=(((0, 0), (1, 0)), ((2, 0), (3, 3))))
        assert placement.boundary_dies(0, 1) == ((1, 0), (2, 0))

    def test_permuted_swaps_blocks(self):
        placement = StagePlacement(stage_dies=(((0, 0),), ((1, 0),), ((2, 0),)))
        swapped = placement.permuted([2, 1, 0])
        assert swapped.dies(0) == ((2, 0),)
        assert swapped.dies(2) == ((0, 0),)

    def test_permuted_requires_valid_permutation(self):
        placement = StagePlacement(stage_dies=(((0, 0),), ((1, 0),)))
        with pytest.raises(ValueError):
            placement.permuted([0, 0])


class TestTrainingPlan:
    def test_shape_must_match_tp(self):
        with pytest.raises(ValueError):
            TrainingPlan(parallelism=ParallelismConfig(tp=4, pp=2), tp_shape=(1, 2),
                         recompute=RecomputeConfig.none(2))

    def test_recompute_must_match_pp(self):
        with pytest.raises(ValueError):
            TrainingPlan(parallelism=ParallelismConfig(tp=1, pp=4), tp_shape=(1, 1),
                         recompute=RecomputeConfig.none(2))

    def test_builders_return_new_plans(self, tiny_workload):
        plan = TrainingPlan(parallelism=ParallelismConfig(tp=1, pp=2), tp_shape=(1, 1),
                            recompute=RecomputeConfig.none(2))
        updated = plan.with_mem_pairs([MemPair(0, 1, 10.0)])
        assert updated.mem_pairs and not plan.mem_pairs

    def test_mem_pair_validation(self):
        with pytest.raises(ValueError):
            MemPair(1, 1, 5.0)
        with pytest.raises(ValueError):
            MemPair(0, 1, -1.0)

    def test_label_mentions_parallelism(self):
        plan = TrainingPlan(parallelism=ParallelismConfig(tp=2, pp=2), tp_shape=(1, 2),
                            recompute=RecomputeConfig.none(2))
        assert "T(2)" in plan.label()


class TestMeshBlocksAndSerpentine:
    def test_blocks_tile_without_overlap(self):
        blocks = mesh_blocks(4, 4, (2, 2), 4)
        dies = [d for block in blocks for d in block]
        assert len(dies) == len(set(dies)) == 16

    def test_consecutive_blocks_are_adjacent(self):
        placement = serpentine_placement(4, 4, (2, 2), 4)
        for stage in range(3):
            assert placement.stage_distance(stage, stage + 1) <= 2.5

    def test_fallback_for_non_tiling_shapes(self):
        # 14 blocks of 2×2 dies on a 7×8 mesh cannot tile as rectangles but must still
        # produce a valid (serpentine-chopped) placement.
        blocks = mesh_blocks(7, 8, (2, 2), 14)
        assert len(blocks) == 14
        dies = [d for block in blocks for d in block]
        assert len(dies) == len(set(dies)) == 56

    def test_impossible_request_rejected(self):
        with pytest.raises(ValueError):
            mesh_blocks(4, 4, (2, 2), 5)
        with pytest.raises(ValueError):
            mesh_blocks(4, 4, (8, 1), 1)


class TestGlobalCostAndOptimizer:
    def test_colocated_pairs_cost_less(self):
        base = serpentine_placement(4, 4, (1, 1), 8)
        # Stage 4 sits far from stage 0 in the serpentine order; give their Mem_pair a
        # heavy weight so the placement that co-locates them wins despite a slightly
        # longer pipeline path (the Fig. 11 trade-off).
        pairs = [MemPair(0, 4, 10.0)]
        naive_cost = global_cost(base, pairs)
        order = list(range(8))
        order[4], order[7] = order[7], order[4]
        better_cost = global_cost(base.permuted(order), pairs)
        assert better_cost < naive_cost

    def test_pipeline_cost_counts_adjacent_stage_distance(self):
        placement = serpentine_placement(4, 4, (1, 1), 4)
        assert global_cost(placement, []) > 0.0

    def test_optimizer_never_worse_than_serpentine(self, small_wafer):
        mesh = MeshTopology.from_wafer(small_wafer)
        optimizer = PlacementOptimizer(mesh)
        pairs = [MemPair(0, 5, 4.0), MemPair(1, 4, 2.0)]
        base = serpentine_placement(4, 4, (1, 2), 6)
        optimized = optimizer.optimize((1, 2), 6, pairs)
        assert global_cost(optimized, pairs) <= global_cost(base, pairs)

    def test_optimizer_without_pairs_returns_serpentine(self, small_wafer):
        mesh = MeshTopology.from_wafer(small_wafer)
        optimized = PlacementOptimizer(mesh).optimize((2, 2), 4, ())
        assert optimized.stage_dies == serpentine_placement(4, 4, (2, 2), 4).stage_dies

    def test_local_search_path_used_for_deep_pipelines(self, small_wafer):
        mesh = MeshTopology.from_wafer(small_wafer)
        optimizer = PlacementOptimizer(mesh, exhaustive_limit=4, local_search_iterations=50)
        pairs = [MemPair(0, 7, 3.0)]
        placement = optimizer.optimize((1, 2), 8, pairs)
        assert placement.num_stages == 8


class TestTPEngine:
    @pytest.fixture
    def engine(self, small_wafer):
        return TPEngine(small_wafer)

    def test_stage_times_positive(self, engine, tiny_workload):
        times = engine.stage_times(tiny_workload, 0, 2, tp=2, pp=4)
        assert times.forward > 0 and times.backward > times.forward

    def test_tp_comm_zero_without_tensor_parallelism(self, engine, tiny_workload):
        times = engine.stage_times(tiny_workload, 1, 2, tp=1, pp=4)
        assert times.tp_comm == 0.0

    def test_tp_comm_grows_with_group_size(self, engine, tiny_workload):
        ops = tiny_workload.layer_operators()
        assert engine.layer_tp_comm_time(ops, 8) > engine.layer_tp_comm_time(ops, 2)

    def test_recomputation_adds_backward_time(self, engine, tiny_workload):
        plain = engine.stage_times(tiny_workload, 1, 2, tp=2, pp=4)
        recomputed = engine.stage_times(
            tiny_workload, 1, 2, tp=2, pp=4,
            recomputed_ops=frozenset({"mlp_up_proj", "qkv_proj"}),
        )
        assert recomputed.recompute > 0
        assert recomputed.backward_total > plain.backward_total
        assert recomputed.forward == pytest.approx(plain.forward)

    def test_edge_stages_pay_for_embeddings(self, engine, tiny_workload):
        first = engine.stage_times(tiny_workload, 0, 2, tp=2, pp=4)
        middle = engine.stage_times(tiny_workload, 1, 2, tp=2, pp=4)
        assert first.forward > middle.forward

    def test_degraded_compute_slows_stage(self, engine, tiny_workload):
        healthy = engine.stage_times(tiny_workload, 1, 2, tp=2, pp=4)
        degraded = engine.stage_times(tiny_workload, 1, 2, tp=2, pp=4, compute_throughput=0.5)
        assert degraded.forward > healthy.forward

    def test_degraded_links_slow_comm(self, engine, tiny_workload):
        ops = tiny_workload.layer_operators()
        assert engine.layer_tp_comm_time(ops, 4, link_quality=0.5) > engine.layer_tp_comm_time(ops, 4)

    def test_stage_forward_flops_counts_layers(self, engine, tiny_workload):
        one = engine.stage_forward_flops(tiny_workload, 1, 1, pp=4)
        two = engine.stage_forward_flops(tiny_workload, 1, 2, pp=4)
        assert two == pytest.approx(2.0 * one)

    def test_validation(self, engine, tiny_workload):
        with pytest.raises(ValueError):
            engine.stage_times(tiny_workload, 0, -1, tp=1, pp=2)
        with pytest.raises(ValueError):
            engine.stage_times(tiny_workload, 0, 1, tp=1, pp=2, compute_throughput=0.0)


class TestPPEngine:
    @pytest.fixture
    def mesh(self, small_wafer):
        return MeshTopology.from_wafer(small_wafer)

    def test_plan_has_one_boundary_per_stage_pair(self, mesh):
        placement = serpentine_placement(4, 4, (1, 1), 6)
        plan = PPEngine(mesh).plan(placement, activation_bytes=1e6)
        assert len(plan.boundary_times) == 5
        assert all(t > 0 for t in plan.boundary_times)

    def test_balance_traffic_adds_tasks_and_exposure(self, mesh):
        placement = serpentine_placement(4, 4, (1, 1), 8)
        pairs = [MemPair(0, 7, 5e9)]
        plan = PPEngine(mesh).plan(placement, 1e6, mem_pairs=pairs)
        kinds = {task.kind for task in plan.tasks}
        assert "balance" in kinds
        assert plan.balance_exposed_time > 0.0

    def test_no_balance_traffic_means_no_exposure(self, mesh):
        placement = serpentine_placement(4, 4, (1, 1), 4)
        plan = PPEngine(mesh).plan(placement, 1e6)
        assert plan.balance_exposed_time == 0.0

    def test_adjacent_stages_one_hop(self, mesh):
        placement = serpentine_placement(4, 4, (1, 1), 4)
        plan = PPEngine(mesh).plan(placement, 1e6)
        assert all(task.hops == 1 for task in plan.tasks if task.kind == "pipeline")

    def test_link_utilization_grows_with_more_stages(self, mesh):
        short = PPEngine(mesh).plan(serpentine_placement(4, 4, (1, 1), 3), 1e6)
        long = PPEngine(mesh).plan(serpentine_placement(4, 4, (1, 1), 12), 1e6)
        assert long.link_utilization > short.link_utilization

    def test_activation_bytes_helper(self, tiny_workload):
        expected = (
            tiny_workload.micro_batch_size * tiny_workload.seq_len
            * tiny_workload.model.hidden_size * 2
        )
        assert PPEngine.activation_bytes(tiny_workload) == pytest.approx(expected)

    def test_negative_activation_rejected(self, mesh):
        placement = serpentine_placement(4, 4, (1, 1), 2)
        with pytest.raises(ValueError):
            PPEngine(mesh).plan(placement, -1.0)
