"""Mesh, mesh-switch and multi-wafer topologies."""

import pytest

from repro.hardware.faults import FaultModel
from repro.interconnect.topology import MeshSwitchTopology, MeshTopology, MultiWaferTopology


@pytest.fixture
def mesh() -> MeshTopology:
    return MeshTopology(dies_x=4, dies_y=3, link_bandwidth=1e12)


class TestMesh:
    def test_die_and_link_counts(self, mesh):
        assert mesh.num_dies == 12
        assert len(mesh.dies()) == 12
        # Links: horizontal 3*3=9, vertical 4*2=8.
        assert len(mesh.links()) == 3 * 3 + 4 * 2

    def test_neighbors_at_corner_and_interior(self, mesh):
        assert len(mesh.neighbors((0, 0))) == 2
        assert len(mesh.neighbors((1, 1))) == 4

    def test_link_requires_adjacency(self, mesh):
        with pytest.raises(ValueError):
            mesh.link((0, 0), (2, 0))

    def test_from_wafer_uses_per_link_bandwidth(self, small_wafer):
        mesh = MeshTopology.from_wafer(small_wafer)
        assert mesh.link_bandwidth == pytest.approx(small_wafer.die.d2d_link_bandwidth)
        assert mesh.num_dies == small_wafer.num_dies

    def test_graph_has_all_nodes_and_edges_when_healthy(self, mesh):
        graph = mesh.graph()
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == len(mesh.links())

    def test_faults_remove_dead_dies_from_graph(self):
        faults = FaultModel()
        faults.add_die_fault((0, 0), 0.0)
        mesh = MeshTopology(4, 4, 1e12, faults=faults)
        graph = mesh.graph()
        assert (0, 0) not in graph
        assert len(mesh.healthy_dies()) == 15

    def test_degraded_link_reduces_bandwidth(self):
        faults = FaultModel()
        faults.add_link_fault(((0, 0), (1, 0)), 0.5)
        mesh = MeshTopology(4, 4, 1e12, faults=faults)
        assert mesh.link((0, 0), (1, 0)).bandwidth == pytest.approx(0.5e12)

    def test_dead_link_raises_when_used(self):
        faults = FaultModel()
        faults.add_link_fault(((0, 0), (1, 0)), 0.0)
        mesh = MeshTopology(4, 4, 1e12, faults=faults)
        with pytest.raises(ValueError):
            mesh.link((0, 0), (1, 0))

    def test_bisection_bandwidth(self, mesh):
        assert mesh.bisection_bandwidth() == pytest.approx(3e12)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 4, 1e12)
        with pytest.raises(ValueError):
            MeshTopology(4, 4, 0.0)


class TestMeshSwitch:
    def test_counts(self):
        topo = MeshSwitchTopology(num_groups=12, group_shape=(2, 2),
                                  link_bandwidth=1e12, switch_bandwidth=1.6e12)
        assert topo.dies_per_group == 4
        assert topo.num_dies == 48

    def test_group_mesh_shape(self):
        topo = MeshSwitchTopology(6, (2, 3), 1e12, 1.6e12)
        mesh = topo.group_mesh()
        assert (mesh.dies_x, mesh.dies_y) == (2, 3)

    def test_switch_link_shares_bandwidth(self):
        topo = MeshSwitchTopology(8, (2, 2), 1e12, 1.6e12)
        assert topo.switch_link().bandwidth == pytest.approx(1.6e12 / 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshSwitchTopology(0, (2, 2), 1e12, 1.6e12)


class TestMultiWafer:
    def test_totals_scale_with_wafer_count(self, small_wafer):
        node = MultiWaferTopology(num_wafers=4, wafer=small_wafer, w2w_bandwidth=1.8e12)
        assert node.total_dies == 4 * small_wafer.num_dies
        assert node.total_flops == pytest.approx(4 * small_wafer.total_flops)
        assert node.total_dram_capacity == pytest.approx(4 * small_wafer.total_dram_capacity)

    def test_w2w_link(self, small_wafer):
        node = MultiWaferTopology(2, small_wafer, w2w_bandwidth=4e11)
        assert node.w2w_link().bandwidth == pytest.approx(4e11)

    def test_validation(self, small_wafer):
        with pytest.raises(ValueError):
            MultiWaferTopology(0, small_wafer, 1e12)
        with pytest.raises(ValueError):
            MultiWaferTopology(2, small_wafer, 0.0)
