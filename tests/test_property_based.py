"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import geomean, normalize
from repro.core.plan import RecomputeConfig
from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.collectives import CollectiveModel
from repro.interconnect.routing import manhattan_hops, xy_path
from repro.memsys.dataflow import Dataflow, external_memory_accesses, select_dataflow
from repro.memsys.sram import SramTiler
from repro.parallelism.pipeline import PipelineCostInputs, analytic_1f1b_time, simulate_1f1b
from repro.parallelism.strategies import enumerate_tp_pp
from repro.units import MB
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.transformer import build_layer_graph, layer_flops

from repro_testlib import make_tiny_model


coords = st.tuples(st.integers(0, 15), st.integers(0, 15))


@given(src=coords, dst=coords)
def test_xy_path_is_shortest_and_connected(src, dst):
    path = xy_path(src, dst)
    assert path[0] == src and path[-1] == dst
    assert len(path) - 1 == manhattan_hops(src, dst)
    for a, b in zip(path, path[1:]):
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


@given(
    size=st.floats(min_value=1.0, max_value=1e12),
    group=st.integers(min_value=2, max_value=64),
)
def test_ring_all_reduce_respects_bandwidth_lower_bound(size, group):
    model = CollectiveModel(AlphaBetaLink(1e12, 1e-7), group)
    lower_bound = 2.0 * (group - 1) / group * size / (2.0 * 1e12)
    assert model.ring_all_reduce(size, bidirectional=True) >= lower_bound


@given(
    size=st.floats(min_value=1.0, max_value=1e12),
    group=st.integers(min_value=1, max_value=64),
)
def test_collectives_are_nonnegative_and_monotone_in_size(size, group):
    model = CollectiveModel(AlphaBetaLink(1e12, 1e-7), group)
    small = model.ring_all_reduce(size)
    large = model.ring_all_reduce(size * 2.0)
    assert small >= 0.0
    assert large >= small


@given(
    s=st.integers(1, 4096), h=st.integers(1, 4096), k=st.integers(1, 4096),
    m=st.integers(1, 64), n=st.integers(1, 64),
)
def test_selected_dataflow_is_never_worse_than_alternatives(s, h, k, m, n):
    _, best_ema = select_dataflow(s, h, k, m, n)
    for dataflow in (Dataflow.OUTPUT_STATIONARY, Dataflow.WEIGHT_STATIONARY, Dataflow.INPUT_STATIONARY):
        assert best_ema <= external_memory_accesses(s, h, k, m, n, dataflow) + 1e-9


@given(s=st.integers(1, 8192), h=st.integers(1, 8192), k=st.integers(1, 8192))
def test_sram_tiles_always_fit_budget(s, h, k):
    tiler = SramTiler(sram_bytes=1.25 * MB)
    plan = tiler.plan(s, h, k)
    assert plan.tile_bytes <= tiler.budget_bytes or (plan.tile_s == plan.tile_h == plan.tile_k == 1)
    assert plan.num_tiles >= 1


@given(
    pp=st.integers(1, 8),
    n=st.integers(1, 16),
    fwd=st.floats(0.001, 10.0),
    bwd=st.floats(0.001, 10.0),
)
@settings(max_examples=40, deadline=None)
def test_1f1b_simulation_bounds(pp, n, fwd, bwd):
    result = simulate_1f1b(
        PipelineCostInputs([fwd] * pp, [bwd] * pp, [0.0] * (pp - 1), n)
    )
    # Never faster than the work of one stage, never slower than fully serial execution.
    assert result.iteration_time >= n * (fwd + bwd) - 1e-9
    assert result.iteration_time <= pp * n * (fwd + bwd) + 1e-9
    assert math.isclose(result.iteration_time, analytic_1f1b_time(fwd, bwd, pp, n), rel_tol=1e-9)
    assert 0.0 <= result.bubble_fraction < 1.0


@given(mp=st.integers(1, 128), layers=st.integers(1, 128))
@settings(max_examples=60, deadline=None)
def test_enumerate_tp_pp_products_and_constraints(mp, layers):
    for tp, pp in enumerate_tp_pp(mp, layers):
        assert tp * pp == mp
        assert pp <= layers
        assert tp == 1 or tp % 2 == 0


@given(
    pp=st.integers(1, 12),
    tp=st.integers(1, 8),
    n=st.integers(1, 32),
    micro=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_memory_breakdown_invariants(pp, tp, n, micro):
    model = make_tiny_model()
    memory = TrainingMemoryModel(model)
    if pp > model.num_layers:
        pp = model.num_layers
    breakdown = memory.pipeline_breakdown(pp, tp, micro, 512, n)
    assert len(breakdown) == pp
    # Checkpoint retention never increases along the pipeline.
    checkpoints = [stage.checkpoint_bytes / max(1, memory.layers_per_stage(pp)[i])
                   for i, stage in enumerate(breakdown)]
    assert all(checkpoints[i] >= checkpoints[i + 1] - 1e-6 for i in range(pp - 1))
    # Everything is nonnegative and recomputation can only shrink the footprint.
    full = memory.pipeline_breakdown(pp, tp, micro, 512, n, [1.0] * pp)
    for plain, recomputed in zip(breakdown, full):
        assert plain.total_bytes >= recomputed.total_bytes - 1e-6
        assert recomputed.checkpoint_bytes == 0.0


@given(batch=st.integers(1, 8), seq=st.sampled_from([128, 256, 512, 1024]))
@settings(max_examples=20, deadline=None)
def test_layer_flops_scale_linearly_in_batch(batch, seq):
    model = make_tiny_model()
    single = layer_flops(model, 1, seq)
    scaled = layer_flops(model, batch, seq)
    assert scaled == math.isclose(scaled, batch * single, rel_tol=1e-9) and scaled or scaled
    assert math.isclose(scaled, batch * single, rel_tol=1e-9)


@given(
    values=st.dictionaries(
        st.text(min_size=1, max_size=5),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1, max_size=8,
    )
)
def test_normalize_minimum_is_one_or_all_zero(values):
    normalised = normalize(values)
    positive = [v for v in normalised.values() if v > 0]
    if positive:
        assert math.isclose(min(positive), 1.0, rel_tol=1e-9)
    for value in normalised.values():
        assert value >= 0.0


@given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=10))
def test_geomean_between_min_and_max(values):
    result = geomean(values)
    assert min(values) * 0.999 <= result <= max(values) * 1.001


@given(pp=st.integers(1, 10), names=st.lists(st.sampled_from(
    ["attn_norm", "qkv_proj", "mlp_up_proj", "mlp_down_proj"]), max_size=4))
def test_recompute_config_uniform_fraction_bounds(pp, names):
    model = make_tiny_model()
    ops = build_layer_graph(model, 1, 256)
    cfg = RecomputeConfig.uniform(pp, names)
    for stage in range(pp):
        fraction = cfg.recompute_fraction(stage, ops)
        assert 0.0 <= fraction <= 1.0
