"""alpha–beta link model."""

import pytest

from repro.interconnect.alphabeta import AlphaBetaLink, transfer_time


class TestTransferTime:
    def test_zero_bytes_cost_nothing(self):
        assert transfer_time(0.0, 1e12, 1e-6) == 0.0

    def test_latency_plus_bandwidth_term(self):
        assert transfer_time(1e12, 1e12, 1e-6) == pytest.approx(1.0 + 1e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(-1.0, 1e12)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(1.0, 0.0)


class TestLink:
    def test_transfer_time_matches_function(self):
        link = AlphaBetaLink(bandwidth=2e12, latency=5e-7)
        assert link.transfer_time(2e12) == pytest.approx(1.0 + 5e-7)

    def test_degraded_scales_bandwidth_only(self):
        link = AlphaBetaLink(bandwidth=1e12, latency=1e-7)
        degraded = link.degraded(0.5)
        assert degraded.bandwidth == pytest.approx(5e11)
        assert degraded.latency == link.latency

    def test_degraded_rejects_zero_quality(self):
        with pytest.raises(ValueError):
            AlphaBetaLink(1e12).degraded(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AlphaBetaLink(bandwidth=0.0)
        with pytest.raises(ValueError):
            AlphaBetaLink(bandwidth=1e12, latency=-1.0)
