"""The ``python -m repro`` CLI (run / sweep / cache) and the perf-gate tolerance fix."""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.api.cli import main as repro_main
from repro.core.evalcache import EvaluationCache, open_store

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _clean_runtime():
    from repro.api import close_default_session

    close_default_session()
    yield
    close_default_session()


# ------------------------------------------------------------------------------- run
class TestRunCommand:
    def test_inline_tiny_spec(self, tmp_path, capsys):
        out = str(tmp_path / "run.json")
        status = repro_main(
            ["run", "--kind", "scheduler", "--wafer", "tiny", "--workload", "tiny",
             "--json", out]
        )
        assert status == 0
        payload = json.loads(open(out).read())
        assert payload["plan"] and payload["metrics"]["throughput"] > 0
        assert payload["metrics"]["records"] > 0
        assert "scheduler" in capsys.readouterr().out

    def test_spec_file_and_store(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            {"kind": "ga", "wafer": "tiny", "workload": "tiny",
             "population": 4, "generations": 2, "name": "tiny-ga"}
        ))
        store = str(tmp_path / "run.jsonl")
        out = str(tmp_path / "run.json")
        assert repro_main(["run", "--spec", str(spec), "--store", store,
                           "--json", out]) == 0
        payload = json.loads(open(out).read())
        assert payload["label"] == "tiny-ga"
        assert payload["metrics"]["best_fitness"] > 0
        # The session flushed its cache to the store on exit.
        warm = EvaluationCache(store=store)
        assert warm.stats.loaded > 0
        warm.close()

    def test_missing_wafer_is_a_clear_error(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "--kind", "scheduler", "--workload", "tiny"])

    def test_sweep_runs_specs_on_one_session(self, tmp_path):
        specs = tmp_path / "matrix.json"
        specs.write_text(json.dumps([
            {"kind": "scheduler", "wafer": "tiny", "workload": "tiny", "name": "a"},
            {"kind": "scheduler", "wafer": "tiny", "workload": "tiny", "name": "b"},
        ]))
        out = str(tmp_path / "sweep.json")
        assert repro_main(["sweep", "--spec", str(specs), "--json", out]) == 0
        payload = json.loads(open(out).read())
        assert [run["label"] for run in payload["runs"]] == ["a", "b"]
        # Second spec hit the shared warm cache: zero extra misses.
        first, second = payload["runs"]
        assert second["cache_stats"]["misses"] == first["cache_stats"]["misses"]
        assert second["cache_stats"]["hits"] > first["cache_stats"]["hits"]

    def test_spec_from_stdin(self, tmp_path, monkeypatch):
        import io

        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(json.dumps(
                {"kind": "scheduler", "wafer": "tiny", "workload": "tiny"}
            )),
        )
        out = str(tmp_path / "run.json")
        assert repro_main(["run", "--spec", "-", "--json", out]) == 0
        assert json.loads(open(out).read())["metrics"]["throughput"] > 0


# ----------------------------------------------------------------------------- sweep
MATRIX = {
    "base": {"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
    "grid": {"scheduler.max_tp": [2, 4], "wafer": ["tiny"]},
    "seeds": 2,
}


class TestSweepCommand:
    def test_matrix_expands_streams_and_resumes(self, tmp_path, capsys):
        spec = tmp_path / "matrix.json"
        spec.write_text(json.dumps(MATRIX))
        results = str(tmp_path / "results.sqlite")

        # First invocation stops after one cell (a simulated kill mid-matrix).
        assert repro_main(["sweep", "--spec", str(spec), "--results", results,
                           "--max-cells", "1"]) == 0
        assert "4 cells — 1 run, 0 failed, 0 already complete, 3 pending" in capsys.readouterr().out

        # The resumed invocation runs only the remaining cells.
        out = str(tmp_path / "sweep.json")
        assert repro_main(["sweep", "--spec", str(spec), "--results", results,
                           "--json", out]) == 0
        assert "4 cells — 3 run, 0 failed, 1 already complete" in capsys.readouterr().out
        payload = json.loads(open(out).read())
        assert payload["cells"] == 4 and payload["skipped"] == 1
        assert len(payload["runs"]) == 3

        from repro.api import open_result_store

        with open_result_store(results) as store:
            assert len(store) == 4  # exactly one row per cell

    def test_max_cells_zero_runs_nothing(self, tmp_path, capsys):
        spec = tmp_path / "matrix.json"
        spec.write_text(json.dumps(MATRIX))
        results = str(tmp_path / "results.jsonl")
        assert repro_main(["sweep", "--spec", str(spec), "--results", results,
                           "--max-cells", "0"]) == 0
        assert "4 cells — 0 run, 0 failed, 0 already complete, 4 pending" in capsys.readouterr().out
        assert not os.path.exists(results)  # nothing ran, nothing written

    def test_matrix_from_stdin(self, tmp_path, monkeypatch, capsys):
        import io

        monkeypatch.setattr(sys, "stdin", io.StringIO(json.dumps(MATRIX)))
        assert repro_main(["sweep", "--spec", "-"]) == 0
        assert "4 cells — 4 run" in capsys.readouterr().out

    def test_bad_knob_path_fails_with_suggestion(self, tmp_path):
        spec = tmp_path / "matrix.json"
        spec.write_text(json.dumps(
            {"base": MATRIX["base"], "grid": {"scheduler.max_pt": [2]}}
        ))
        with pytest.raises(ValueError, match="max_pt.*did you mean"):
            repro_main(["sweep", "--spec", str(spec)])


# --------------------------------------------------------------------------- results
class TestResultsCommand:
    def _store(self, tmp_path):
        spec = tmp_path / "matrix.json"
        spec.write_text(json.dumps(MATRIX))
        results = str(tmp_path / "results.jsonl")
        assert repro_main(["sweep", "--spec", str(spec), "--results", results]) == 0
        return results

    def test_stats_tail_export(self, tmp_path, capsys):
        results = self._store(tmp_path)
        capsys.readouterr()

        assert repro_main(["results", "stats", results]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cells"] == 4 and stats["kinds"] == {"scheduler": 4}

        assert repro_main(["results", "tail", results, "-n", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 and all("scheduler" in line for line in lines)

        csv_out = str(tmp_path / "cells.csv")
        assert repro_main(["results", "export", results, "--csv", csv_out]) == 0
        rows = open(csv_out).read().strip().splitlines()
        assert len(rows) == 5  # header + one row per cell
        assert rows[0].startswith("cell_id,kind,label,plan,oom,status,attempts,error,seconds,")
        assert "throughput" in rows[0]

    def test_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert repro_main(["results", "stats", str(tmp_path / "absent.jsonl")]) == 1
        assert "no result store" in capsys.readouterr().err


# ----------------------------------------------------------------------------- cache
class TestCacheCommand:
    def test_stats_and_compact_with_max_age(self, tmp_path, capsys):
        path = str(tmp_path / "store.jsonl")
        store = open_store(path)
        store.append({"old": 1}, {"old": 50.0})
        store.append({"new": 2})  # stamped now
        store.close()

        assert repro_main(["cache", "stats", path]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2 and stats["oldest_priced_at"] == 50.0

        assert repro_main(["cache", "compact", path, "--max-age", "3600"]) == 0
        assert "1 kept" in capsys.readouterr().out
        survivors = open_store(path).load()
        assert survivors == {"new": 2}

    def test_compact_cache_script_max_age_flag(self, tmp_path, capsys):
        sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))
        try:
            import compact_cache
        finally:
            sys.path.pop(0)
        path = str(tmp_path / "store.jsonl")
        store = open_store(path)
        store.append({"old": 1}, {"old": 50.0})
        store.append({"new": 2})
        store.close()
        assert compact_cache.main([path, "--max-age", "3600"]) == 0
        assert "1 entries (1 evicted)" in capsys.readouterr().out
        assert open_store(path).load() == {"new": 2}

    def test_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert repro_main(["cache", "stats", str(tmp_path / "absent.jsonl")]) == 1
        assert "no store" in capsys.readouterr().err


# ------------------------------------------------------------------------- perf gate
@pytest.fixture()
def perf_gate():
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    try:
        import perf_gate as gate
    finally:
        sys.path.pop(0)
    return gate


class TestPerfGateTolerance:
    def _files(self, tmp_path, current: dict, baseline: dict):
        cur = tmp_path / "cur.json"
        base = tmp_path / "base.json"
        cur.write_text(json.dumps(current))
        base.write_text(json.dumps(baseline))
        return str(cur), str(base)

    def test_metric_missing_from_current_fails_with_message(
        self, perf_gate, tmp_path, capsys
    ):
        cur, base = self._files(
            tmp_path,
            {"evals_per_sec": 100.0},
            {"evals_per_sec": 10.0, "parallel_evals_per_sec": 10.0},
        )
        assert perf_gate.check(cur, base, max_drop=0.3) == 1
        out = capsys.readouterr().out
        assert "re-run the benchmark" in out and "Traceback" not in out

    def test_metric_missing_from_baseline_is_skipped(self, perf_gate, tmp_path, capsys):
        cur, base = self._files(
            tmp_path, {"evals_per_sec": 100.0}, {"evals_per_sec": 10.0}
        )
        assert perf_gate.check(cur, base, max_drop=0.3) == 0
        assert "SKIP" in capsys.readouterr().out
