"""Operator unit semantics: sharding, scaling and validation."""

import pytest

from repro.workloads.operators import CHEAP_TO_RECOMPUTE, Operator, OperatorKind


def make_gemm(flops=1e12, weight=1e6, ckpt=2e6, out=2e6, shardable=True):
    return Operator(
        name="gemm",
        kind=OperatorKind.GEMM,
        flops=flops,
        weight_bytes=weight,
        checkpoint_bytes=ckpt,
        output_bytes=out,
        tp_shardable=shardable,
        tp_allreduce_bytes=out,
    )


class TestValidation:
    def test_negative_quantities_rejected(self):
        with pytest.raises(ValueError):
            Operator(name="x", kind=OperatorKind.NORM, flops=-1.0)

    def test_backward_is_twice_forward(self):
        assert make_gemm(flops=10.0).backward_flops == pytest.approx(20.0)


class TestSharding:
    def test_sharded_divides_extensive_quantities(self):
        op = make_gemm()
        sharded = op.sharded(4)
        assert sharded.flops == pytest.approx(op.flops / 4)
        assert sharded.weight_bytes == pytest.approx(op.weight_bytes / 4)
        assert sharded.checkpoint_bytes == pytest.approx(op.checkpoint_bytes / 4)

    def test_sharding_by_one_is_identity(self):
        op = make_gemm()
        assert op.sharded(1) is op

    def test_non_shardable_operator_unchanged(self):
        op = make_gemm(shardable=False)
        assert op.sharded(8).flops == op.flops

    def test_invalid_tp_rejected(self):
        with pytest.raises(ValueError):
            make_gemm().sharded(0)


class TestScaling:
    def test_scaled_multiplies_activation_quantities(self):
        op = make_gemm()
        scaled = op.scaled(2.0)
        assert scaled.flops == pytest.approx(2.0 * op.flops)
        assert scaled.checkpoint_bytes == pytest.approx(2.0 * op.checkpoint_bytes)
        assert scaled.tp_allreduce_bytes == pytest.approx(2.0 * op.tp_allreduce_bytes)

    def test_scaled_leaves_weights_alone(self):
        op = make_gemm()
        assert op.scaled(4.0).weight_bytes == op.weight_bytes

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            make_gemm().scaled(0.0)


class TestKinds:
    def test_cheap_to_recompute_set(self):
        assert OperatorKind.NORM in CHEAP_TO_RECOMPUTE
        assert OperatorKind.GEMM not in CHEAP_TO_RECOMPUTE

    def test_all_kinds_have_distinct_values(self):
        values = [kind.value for kind in OperatorKind]
        assert len(values) == len(set(values))
