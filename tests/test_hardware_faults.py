"""Fault model: link/die degradation, dead components and random injection."""

import pytest

from repro.hardware.faults import FaultModel, FaultyDie, FaultyLink


class TestFaultEntries:
    def test_link_quality_bounds(self):
        with pytest.raises(ValueError):
            FaultyLink(((0, 0), (1, 0)), 1.5)
        with pytest.raises(ValueError):
            FaultyDie((0, 0), -0.1)

    def test_healthy_by_default(self):
        model = FaultModel()
        assert model.is_empty
        assert model.link_quality(((0, 0), (0, 1))) == 1.0
        assert model.die_throughput((3, 3)) == 1.0


class TestFaultQueries:
    def test_degraded_link(self):
        model = FaultModel()
        model.add_link_fault(((0, 0), (1, 0)), 0.5)
        assert model.link_quality(((0, 0), (1, 0))) == 0.5
        # Canonicalisation: order of endpoints does not matter.
        assert model.link_quality(((1, 0), (0, 0))) == 0.5

    def test_dead_die_kills_its_links(self):
        model = FaultModel()
        model.add_die_fault((1, 0), 0.0)
        assert model.link_quality(((0, 0), (1, 0))) == 0.0
        assert (1, 0) in model.dead_dies()

    def test_degraded_die_keeps_links_alive(self):
        model = FaultModel()
        model.add_die_fault((1, 0), 0.5)
        assert model.link_quality(((0, 0), (1, 0))) == 1.0
        assert model.die_throughput((1, 0)) == 0.5

    def test_dead_links_reported(self):
        model = FaultModel()
        model.add_link_fault(((2, 2), (2, 3)), 0.0)
        assert ((2, 2), (2, 3)) in model.dead_links()


class TestRandomInjection:
    def test_zero_rates_give_empty_model(self):
        model = FaultModel.random(4, 4, 0.0, 0.0, seed=1)
        assert model.is_empty

    def test_rates_control_fault_counts(self):
        model = FaultModel.random(8, 8, link_fault_rate=0.25, die_fault_rate=0.25, seed=2)
        total_links = 2 * 8 * 7
        assert len(model.link_faults) == round(0.25 * total_links)
        assert len(model.die_faults) == round(0.25 * 64)

    def test_deterministic_given_seed(self):
        a = FaultModel.random(6, 6, 0.2, 0.2, seed=7)
        b = FaultModel.random(6, 6, 0.2, 0.2, seed=7)
        assert a.link_faults.keys() == b.link_faults.keys()
        assert a.die_faults.keys() == b.die_faults.keys()

    def test_different_seeds_differ(self):
        a = FaultModel.random(8, 8, 0.3, 0.3, seed=1)
        b = FaultModel.random(8, 8, 0.3, 0.3, seed=2)
        assert a.link_faults.keys() != b.link_faults.keys() or a.die_faults.keys() != b.die_faults.keys()

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultModel.random(4, 4, link_fault_rate=1.5)

    def test_full_die_fault_rate_marks_every_die(self):
        model = FaultModel.random(3, 3, die_fault_rate=1.0, seed=0)
        assert len(model.die_faults) == 9
