"""Area model: wafer fit checks and the IO-budget trade-off of Fig. 4."""

import pytest

from repro.hardware.area import AreaBudgetError, AreaModel
from repro.hardware.template import DieConfig, DramChipletConfig, WaferConfig

from repro_testlib import make_small_wafer


@pytest.fixture
def area_model() -> AreaModel:
    return AreaModel()


class TestFit:
    def test_small_wafer_fits(self, area_model, small_wafer):
        assert area_model.fits(small_wafer)
        area_model.validate(small_wafer)  # must not raise

    def test_oversized_grid_does_not_fit(self, area_model, small_wafer):
        too_big = small_wafer.with_grid(40, 40)
        assert not area_model.fits(too_big)
        with pytest.raises(AreaBudgetError):
            area_model.validate(too_big)

    def test_area_utilization_increases_with_dies(self, area_model, small_wafer):
        denser = small_wafer.with_grid(5, 5)
        assert area_model.area_utilization(denser) > area_model.area_utilization(small_wafer)

    def test_usable_area_below_raw_area(self, area_model, small_wafer):
        assert area_model.usable_area(small_wafer) < small_wafer.usable_area_mm2


class TestIoBudget:
    def test_more_dram_chiplets_reduce_d2d_bandwidth(self, area_model, small_wafer):
        die = small_wafer.die
        few = area_model.derive_d2d_bandwidth(
            DieConfig(compute=die.compute, dram_chiplet=die.dram_chiplet, num_dram_chiplets=2)
        )
        many = area_model.derive_d2d_bandwidth(
            DieConfig(compute=die.compute, dram_chiplet=die.dram_chiplet, num_dram_chiplets=6)
        )
        assert many < few

    def test_3d_stacking_frees_full_edge_budget(self, area_model, small_wafer):
        die = small_wafer.die
        stacked = DieConfig(
            compute=die.compute, dram_chiplet=die.dram_chiplet,
            num_dram_chiplets=6, stacked_3d=True,
        )
        assert area_model.derive_d2d_bandwidth(stacked) == pytest.approx(
            die.compute.edge_io_bandwidth
        )

    def test_apply_io_budget_writes_derived_bandwidth(self, area_model, small_wafer):
        die = area_model.apply_io_budget(small_wafer.die)
        assert die.d2d_bandwidth == pytest.approx(
            area_model.derive_d2d_bandwidth(small_wafer.die)
        )

    def test_bandwidth_never_negative(self, area_model, small_wafer):
        die = small_wafer.die
        saturated = DieConfig(
            compute=die.compute,
            dram_chiplet=DramChipletConfig(interface_bandwidth=5e12),
            num_dram_chiplets=10,
        )
        assert area_model.derive_d2d_bandwidth(saturated) == 0.0


class TestTileDimensions:
    def test_tile_wider_than_compute_with_side_dram(self, area_model, small_wafer):
        width, height = area_model.tile_dimensions(small_wafer.die)
        assert width > small_wafer.die.compute.width_mm
        assert height == pytest.approx(small_wafer.die.compute.height_mm)

    def test_tile_equals_compute_when_stacked(self, area_model, small_wafer):
        die = small_wafer.die
        stacked = DieConfig(
            compute=die.compute, dram_chiplet=die.dram_chiplet,
            num_dram_chiplets=die.num_dram_chiplets, stacked_3d=True,
        )
        assert area_model.tile_dimensions(stacked) == (
            die.compute.width_mm, die.compute.height_mm
        )

    def test_max_dram_chiplets_monotone_in_wafer_size(self, area_model):
        small = make_small_wafer()
        tiny_wafer = WaferConfig(
            name="tiny", dies_x=small.dies_x, dies_y=small.dies_y, die=small.die,
            wafer_width_mm=60.0, wafer_height_mm=60.0,
        )
        assert area_model.max_dram_chiplets(small.die, small) >= area_model.max_dram_chiplets(
            small.die, tiny_wafer
        )
