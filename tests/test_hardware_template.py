"""Wafer hardware template: cores, dies, DRAM chiplets and wafer aggregation."""

import pytest

from repro.hardware.template import (
    ComputeDieConfig,
    CoreConfig,
    DieConfig,
    DramChipletConfig,
    WaferConfig,
    scale_wafer_compute,
)
from repro.units import GB, tflops


class TestCoreConfig:
    def test_defaults_match_paper_core(self):
        core = CoreConfig()
        assert core.flops_fp16 == pytest.approx(tflops(2.04))
        assert core.sram_bytes == pytest.approx(1.25 * 1024 ** 2)

    def test_rejects_nonpositive_compute(self):
        with pytest.raises(ValueError):
            CoreConfig(flops_fp16=0.0)

    def test_rejects_nonpositive_sram(self):
        with pytest.raises(ValueError):
            CoreConfig(sram_bytes=-1.0)


class TestComputeDie:
    def test_flops_scale_with_core_count(self):
        die = ComputeDieConfig(core_rows=4, core_cols=4, core=CoreConfig(flops_fp16=1e12))
        assert die.num_cores == 16
        assert die.flops_fp16 == pytest.approx(16e12)

    def test_sram_aggregates_over_cores(self):
        die = ComputeDieConfig(core_rows=2, core_cols=3, core=CoreConfig(sram_bytes=1e6))
        assert die.sram_bytes == pytest.approx(6e6)

    def test_area_and_aspect_ratio(self):
        die = ComputeDieConfig(width_mm=10.0, height_mm=20.0)
        assert die.area_mm2 == pytest.approx(200.0)
        assert die.aspect_ratio == pytest.approx(2.0)

    def test_aspect_ratio_is_orientation_independent(self):
        a = ComputeDieConfig(width_mm=10.0, height_mm=20.0)
        b = ComputeDieConfig(width_mm=20.0, height_mm=10.0)
        assert a.aspect_ratio == pytest.approx(b.aspect_ratio)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ComputeDieConfig(core_rows=0)
        with pytest.raises(ValueError):
            ComputeDieConfig(width_mm=-1.0)


class TestDieConfig:
    def test_dram_capacity_and_bandwidth_scale_with_chiplets(self):
        chiplet = DramChipletConfig(capacity_bytes=16 * GB, bandwidth=0.5e12)
        die = DieConfig(dram_chiplet=chiplet, num_dram_chiplets=4)
        assert die.dram_capacity == pytest.approx(64 * GB)
        assert die.dram_bandwidth == pytest.approx(2e12)

    def test_link_bandwidth_is_quarter_of_aggregate(self):
        die = DieConfig(d2d_bandwidth=4e12)
        assert die.d2d_link_bandwidth == pytest.approx(1e12)

    def test_footprint_includes_dram_chiplets(self):
        die = DieConfig(num_dram_chiplets=2)
        expected = die.compute.area_mm2 + 2 * die.dram_chiplet.area_mm2
        assert die.footprint_mm2 == pytest.approx(expected)

    def test_3d_stacking_removes_dram_from_footprint(self):
        die = DieConfig(num_dram_chiplets=6, stacked_3d=True)
        assert die.footprint_mm2 == pytest.approx(die.compute.area_mm2)

    def test_zero_chiplets_allowed(self):
        die = DieConfig(num_dram_chiplets=0)
        assert die.dram_capacity == 0.0

    def test_negative_chiplets_rejected(self):
        with pytest.raises(ValueError):
            DieConfig(num_dram_chiplets=-1)


class TestWaferConfig:
    def test_die_count_and_totals(self):
        wafer = WaferConfig(dies_x=4, dies_y=6)
        assert wafer.num_dies == 24
        assert wafer.total_flops == pytest.approx(24 * wafer.die.flops_fp16)
        assert wafer.total_dram_capacity == pytest.approx(24 * wafer.die.dram_capacity)

    def test_with_grid_returns_new_config(self):
        wafer = WaferConfig(dies_x=8, dies_y=8)
        resized = wafer.with_grid(4, 4)
        assert resized.num_dies == 16
        assert wafer.num_dies == 64  # original untouched

    def test_with_die_swaps_die(self):
        wafer = WaferConfig()
        new_die = DieConfig(num_dram_chiplets=1)
        assert wafer.with_die(new_die).die.num_dram_chiplets == 1

    def test_describe_contains_key_fields(self):
        info = WaferConfig(name="w").describe()
        for key in ("num_dies", "total_tflops", "dram_per_die_gb", "d2d_bw_per_die_tbps"):
            assert key in info

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            WaferConfig(dies_x=0)

    def test_occupied_area_scales_with_dies(self):
        wafer = WaferConfig(dies_x=2, dies_y=2)
        assert wafer.occupied_area_mm2 == pytest.approx(4 * wafer.die.footprint_mm2)


class TestScaleWaferCompute:
    def test_scales_to_target(self):
        wafer = WaferConfig(dies_x=2, dies_y=2)
        scaled = scale_wafer_compute(wafer, 8e15)
        assert scaled.total_flops == pytest.approx(8e15)

    def test_preserves_die_count(self):
        wafer = WaferConfig(dies_x=3, dies_y=3)
        scaled = scale_wafer_compute(wafer, 1e15)
        assert scaled.num_dies == wafer.num_dies

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            scale_wafer_compute(WaferConfig(), 0.0)
