"""Fault-tolerant sweep runtime under deterministic chaos (ISSUE 6).

The contract under test:

* :class:`ChaosMonkey` injects worker kills, delays and spawn denials at
  deterministic points (Nth task, tagged cell, token-bounded firings).
* A 2-worker pool with one worker killed mid-generation completes
  ``Session.sweep`` with a store **bit-identical** to a fault-free serial run.
* A poison cell that crashes its worker on every attempt is quarantined as a
  ``status="failed"`` row (traceback captured) while every other cell succeeds,
  and ``repro results stats`` / ``tail --status failed`` surface it.
* Resume re-attempts failed cells (``--skip-failed`` leaves them alone); once the
  fault clears, the healed store is byte-identical to a never-faulted run.
* A straggler past its :class:`RetryPolicy` ``timeout_s`` is killed, respawned
  and retried; total pool collapse degrades to in-process serial with one warning.
* ``tear_last_append`` (torn mid-append write) heals on the next load for both
  store backends: resume re-prices exactly the torn cell.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import (
    ExperimentSpec,
    Session,
    SweepSpec,
    close_default_session,
    open_result_store,
)
from repro.api.cli import main as repro_main
from repro.api.session import SweepCellError
from repro.core.chaos import ChaosMonkey, tear_last_append
from repro.core.parallel_map import WorkerPool
from repro.core.retry import RetryPolicy


@pytest.fixture(autouse=True)
def _clean_runtime():
    close_default_session()
    yield
    close_default_session()


def _square(x):
    return x * x


def _rows(path):
    """The deterministic result rows of a store, as canonical JSON per cell."""
    with open_result_store(path) as store:
        return {
            cell_id: json.dumps(record["result"], sort_keys=True)
            for cell_id, record in store.load().items()
        }


GA_SWEEP = {
    "base": {"kind": "ga", "wafer": "tiny", "workload": "tiny",
             "population": 4, "generations": 2},
    "seeds": 2,
}


# ------------------------------------------------------------------- retry policy
class TestRetryPolicy:
    def test_delay_is_deterministic_and_grows(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=1.0, backoff_factor=2.0,
                             jitter=0.1, seed=42)
        again = RetryPolicy(max_attempts=5, backoff_s=1.0, backoff_factor=2.0,
                            jitter=0.1, seed=42)
        delays = [policy.delay_s(n, "cell") for n in (1, 2, 3)]
        assert delays == [again.delay_s(n, "cell") for n in (1, 2, 3)]
        # Base progression 1, 2, 4 with at most ±10% jitter each.
        for base, got in zip([1.0, 2.0, 4.0], delays):
            assert base * 0.9 <= got <= base * 1.1
        # A different key draws different jitter from the same seed.
        assert policy.delay_s(1, "other") != delays[0]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(max_attempts=10, backoff_s=1.0, backoff_factor=10.0,
                             max_backoff_s=5.0, jitter=0.0)
        assert policy.delay_s(4) == 5.0

    def test_should_retry_counts_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)


# -------------------------------------------------------------- monkey mechanics
class TestChaosMonkeyMechanics:
    def test_token_budget_is_bounded(self, tmp_path):
        chaos = ChaosMonkey(tmp_path).delay(0.0, times=2)
        for _ in range(5):
            chaos._on_task(0, 1, "")
        assert chaos.claimed("delay") == 2

    def test_tag_and_worker_matching(self, tmp_path):
        chaos = ChaosMonkey(tmp_path).delay(0.0, tag="cell-a", worker=1, times=None)
        chaos._on_task(0, 1, "cell-a")  # wrong worker
        chaos._on_task(1, 1, "cell-b")  # wrong tag
        injection = chaos._injections[0]
        assert injection.seen == {}  # neither counted as a matching task
        chaos._on_task(1, 1, "sweep/cell-a/0")  # substring match fires
        assert injection.seen == {1: 1}

    def test_at_task_counts_matching_tasks_per_worker(self, tmp_path):
        chaos = ChaosMonkey(tmp_path).delay(0.0, at_task=3, times=1)
        assert chaos.claimed("delay") == 0
        chaos._on_task(0, 1, "")
        chaos._on_task(0, 2, "")
        assert chaos.claimed("delay") == 0
        chaos._on_task(0, 3, "")
        assert chaos.claimed("delay") == 1


# ------------------------------------------------------------- pool supervision
class TestPoolUnderChaos:
    def test_kill_one_worker_map_completes(self, tmp_path):
        with ChaosMonkey(tmp_path) as chaos:
            chaos.kill(worker=1, at_task=1, times=1)
            pool = WorkerPool(2)
            try:
                assert pool.map(_square, list(range(8))) == [x * x for x in range(8)]
                assert pool.crashes == 1 and pool.respawns == 1
                # The respawned worker serves the next map; the kill is spent.
                assert pool.map(_square, [9, 10]) == [81, 100]
            finally:
                pool.close()
        assert chaos.claimed("kill") == 1

    def test_total_collapse_degrades_to_serial(self, tmp_path):
        with ChaosMonkey(tmp_path) as chaos:
            chaos.kill(times=None)
            pool = WorkerPool(2)
            try:
                # Fork the (doomed) workers first, then make every respawn fail:
                # both die at their first task and no replacement can be had.
                pool._ensure_started()
                chaos.deny_spawns()
                with pytest.warns(RuntimeWarning, match="serial"):
                    assert pool.map(_square, list(range(6))) == [
                        x * x for x in range(6)
                    ]
                assert pool.crashes == 2
                # Every slot is dead and unspawnable: later maps are serial (and
                # the warning does not repeat).
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    assert pool.map(_square, [7]) == [49]
            finally:
                pool.close()

    def test_spawn_denied_from_the_start_runs_serial(self, tmp_path):
        with ChaosMonkey(tmp_path) as chaos:
            chaos.deny_spawns()
            pool = WorkerPool(2)
            try:
                with pytest.warns(RuntimeWarning, match="serial"):
                    assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            finally:
                pool.close()


# ----------------------------------------------------------- sweeps under chaos
class TestSweepUnderChaos:
    def test_worker_kill_mid_sweep_is_bit_identical_to_serial(self, tmp_path):
        sweep = SweepSpec.from_payload(GA_SWEEP)
        fresh = str(tmp_path / "fresh.jsonl")
        with Session() as session:  # fault-free serial reference
            assert len(list(session.sweep(sweep, results=fresh))) == 2

        chaotic = str(tmp_path / "chaotic.jsonl")
        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.kill(worker=1, at_task=2, times=1)
            with Session(workers=2) as session:
                runs = list(session.sweep(sweep, results=chaotic))
                assert session.pool.crashes == 1
                assert session.pool.respawns == 1
        assert chaos.claimed("kill") == 1
        assert all(run.status == "ok" for run in runs)
        assert _rows(chaotic) == _rows(fresh)

    def test_poison_cell_is_quarantined_and_surfaced(self, tmp_path, capsys):
        sweep = SweepSpec.from_payload(GA_SWEEP)
        cells = sweep.expand()
        poison = cells[0].cell_id
        results = str(tmp_path / "results.sqlite")
        retry = RetryPolicy(max_attempts=3, backoff_s=0.0)

        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.kill(tag=poison, worker=1, times=None)
            # chunk_retries=0 makes every worker crash fatal to its attempt, so
            # 3 retry attempts mean exactly 3 crashes (of worker 1, every time).
            pool = WorkerPool(2, chunk_retries=0)
            with Session(workers=pool) as session:
                runs = {
                    run.cell_id: run
                    for run in session.sweep(sweep, results=results, retry=retry)
                }
            assert pool.crashes == 3 and pool.respawns == 3
            pool.close()

        assert len(runs) == 2
        failed = runs[poison]
        assert failed.failed and failed.status == "failed"
        assert failed.attempts == 3
        assert "died mid-task" in failed.error
        healthy = runs[cells[1].cell_id]
        assert healthy.status == "ok" and healthy.plan is not None

        with open_result_store(results) as store:
            stats = store.stats()
            assert stats["failed"] == 1
            assert stats["statuses"] == {"failed": 1, "ok": 1}

        # The CLI surfaces the quarantine: stats counts it, tail filters to it.
        assert repro_main(["results", "stats", results]) == 0
        stats_out = json.loads(capsys.readouterr().out)
        assert stats_out["failed"] == 1 and stats_out["statuses"]["failed"] == 1
        assert repro_main(["results", "tail", results, "--status", "failed"]) == 0
        tail_out = capsys.readouterr().out
        assert poison in tail_out and "FAILED" in tail_out

    def test_resume_reattempts_failed_cells_and_heals(self, tmp_path):
        sweep = SweepSpec.from_payload(GA_SWEEP)
        cells = sweep.expand()
        poison = cells[0].cell_id
        results = str(tmp_path / "results.jsonl")
        retry = RetryPolicy(max_attempts=2, backoff_s=0.0)

        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.kill(tag=poison, times=None)
            pool = WorkerPool(2, chunk_retries=0)
            with Session(workers=pool) as session:
                list(session.sweep(sweep, results=results, retry=retry))
            pool.close()

        # Fault cleared (monkey uninstalled): a plain resume re-attempts exactly
        # the quarantined cell and the store heals to the fault-free reference.
        with Session() as session:
            reran = list(session.sweep(sweep, results=results))
        assert [run.cell_id for run in reran] == [poison]
        assert reran[0].status == "ok"

        fresh = str(tmp_path / "fresh.jsonl")
        with Session() as session:
            list(session.sweep(sweep, results=fresh))
        assert _rows(results) == _rows(fresh)

    def test_skip_failed_leaves_quarantined_cells_alone(self, tmp_path):
        sweep = SweepSpec.from_payload(GA_SWEEP)
        poison = sweep.expand()[0].cell_id
        results = str(tmp_path / "results.jsonl")

        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.kill(tag=poison, times=None)
            pool = WorkerPool(2, chunk_retries=0)
            with Session(workers=pool) as session:
                list(
                    session.sweep(
                        sweep,
                        results=results,
                        retry=RetryPolicy(max_attempts=1),
                    )
                )
            pool.close()

        with Session() as session:
            assert list(session.sweep(sweep, results=results, skip_failed=True)) == []
        with open_result_store(results) as store:
            assert store.stats()["failed"] == 1

    def test_straggler_is_killed_and_retried_within_budget(self, tmp_path):
        sweep = SweepSpec.from_payload({"base": GA_SWEEP["base"]})
        cell = sweep.expand()[0].cell_id
        retry = RetryPolicy(max_attempts=2, backoff_s=0.0, timeout_s=0.6)

        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.delay(30.0, tag=cell, times=1)
            with Session(workers=2) as session:
                runs = list(session.sweep(sweep, retry=retry))
                assert session.pool.crashes >= 1  # the straggler was killed
        assert chaos.claimed("delay") == 1
        assert len(runs) == 1
        assert runs[0].status == "ok"
        assert runs[0].attempts == 2  # timeout on attempt 1, clean on attempt 2


# ------------------------------------------------------- quarantine (serial path)
class TestQuarantineSerial:
    """Retry/quarantine semantics isolated from the pool: a runner that raises."""

    @pytest.fixture()
    def flaky_ga(self, monkeypatch):
        calls = {"n": 0}

        def _boom(self, spec):
            calls["n"] += 1
            raise ValueError(f"synthetic failure #{calls['n']}")

        monkeypatch.setattr(Session, "_run_ga", _boom)
        return calls

    def test_keep_going_quarantines_and_finishes_the_matrix(self, tmp_path, flaky_ga):
        specs = [
            {"kind": "ga", "wafer": "tiny", "workload": "tiny", "name": "bad"},
            {"kind": "scheduler", "wafer": "tiny", "workload": "tiny", "name": "good"},
        ]
        sweep = SweepSpec.from_specs([ExperimentSpec.from_dict(s) for s in specs])
        path = str(tmp_path / "results.jsonl")
        with Session(retry=RetryPolicy(max_attempts=2, backoff_s=0.0)) as session:
            runs = list(session.sweep(sweep, results=path))
        assert [run.status for run in runs] == ["failed", "ok"]
        assert runs[0].attempts == 2 and flaky_ga["n"] == 2
        assert "synthetic failure #2" in runs[0].error
        with open_result_store(path) as store:
            record = store.get(runs[0].cell_id)
            assert record["result"]["status"] == "failed"
            assert record["attempts"] == 2
            assert "ValueError" in record["result"]["error"]

    def test_fail_fast_records_then_raises(self, tmp_path, flaky_ga):
        sweep = SweepSpec.from_payload(
            {"base": {"kind": "ga", "wafer": "tiny", "workload": "tiny"}, "seeds": 3}
        )
        path = str(tmp_path / "results.jsonl")
        with Session(retry=RetryPolicy(max_attempts=1)) as session:
            with pytest.raises(SweepCellError, match="synthetic failure"):
                list(session.sweep(sweep, results=path, keep_going=False))
        # The poison cell was recorded before the abort; nothing after it ran.
        with open_result_store(path) as store:
            assert store.stats()["statuses"] == {"failed": 1}

    def test_legacy_run_path_still_raises(self, flaky_ga):
        # Session.run is untouched by quarantine: callers see the exception.
        with Session() as session:
            with pytest.raises(ValueError, match="synthetic failure"):
                session.run({"kind": "ga", "wafer": "tiny", "workload": "tiny"})


# ----------------------------------------------------------------- store healing
class TestTornAppendHealing:
    @pytest.mark.parametrize("suffix", ["jsonl", "sqlite"])
    def test_torn_append_heals_and_resume_reprices_only_that_cell(
        self, tmp_path, suffix
    ):
        sweep = SweepSpec.from_payload(
            {
                "base": {"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
                "grid": {"max_tp": [2, 4]},
            }
        )
        path = str(tmp_path / f"results.{suffix}")
        with Session() as session:
            fresh_runs = list(session.sweep(sweep, results=path))
        assert len(fresh_runs) == 2
        reference = _rows(path)

        assert tear_last_append(path)
        with open_result_store(path) as store:
            survivors = store.completed_ids()
        assert len(survivors) == 1
        torn = set(reference) - survivors

        with Session() as session:
            reran = list(session.sweep(sweep, results=path))
        assert {run.cell_id for run in reran} == torn
        assert _rows(path) == reference

    def test_tearing_an_empty_store_is_a_noop(self, tmp_path):
        assert not tear_last_append(str(tmp_path / "absent.jsonl"))
        path = str(tmp_path / "empty.sqlite")
        open_result_store(path).close()
        assert not tear_last_append(path)
