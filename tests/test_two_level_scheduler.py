"""Elastic two-level sweep scheduler (ISSUE 7).

The contract under test:

* ``Session.sweep(jobs=N)`` dispatches whole cells concurrently while each cell's
  search loop fans out over the shared :class:`WorkerPool`; results, yield order,
  resume bookkeeping and quarantine decisions are **bit-identical** to a serial
  walk for every spec kind and both store backends.
* The pool is *elastic*: ``PoolConfig(min_workers, max_workers, idle_shrink_s)``
  grows slots under queue pressure and reaps idle slots back to ``min_workers``.
* Chaos (worker kills, poison cells) behaves under concurrency exactly as it does
  serially: kills respawn, poison cells quarantine while siblings stay in flight.
* The API cleanup keeps old spellings working behind one deprecation warning:
  ``WorkerPool(2)`` / ``Session(workers=...)`` shim onto ``config=``/``pool=``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api import (
    ExperimentSpec,
    PoolConfig,
    ScheduleConfig,
    Session,
    SweepSpec,
    close_default_session,
    open_result_store,
    open_store,
)
from repro.api.cli import main as repro_main
from repro.api.results import ResultStore
from repro.api.session import SweepCellError
from repro.core.chaos import ChaosMonkey
from repro.core.evalcache import EvaluationCache
from repro.core.parallel_map import WorkerPool
from repro.core.retry import RetryPolicy
from repro.core.runtime import reset_legacy_warnings


@pytest.fixture(autouse=True)
def _clean_runtime():
    close_default_session()
    yield
    close_default_session()


def _square(x):
    return x * x


def _rows(path):
    """The deterministic result rows of a store, as canonical JSON per cell."""
    with open_result_store(path) as store:
        return {
            cell_id: json.dumps(record["result"], sort_keys=True)
            for cell_id, record in store.load().items()
        }


#: One cell of every experiment kind the session knows how to run.
ALL_KINDS_SPECS = [
    {"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
    {"kind": "ga", "wafer": "tiny", "workload": "tiny",
     "population": 4, "generations": 2},
    {"kind": "dse", "workload": "tiny", "areas_mm2": [300.0, 500.0],
     "aspect_ratios": [1.0], "max_tp": 16},
    {"kind": "watos", "wafers": ["tiny"], "workloads": ["tiny"],
     "population": 4, "generations": 2, "seed": 3},
]

GA_SWEEP = {
    "base": {"kind": "ga", "wafer": "tiny", "workload": "tiny",
             "population": 4, "generations": 2},
    "seeds": 4,
}


# ------------------------------------------------------------------- bit identity
class TestJobsBitIdentity:
    @pytest.mark.parametrize("suffix", ["jsonl", "sqlite"])
    def test_jobs_matches_serial_for_every_kind_and_backend(self, tmp_path, suffix):
        sweep = SweepSpec.from_specs(
            [ExperimentSpec.from_dict(spec) for spec in ALL_KINDS_SPECS]
        )
        serial = str(tmp_path / f"serial.{suffix}")
        with Session() as session:
            serial_runs = list(session.sweep(sweep, results=serial))
        assert len(serial_runs) == len(ALL_KINDS_SPECS)

        threaded = str(tmp_path / f"threaded.{suffix}")
        with Session() as session:
            runs = list(session.sweep(sweep, results=threaded, jobs=3))
        # Streamed yield order is preserved even though cells finish out of order.
        assert [run.cell_id for run in runs] == [run.cell_id for run in serial_runs]
        assert all(run.status == "ok" for run in runs)
        assert _rows(threaded) == _rows(serial)

    def test_jobs_over_a_shared_pool_matches_serial(self, tmp_path):
        sweep = SweepSpec.from_payload(GA_SWEEP)
        serial = str(tmp_path / "serial.jsonl")
        with Session() as session:
            list(session.sweep(sweep, results=serial))

        pooled = str(tmp_path / "pooled.jsonl")
        with Session(pool=2) as session:
            runs = list(session.sweep(sweep, results=pooled, jobs=2))
        assert all(run.status == "ok" for run in runs)
        assert _rows(pooled) == _rows(serial)

    def test_schedule_config_and_spec_jobs_spellings(self, tmp_path):
        sweep = dict(GA_SWEEP, jobs=2)  # sweep-file default concurrency
        serial = str(tmp_path / "serial.jsonl")
        with Session() as session:
            list(session.sweep(GA_SWEEP, results=serial))

        via_spec = str(tmp_path / "spec.jsonl")
        with Session() as session:
            list(session.sweep(sweep, results=via_spec))
        assert _rows(via_spec) == _rows(serial)

        via_schedule = str(tmp_path / "schedule.jsonl")
        with Session() as session:
            list(
                session.sweep(
                    GA_SWEEP,
                    results=via_schedule,
                    schedule=ScheduleConfig(jobs=3, max_buffered=2),
                )
            )
        assert _rows(via_schedule) == _rows(serial)


# ------------------------------------------------------------------------- resume
class TestResumeUnderJobs:
    def test_interrupted_sweep_resumes_only_missing_cells(self, tmp_path):
        sweep = SweepSpec.from_payload(GA_SWEEP)
        path = str(tmp_path / "results.jsonl")

        # Simulate a killed run: consume two of four cells, then abandon the
        # iterator mid-flight (the generator's cleanup drains what finished).
        with Session() as session:
            stream = session.sweep(sweep, results=path, jobs=4)
            first = [next(stream), next(stream)]
            stream.close()
        assert all(run.status == "ok" for run in first)
        with open_result_store(path) as store:
            survivors = store.completed_ids()
        assert len(survivors) >= 2  # in-flight cells may have landed too

        missing = {cell.cell_id for cell in sweep.expand()} - survivors
        with Session() as session:
            reran = list(session.sweep(sweep, results=path, jobs=4))
        assert {run.cell_id for run in reran} == missing

        fresh = str(tmp_path / "fresh.jsonl")
        with Session() as session:
            list(session.sweep(sweep, results=fresh))
        assert _rows(path) == _rows(fresh)


# ---------------------------------------------------------------- chaos under jobs
class TestChaosUnderJobs:
    def test_worker_kill_with_concurrent_cells_is_bit_identical(self, tmp_path):
        sweep = SweepSpec.from_payload(GA_SWEEP)
        fresh = str(tmp_path / "fresh.jsonl")
        with Session() as session:  # fault-free serial reference
            list(session.sweep(sweep, results=fresh))

        chaotic = str(tmp_path / "chaotic.jsonl")
        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.kill(worker=1, at_task=2, times=1)
            with Session(pool=2) as session:
                runs = list(session.sweep(sweep, results=chaotic, jobs=2))
                assert session.pool.crashes == 1
                assert session.pool.respawns == 1
        assert chaos.claimed("kill") == 1
        assert all(run.status == "ok" for run in runs)
        assert _rows(chaotic) == _rows(fresh)

    def test_poison_cell_quarantines_while_siblings_run(self, tmp_path):
        # Cells must be cache-disjoint (distinct sequence lengths, not seed fans):
        # concurrent siblings sharing plan fingerprints would warm the session
        # cache until the poison cell's retries stop needing the pool at all —
        # and an inline cache hit is out of the chaos hook's reach.
        sweep = SweepSpec.from_payload(
            {
                "base": {
                    "kind": "ga", "wafer": "tiny",
                    "workload": {"model": "tiny", "global_batch_size": 32},
                    "population": 4, "generations": 2,
                },
                "grid": {"workload.sequence_length": [128, 256, 512, 1024]},
            }
        )
        cells = sweep.expand()
        poison = cells[0].cell_id
        results = str(tmp_path / "results.sqlite")
        retry = RetryPolicy(max_attempts=3, backoff_s=0.0)

        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.kill(tag=poison, times=None)
            pool = WorkerPool(config=PoolConfig(max_workers=2, chunk_retries=0))
            with Session(pool=pool) as session:
                runs = {
                    run.cell_id: run
                    for run in session.sweep(
                        sweep, results=results, retry=retry, jobs=2
                    )
                }
            # Every poison attempt kills at least one worker; the count is not
            # exact under concurrency (the cell may lease one slot or two).
            assert pool.crashes >= 3 and pool.respawns >= 3
            pool.close()

        assert len(runs) == len(cells)
        failed = runs[poison]
        assert failed.failed and failed.status == "failed"
        assert failed.attempts == 3
        for cell in cells[1:]:
            assert runs[cell.cell_id].status == "ok"
        with open_result_store(results) as store:
            assert store.stats()["statuses"] == {"failed": 1, "ok": len(cells) - 1}

    def test_fail_fast_records_then_raises_under_jobs(self, tmp_path, monkeypatch):
        def _boom(self, spec):
            raise ValueError("synthetic failure")

        monkeypatch.setattr(Session, "_run_ga", _boom)
        sweep = SweepSpec.from_payload(GA_SWEEP)
        path = str(tmp_path / "results.jsonl")
        with Session(retry=RetryPolicy(max_attempts=1)) as session:
            with pytest.raises(SweepCellError, match="synthetic failure"):
                list(session.sweep(sweep, results=path, keep_going=False, jobs=4))
        # The aborting cell was recorded before the raise (crash-safe bookkeeping).
        with open_result_store(path) as store:
            assert store.stats()["failed"] >= 1


# ------------------------------------------------------------------- elastic pool
class TestElasticPool:
    def test_grows_under_pressure_and_shrinks_back_to_min(self):
        pool = WorkerPool(
            config=PoolConfig(min_workers=1, max_workers=3, idle_shrink_s=0.05)
        )
        try:
            pool._ensure_started()
            assert len(pool._live_slots()) == 1  # only min_workers fork up front
            items = list(range(9))
            assert pool.map(_square, items) == [x * x for x in items]
            assert pool.grows == 2  # a 9-item map wants its full fair share
            assert len(pool._live_slots()) == 3

            time.sleep(0.1)
            assert pool.maybe_shrink() == 2  # reaped back down, never below min
            assert len(pool._live_slots()) == 1
            assert pool.shrinks == 2
            # The shrunken pool still serves maps (and may grow again).
            assert pool.map(_square, [5]) == [25]
        finally:
            pool.close()

    def test_fixed_pool_never_shrinks(self):
        pool = WorkerPool(config=PoolConfig(max_workers=2, idle_shrink_s=0.01))
        try:
            pool._ensure_started()
            assert len(pool._live_slots()) == 2
            time.sleep(0.05)
            assert pool.maybe_shrink() == 0  # min == max: nothing is reapable
            assert len(pool._live_slots()) == 2
        finally:
            pool.close()

    def test_small_map_on_elastic_pool_stays_small(self):
        pool = WorkerPool(config=PoolConfig(min_workers=1, max_workers=4))
        try:
            assert pool.map(_square, [3]) == [9]
            assert pool.grows == 0  # one item never asks for more than one slot
            assert len(pool._live_slots()) == 1
        finally:
            pool.close()


# -------------------------------------------------------------------- API cleanup
class TestPoolConfigApi:
    def test_resolved_bounds(self):
        assert PoolConfig(max_workers=4).resolved() == (4, 4)
        assert PoolConfig(min_workers=1, max_workers=3).resolved() == (1, 3)
        # min is clamped into [1, max].
        assert PoolConfig(min_workers=9, max_workers=2).resolved() == (2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(chunk_retries=-1)
        with pytest.raises(ValueError):
            PoolConfig(idle_shrink_s=-0.5)

    def test_legacy_int_form_warns_once(self):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning, match="PoolConfig"):
            pool = WorkerPool(2)
        try:
            assert pool.workers == 2 and pool.min_workers == 2
        finally:
            pool.close()

    def test_config_conflicts_with_legacy_kwargs(self):
        with pytest.raises(ValueError):
            WorkerPool(2, config=PoolConfig(max_workers=2))

    def test_session_workers_alias_warns_and_conflicts(self):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning, match="pool="):
            with Session(workers=2) as session:
                assert session.workers == 2
        with pytest.raises(ValueError):
            Session(workers=2, pool=2)

    def test_session_accepts_pool_config(self):
        with Session(pool=PoolConfig(min_workers=1, max_workers=2)) as session:
            assert session.workers == 2
            assert session.pool.min_workers == 1


class TestScheduleConfigApi:
    def test_validation(self):
        assert ScheduleConfig(jobs=4).jobs == 4
        with pytest.raises(ValueError):
            ScheduleConfig(jobs=0)
        with pytest.raises(ValueError):
            ScheduleConfig(jobs=2, max_buffered=0)

    def test_sweep_rejects_conflicting_and_bad_jobs(self, tmp_path):
        with Session() as session:
            with pytest.raises(ValueError, match="schedule"):
                list(session.sweep(GA_SWEEP, jobs=2, schedule=ScheduleConfig(jobs=2)))
            with pytest.raises(ValueError):
                list(session.sweep(GA_SWEEP, jobs=0))

    def test_sweep_spec_jobs_round_trip_and_suggestion(self):
        spec = SweepSpec.from_payload(dict(GA_SWEEP, jobs=2))
        assert spec.jobs == 2
        assert SweepSpec.from_dict(spec.to_dict()).jobs == 2
        with pytest.raises(ValueError, match="jobs"):
            SweepSpec.from_dict(dict(GA_SWEEP, jbos=2))
        with pytest.raises(ValueError):
            SweepSpec.from_payload(dict(GA_SWEEP, jobs=0))


class TestOpenStoreDispatcher:
    def test_results_kind(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        with open_store(path, kind="results") as store:
            assert isinstance(store, ResultStore)
            store.put("a", {"result": {"status": "ok"}})
        with open_result_store(path) as store:
            assert store.completed_ids() == {"a"}

    def test_cache_kind(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        store = open_store(path, kind="cache")
        try:
            assert not isinstance(store, ResultStore)
            cache = EvaluationCache(store=store)
            cache.put("k", 1.5)
            cache.flush()
        finally:
            store.close()

    def test_bad_kind(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            open_store(str(tmp_path / "x.jsonl"), kind="bogus")


# -------------------------------------------------------------------------- CLI
class TestCliJobs:
    def test_sweep_jobs_flag_matches_serial(self, tmp_path, capsys):
        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps(GA_SWEEP))
        serial = str(tmp_path / "serial.jsonl")
        assert repro_main(["sweep", "--spec", str(spec), "--results", serial]) == 0
        threaded = str(tmp_path / "threaded.jsonl")
        assert (
            repro_main(
                ["sweep", "--spec", str(spec), "--results", threaded, "--jobs", "3"]
            )
            == 0
        )
        capsys.readouterr()
        assert _rows(threaded) == _rows(serial)
