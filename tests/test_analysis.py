"""Metrics normalisation, speedups, heatmaps and report formatting."""


import pytest

from repro.analysis.metrics import (
    geomean,
    normalize,
    normalize_results,
    speedup,
    utilization_heatmap,
)
from repro.analysis.reporting import Report, format_series, format_table
from repro.core.evaluator import EvaluationResult
from repro.core.placement import serpentine_placement


class TestNormalize:
    def test_minimum_becomes_one(self):
        normalised = normalize({"a": 2.0, "b": 4.0, "c": 8.0})
        assert normalised["a"] == pytest.approx(1.0)
        assert normalised["c"] == pytest.approx(4.0)

    def test_max_mode(self):
        normalised = normalize({"a": 2.0, "b": 4.0}, mode="max")
        assert normalised["b"] == pytest.approx(1.0)

    def test_degenerate_values_become_zero(self):
        normalised = normalize({"a": 2.0, "oom": 0.0, "inf": float("inf")})
        assert normalised["oom"] == 0.0 and normalised["inf"] == 0.0

    def test_all_degenerate_is_all_zero(self):
        assert normalize({"a": 0.0, "b": float("nan")}) == {"a": 0.0, "b": 0.0}

    def test_normalize_results_by_throughput_and_time(self):
        fast = EvaluationResult(iteration_time=1.0, useful_flops=100.0, recompute_flops=0.0)
        slow = EvaluationResult(iteration_time=2.0, useful_flops=100.0, recompute_flops=0.0)
        results = {"fast": fast, "slow": slow}
        assert normalize_results(results, "throughput")["fast"] == pytest.approx(2.0)
        assert normalize_results(results, "iteration_time")["slow"] == pytest.approx(2.0)
        assert normalize_results(results, "total_throughput")["fast"] == pytest.approx(2.0)
        with pytest.raises(ValueError):
            normalize_results(results, "mfu")


class TestSpeedupAndGeomean:
    def test_speedup(self):
        assert speedup(4.0, 2.0) == pytest.approx(2.0)
        assert speedup(4.0, 0.0) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, -1.0]) == 0.0


class TestHeatmap:
    def test_grid_shape_and_values(self):
        placement = serpentine_placement(4, 4, (2, 2), 4)
        memory = [1e9, 2e9, 3e9, 4e9]
        grid = utilization_heatmap(placement, memory, 4e9, 4, 4)
        assert len(grid) == 4 and len(grid[0]) == 4
        flat = [v for row in grid for v in row]
        assert max(flat) == pytest.approx(1.0)
        assert min(flat) == pytest.approx(0.25)

    def test_capacity_must_be_positive(self):
        placement = serpentine_placement(2, 2, (1, 1), 4)
        with pytest.raises(ValueError):
            utilization_heatmap(placement, [1.0] * 4, 0.0, 2, 2)


class TestReporting:
    def test_format_table_alignment_and_values(self):
        text = format_table("demo", {"a": {"x": 1.0}, "b": {"x": 2.5}})
        assert "demo" in text and "2.500" in text

    def test_format_table_missing_cell_shows_dash(self):
        text = format_table("demo", {"a": {"x": 1.0}, "b": {"y": 2.0}}, columns=["x", "y"])
        assert "-" in text

    def test_empty_table(self):
        assert "(no data)" in format_table("empty", {})

    def test_format_series(self):
        text = format_series("curves", {"ga": [1.0, 0.5, 0.25]})
        assert "ga" in text and "0.250" in text

    def test_report_renders_all_sections(self):
        report = Report("My Report")
        report.add_table("tbl", {"a": {"x": 1.0}})
        report.add_series("curve", {"s": [1.0]})
        report.add_text("note")
        rendered = report.render()
        assert "My Report" in rendered and "tbl" in rendered and "note" in rendered
        assert str(report) == rendered
