"""Model zoo: parameter accounting and family-specific behaviour."""

import pytest

from repro.workloads.models import MODEL_ZOO, ModelConfig, ModelFamily, get_model


class TestZoo:
    def test_paper_models_present(self):
        for name in (
            "llama2-30b", "llama3-70b", "gpt-175b", "gshard-137b", "deepseek-v3-671b",
            "llama3-405b", "mamba-2.8b", "sd-3.5-large", "gr-24", "qwen3-next-80b-a3b",
        ):
            assert name in MODEL_ZOO

    def test_get_model_round_trips(self):
        assert get_model("gpt-175b") is MODEL_ZOO["gpt-175b"]

    def test_get_model_unknown_raises_helpful_error(self):
        with pytest.raises(KeyError, match="known models"):
            get_model("gpt-5")

    @pytest.mark.parametrize(
        "name, billions, tolerance",
        [
            ("llama2-30b", 30, 0.15),
            ("llama3-70b", 70, 0.15),
            ("gpt-175b", 175, 0.1),
            ("llama3-405b", 405, 0.1),
            ("deepseek-v3-671b", 671, 0.15),
            ("mamba-2.8b", 2.8, 0.5),
        ],
    )
    def test_parameter_counts_near_nominal(self, name, billions, tolerance):
        model = get_model(name)
        assert model.num_parameters == pytest.approx(billions * 1e9, rel=tolerance)

    def test_moe_models_flagged(self):
        assert get_model("deepseek-v3-671b").is_moe
        assert not get_model("llama3-70b").is_moe


class TestModelConfig:
    def test_head_dim_and_kv_hidden(self):
        model = get_model("llama3-70b")
        assert model.head_dim == model.hidden_size // model.num_heads
        assert model.kv_hidden == model.num_kv_heads * model.head_dim

    def test_moe_active_params_below_stored(self):
        moe = get_model("deepseek-v3-671b")
        assert moe.active_params_per_layer < moe.params_per_layer

    def test_dense_active_params_equal_stored(self):
        dense = get_model("gpt-175b")
        assert dense.active_params_per_layer == dense.params_per_layer

    def test_param_bytes_is_fp16(self):
        model = get_model("llama2-30b")
        assert model.param_bytes == pytest.approx(2.0 * model.num_parameters)

    def test_gated_mlp_has_three_matrices(self):
        gated = get_model("llama3-70b")
        plain = get_model("gpt-175b")
        assert gated.mlp_params_per_expert == 3 * gated.hidden_size * gated.ffn_hidden
        assert plain.mlp_params_per_expert == 2 * plain.hidden_size * plain.ffn_hidden

    def test_describe_reports_billions(self):
        info = get_model("llama3-70b").describe()
        assert info["params_billion"] == pytest.approx(
            get_model("llama3-70b").num_parameters / 1e9
        )

    def test_validation_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", family=ModelFamily.TRANSFORMER, num_layers=2,
                hidden_size=100, num_heads=3, num_kv_heads=3, ffn_hidden=400,
            )

    def test_validation_rejects_moe_without_experts(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad-moe", family=ModelFamily.MOE_TRANSFORMER, num_layers=2,
                hidden_size=128, num_heads=4, num_kv_heads=4, ffn_hidden=512,
            )

    def test_validation_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", family=ModelFamily.TRANSFORMER, num_layers=0,
                hidden_size=128, num_heads=4, num_kv_heads=4, ffn_hidden=512,
            )
