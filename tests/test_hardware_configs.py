"""Table II configuration presets and the GPU baseline system configs."""

import pytest

from repro.hardware.configs import (
    TABLE_II_CONFIGS,
    GpuConfig,
    GpuSystemConfig,
    dgx_b300_equalized,
    dgx_b300_node,
    nvl72_gb300,
    wafer_config1,
    wafer_config2,
    wafer_config3,
    wafer_config4,
)
from repro.units import GB


class TestTableII:
    def test_all_four_configs_present(self):
        assert set(TABLE_II_CONFIGS) == {"config1", "config2", "config3", "config4"}

    @pytest.mark.parametrize(
        "factory, dies, dram_gb, d2d_tbps",
        [
            (wafer_config1, 64, 48, 4.5),
            (wafer_config2, 56, 64, 4.5),
            (wafer_config3, 56, 70, 4.0),
            (wafer_config4, 48, 96, 3.5),
        ],
    )
    def test_config_matches_table(self, factory, dies, dram_gb, d2d_tbps):
        wafer = factory()
        assert wafer.num_dies == dies
        assert wafer.die.dram_capacity == pytest.approx(dram_gb * GB)
        assert wafer.die.d2d_bandwidth == pytest.approx(d2d_tbps * 1e12)

    def test_config1_compute_power(self):
        assert wafer_config1().die.flops_fp16 == pytest.approx(512e12, rel=0.01)

    @pytest.mark.parametrize("factory", [wafer_config2, wafer_config3, wafer_config4])
    def test_large_die_compute_power(self, factory):
        assert factory().die.flops_fp16 == pytest.approx(708e12, rel=0.01)

    def test_dram_bandwidth_ordering_matches_table(self):
        bandwidths = [
            wafer_config1().die.dram_bandwidth,
            wafer_config2().die.dram_bandwidth,
            wafer_config3().die.dram_bandwidth,
            wafer_config4().die.dram_bandwidth,
        ]
        assert bandwidths == sorted(bandwidths)

    def test_d2d_decreases_as_dram_grows_across_configs_2_to_4(self):
        assert (
            wafer_config2().die.d2d_bandwidth
            > wafer_config3().die.d2d_bandwidth
            > wafer_config4().die.d2d_bandwidth
        )

    def test_config3_total_compute_close_to_40_pflops(self):
        # §V-C: 39,648 TFLOPS on the 56-die wafer.
        assert wafer_config3().total_flops == pytest.approx(39648e12, rel=0.01)


class TestGpuSystems:
    def test_dgx_node_total_compute(self):
        node = dgx_b300_node()
        assert node.num_gpus == 8
        assert node.total_flops == pytest.approx(40000e12, rel=0.01)

    def test_dgx_node_hbm_capacity(self):
        assert dgx_b300_node().total_hbm_capacity == pytest.approx(2304 * GB)

    def test_equalized_node_matches_wafer_dram(self):
        node = dgx_b300_equalized()
        assert node.total_hbm_capacity == pytest.approx(3920 * GB)
        assert node.gpu.hbm_bandwidth == pytest.approx(2e12)

    def test_nvl72_gpu_count_and_node_size(self):
        rack = nvl72_gb300(56)
        assert rack.num_gpus == 56
        assert rack.num_nodes == 1  # all inside one NVL72 domain

    def test_multi_node_counting(self):
        cluster = GpuSystemConfig(num_gpus=32, gpus_per_node=8)
        assert cluster.num_nodes == 4

    def test_gpu_defaults_are_positive(self):
        gpu = GpuConfig()
        assert gpu.flops_fp16 > 0 and gpu.hbm_capacity > 0 and gpu.nvlink_bandwidth > 0
