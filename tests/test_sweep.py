"""Sweep grammar + result store + resumable streaming sweep (ISSUE 5).

The contract under test:

* ``SweepSpec`` expands deterministically — grid axes cartesian (rightmost
  fastest), ``zip`` axes locked-step, ``seeds=N`` fanned through the
  ``GAConfig.stream`` convention — to stable content-derived ``cell_id``s.
* Mistyped knob paths and spec fields fail with a did-you-mean suggestion, never a
  bare ``KeyError``.
* ``ResultStore`` (JSONL + sqlite) round-trips ``RunResult.to_dict()`` rows
  exactly, recovers cold from corrupt stores, and later duplicates win.
* ``Session.sweep`` streams results, writes through to the store, and a
  kill-and-resume produces byte-identical rows to a fresh serial run for all four
  loop kinds.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ExperimentSpec,
    Session,
    SweepSpec,
    close_default_session,
    export_csv,
    open_result_store,
)
from repro.api.results import (
    JsonlResultStore,
    SqliteResultStore,
    make_record,
    results_namespace,
)
from repro.api.sweep import apply_knob, cell_key, resolve_knob, stream_seed
from repro.core import runtime
from repro.core.genetic import GAConfig


@pytest.fixture(autouse=True)
def _clean_runtime():
    close_default_session()
    yield
    close_default_session()


# ------------------------------------------------------------------------- grammar
class TestExpansion:
    def test_grid_is_cartesian_rightmost_fastest(self):
        sweep = SweepSpec(
            base={"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
            grid={"max_tp": [2, 4], "ga.seed": [0, 1]},
        )
        cells = sweep.expand()
        assert len(cells) == len(sweep) == 4
        assert [(c.spec.max_tp, c.spec.seed) for c in cells] == [
            (2, 0), (2, 1), (4, 0), (4, 1)
        ]

    def test_zip_axes_are_locked_step(self):
        sweep = SweepSpec(
            base={"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
            zip={"max_tp": [2, 4, 8], "ga.seed": [10, 11, 12]},
        )
        cells = sweep.expand()
        assert [(c.spec.max_tp, c.spec.seed) for c in cells] == [
            (2, 10), (4, 11), (8, 12)
        ]

    def test_zip_length_mismatch_is_an_error(self):
        with pytest.raises(ValueError, match="same length"):
            SweepSpec(zip={"max_tp": [2, 4], "ga.seed": [0]})

    def test_seed_fan_uses_the_stream_convention(self):
        sweep = SweepSpec(
            base={"kind": "ga", "wafer": "tiny", "workload": "tiny", "seed": 7},
            seeds=3,
        )
        cells = sweep.expand()
        expected = [GAConfig(seed=7).stream(i).seed for i in range(3)]
        assert [c.spec.seed for c in cells] == expected
        assert cells[0].spec.seed == 7  # stream 0 is the base seed itself
        assert stream_seed(7, 1) == GAConfig(seed=7).stream(1).seed

    def test_seeds_vary_fastest(self):
        sweep = SweepSpec(
            base={"kind": "ga", "wafer": "tiny", "workload": "tiny"},
            grid={"ga.population": [4, 6]},
            seeds=2,
        )
        cells = sweep.expand()
        assert [(c.spec.population, c.spec.seed) for c in cells] == [
            (4, stream_seed(0, 0)), (4, stream_seed(0, 1)),
            (6, stream_seed(0, 0)), (6, stream_seed(0, 1)),
        ]

    def test_nested_mapping_knob(self):
        sweep = SweepSpec(
            base={"kind": "scheduler", "wafer": "tiny",
                  "workload": {"model": "tiny", "global_batch_size": 32}},
            grid={"workload.sequence_length": [1024, 2048]},
        )
        cells = sweep.expand()
        assert [c.spec.workload["sequence_length"] for c in cells] == [1024, 2048]
        # The base mapping is copied per cell, never mutated in place.
        assert all(c.spec.workload["global_batch_size"] == 32 for c in cells)
        assert "sequence_length" not in sweep.base["workload"]

    def test_expansion_is_deterministic(self):
        sweep = SweepSpec(
            base={"kind": "ga", "wafer": "tiny", "workload": "tiny"},
            grid={"ga.population": [4, 6], "ga.generations": [2, 3]},
            seeds=2,
        )
        first, second = sweep.expand(), sweep.expand()
        assert [c.cell_id for c in first] == [c.cell_id for c in second]
        assert [c.spec.to_dict() for c in first] == [c.spec.to_dict() for c in second]

    def test_duplicate_cells_are_an_error(self):
        with pytest.raises(ValueError, match="duplicate cell"):
            SweepSpec(
                base={"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
                grid={"max_tp": [4, 4]},
            ).expand()

    def test_explicit_spec_list_and_payloads(self):
        specs = [
            ExperimentSpec(kind="scheduler", wafer="tiny", workload="tiny"),
            ExperimentSpec(kind="dse", workload="tiny"),
        ]
        cells = SweepSpec.from_specs(specs).expand()
        assert [c.spec.kind for c in cells] == ["scheduler", "dse"]
        # from_payload: array -> explicit list, bare object -> one cell,
        # grammar object -> SweepSpec.
        assert len(SweepSpec.from_payload([s.to_dict() for s in specs]).expand()) == 2
        assert len(SweepSpec.from_payload(specs[0].to_dict()).expand()) == 1
        grammar = SweepSpec.from_payload(
            {"base": {"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
             "grid": {"max_tp": [2, 4]}}
        )
        assert len(grammar.expand()) == 2

    def test_specs_cannot_mix_with_grammar(self):
        with pytest.raises(ValueError, match="explicit cell list"):
            SweepSpec(specs=[], grid={"max_tp": [2]})


class TestCellIds:
    def test_cell_id_is_content_derived_and_name_blind(self):
        spec = ExperimentSpec(kind="ga", wafer="tiny", workload="tiny", name="a")
        renamed = ExperimentSpec(kind="ga", wafer="tiny", workload="tiny", name="b")
        changed = ExperimentSpec(kind="ga", wafer="tiny", workload="tiny", seed=1)
        assert cell_key(spec) == cell_key(renamed)
        assert cell_key(spec) != cell_key(changed)

    def test_distinct_objects_sharing_a_name_do_not_collide(self):
        # to_dict reduces config objects to their names; cell ids must not,
        # or a resumed sweep would serve one config's rows as the other's.
        from dataclasses import replace

        from repro.api import tiny_workload

        base = tiny_workload()
        small = replace(base, model=replace(base.model, num_layers=4))
        large = replace(base, model=replace(base.model, num_layers=8))
        assert small.model.name == large.model.name
        cells = SweepSpec(
            base={"kind": "scheduler", "wafer": "tiny"},
            grid={"workload": [small, large]},
        ).expand()
        assert cells[0].cell_id != cells[1].cell_id

    def test_cell_ids_survive_matrix_edits(self):
        base = {"kind": "ga", "wafer": "tiny", "workload": "tiny"}
        small = SweepSpec(base=base, grid={"ga.population": [4, 6]}).expand()
        grown = SweepSpec(base=base, grid={"ga.population": [8, 4, 6]}).expand()
        ids = {c.cell_id for c in small}
        assert ids < {c.cell_id for c in grown}  # old cells keep their ids


class TestKnobErrors:
    def test_unknown_knob_suggests_the_real_one(self):
        with pytest.raises(ValueError, match=r"ga\.populatoin: unknown knob.*ga\.population"):
            SweepSpec(grid={"ga.populatoin": [4]})

    def test_group_alone_is_an_error(self):
        with pytest.raises(ValueError, match="knob group"):
            resolve_knob("ga")

    def test_aliases_resolve_to_flat_fields(self):
        assert resolve_knob("ga.population") == ("population", ())
        assert resolve_knob("scheduler.max_tp") == ("max_tp", ())
        assert resolve_knob("dse.areas_mm2") == ("areas_mm2", ())
        assert resolve_knob("wafer") == ("wafer", ())
        assert resolve_knob("workload.model") == ("workload", ("model",))

    def test_cannot_descend_into_scalar_field(self):
        with pytest.raises(ValueError, match="cannot descend"):
            apply_knob({"population": 4}, "population.x", 1)

    def test_cannot_descend_past_a_scalar_knob(self):
        with pytest.raises(ValueError, match="scalar knob"):
            resolve_knob("workload.sequence_length.tokens")
        with pytest.raises(ValueError, match="scalar knob"):
            SweepSpec(grid={"workload.sequence_length.tokens": [256]})

    def test_nested_subpath_typo_fails_fast(self):
        # The workload resolver silently drops unknown mapping keys, so the knob
        # layer must catch the typo — otherwise the axis configures nothing.
        with pytest.raises(
            ValueError, match=r"workload\.sequence_legnth.*workload\.sequence_length"
        ):
            SweepSpec(grid={"workload.sequence_legnth": [2048, 4096]})

    def test_sweep_from_dict_unknown_key(self):
        with pytest.raises(ValueError, match="gird: unknown SweepSpec field.*grid"):
            SweepSpec.from_dict({"gird": {"max_tp": [2]}})

    def test_experiment_spec_typo_vs_genuine_extra(self):
        with pytest.raises(ValueError, match="populatoin.*population"):
            ExperimentSpec.from_dict({"kind": "ga", "populatoin": 4})
        # Keys nowhere near a real field still pass through to extras.
        spec = ExperimentSpec.from_dict({"kind": "ga", "w2w_bandwidth_gbps": 400})
        assert spec.extras == {"w2w_bandwidth_gbps": 400}


# --------------------------------------------------------------------- result store
class _FakeRun:
    """A RunResult stand-in with a deterministic to_dict."""

    def __init__(self, label, metrics):
        self.label = label
        self.metrics = metrics
        self.seconds = 0.5

    def to_dict(self, volatile=True):
        data = {"kind": "ga", "label": self.label, "metrics": dict(self.metrics)}
        if volatile:
            data["seconds"] = self.seconds
        return data


@pytest.mark.parametrize("suffix", [".jsonl", ".sqlite"])
class TestResultStore:
    def test_round_trip_is_exact(self, tmp_path, suffix):
        path = str(tmp_path / f"results{suffix}")
        record = make_record(
            _FakeRun("a", {"throughput": 0.1 + 0.2, "iteration_time": float("inf")}),
            now=123.0,
        )
        with open_result_store(path) as store:
            store.put("cell-a", record)
        with open_result_store(path) as store:
            loaded = store.load()
            assert list(loaded) == ["cell-a"]
            assert loaded["cell-a"] == record
            assert loaded["cell-a"]["result"]["metrics"]["throughput"] == 0.1 + 0.2
            assert loaded["cell-a"]["result"]["metrics"]["iteration_time"] == float("inf")
            assert store.get("cell-a") == record
            assert "cell-a" in store and len(store) == 1

    def test_later_duplicates_win_in_position(self, tmp_path, suffix):
        path = str(tmp_path / f"results{suffix}")
        with open_result_store(path) as store:
            store.put("a", make_record(_FakeRun("a", {"v": 1}), now=1.0))
            store.put("b", make_record(_FakeRun("b", {"v": 2}), now=2.0))
            store.put("a", make_record(_FakeRun("a", {"v": 3}), now=3.0))
        with open_result_store(path) as store:
            loaded = store.load()
            assert list(loaded) == ["b", "a"]
            assert loaded["a"]["result"]["metrics"]["v"] == 3
            assert [cid for cid, _ in store.tail(1)] == ["a"]

    def test_tail_zero_is_empty(self, tmp_path, suffix):
        path = str(tmp_path / f"results{suffix}")
        with open_result_store(path) as store:
            store.put("a", make_record(_FakeRun("a", {}), now=1.0))
            assert store.tail(0) == []
            assert store.tail(-1) == []

    def test_stats(self, tmp_path, suffix):
        path = str(tmp_path / f"results{suffix}")
        with open_result_store(path) as store:
            store.put("a", make_record(_FakeRun("a", {}), now=10.0))
            store.put("b", make_record(_FakeRun("b", {}), now=20.0))
            stats = store.stats()
        assert stats["cells"] == 2
        assert stats["kinds"] == {"ga": 2}
        assert stats["oldest_written_at"] == 10.0
        assert stats["newest_written_at"] == 20.0

    def test_foreign_file_is_preserved_not_truncated(self, tmp_path, suffix):
        path = str(tmp_path / f"results{suffix}")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("precious user data, definitely not a result store\n")
        with open_result_store(path) as store:
            assert store.load() == {}  # cold start, no error
            store.put("a", make_record(_FakeRun("a", {}), now=1.0))
            assert list(store.load()) == ["a"]
        with open(path + ".corrupt", encoding="utf-8") as handle:
            assert "precious" in handle.read()

    def test_blind_put_never_appends_to_a_foreign_file(self, tmp_path, suffix):
        # The resume=False path writes without ever calling load(); the store must
        # still notice a foreign file and move it aside instead of polluting it.
        path = str(tmp_path / f"results{suffix}")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("precious user data, definitely not a result store\n")
        with open_result_store(path) as store:
            store.put("a", make_record(_FakeRun("a", {}), now=1.0))
        with open_result_store(path) as store:
            assert list(store.load()) == ["a"]
        with open(path + ".corrupt", encoding="utf-8") as handle:
            assert "precious" in handle.read()

    def test_blind_put_resets_a_stale_namespace_file(self, tmp_path, suffix):
        path = str(tmp_path / f"results{suffix}")
        store_cls = JsonlResultStore if suffix == ".jsonl" else SqliteResultStore
        with store_cls(path, namespace="watos-results-v999") as store:
            store.put("old", make_record(_FakeRun("old", {}), now=1.0))
        with open_result_store(path) as store:  # current namespace, no load()
            store.put("new", make_record(_FakeRun("new", {}), now=2.0))
        with open_result_store(path) as store:
            assert list(store.load()) == ["new"]  # not silently discarded

    def test_namespace_mismatch_degrades_to_cold_start(self, tmp_path, suffix):
        path = str(tmp_path / f"results{suffix}")
        store_cls = JsonlResultStore if suffix == ".jsonl" else SqliteResultStore
        with store_cls(path, namespace="watos-results-v999") as store:
            store.put("a", make_record(_FakeRun("a", {}), now=1.0))
        with open_result_store(path) as store:
            assert store.namespace == results_namespace()
            assert store.load() == {}


def test_foreign_valid_sqlite_database_is_preserved(tmp_path):
    import sqlite3

    path = str(tmp_path / "users.sqlite")
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE mydata (id INTEGER PRIMARY KEY, payload TEXT)")
    conn.execute("INSERT INTO mydata VALUES (1, 'precious')")
    conn.commit()
    conn.close()

    with open_result_store(path) as store:
        store.put("a", make_record(_FakeRun("a", {}), now=1.0))
        assert list(store.load()) == ["a"]
    # The user's database was moved aside intact, not mutated in place.
    conn = sqlite3.connect(path + ".corrupt")
    assert conn.execute("SELECT payload FROM mydata").fetchone() == ("precious",)
    tables = {r[0] for r in conn.execute("SELECT name FROM sqlite_master WHERE type='table'")}
    conn.close()
    assert tables == {"mydata"}


def test_jsonl_torn_last_line_is_skipped(tmp_path):
    path = str(tmp_path / "results.jsonl")
    with open_result_store(path) as store:
        store.put("a", make_record(_FakeRun("a", {"v": 1}), now=1.0))
        store.put("b", make_record(_FakeRun("b", {"v": 2}), now=2.0))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"c": "torn", "v": {"result"')  # interrupted mid-write
    with open_result_store(path) as store:
        loaded = store.load()
        assert list(loaded) == ["a", "b"]
        assert store.load_errors == 1


def test_jsonl_append_after_torn_line_does_not_concatenate(tmp_path):
    # The kill-and-resume workflow: the killed run left a torn last line, the
    # resumed run re-prices that cell and appends it — the new row must start on
    # its own line, not merge into the fragment and lose both.
    path = str(tmp_path / "results.jsonl")
    with open_result_store(path) as store:
        store.put("a", make_record(_FakeRun("a", {"v": 1}), now=1.0))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"c": "b", "v": {"result"')  # torn mid-write by a kill
    with open_result_store(path) as store:
        store.put("b", make_record(_FakeRun("b", {"v": 2}), now=2.0))
    with open_result_store(path) as store:
        loaded = store.load()
        assert list(loaded) == ["a", "b"]
        assert loaded["b"]["result"]["metrics"]["v"] == 2
        assert store.load_errors == 1  # only the torn fragment was sacrificed


def test_csv_export_one_row_per_cell(tmp_path):
    import io

    path = str(tmp_path / "results.jsonl")
    with open_result_store(path) as store:
        store.put("a", make_record(_FakeRun("a", {"throughput": 1.5}), now=1.0))
        store.put("b", make_record(_FakeRun("b", {"best_fitness": 0.25}), now=2.0))
        out = io.StringIO()
        assert export_csv(store, out) == 2
    lines = out.getvalue().strip().splitlines()
    assert lines[0] == (
        "cell_id,kind,label,plan,oom,status,attempts,error,seconds,"
        "best_fitness,throughput"
    )
    assert len(lines) == 3
    assert lines[1].startswith("a,ga,a,") and lines[1].endswith(",1.5")
    assert ",0.25," in lines[2]


# ------------------------------------------------------------------ streaming sweep
ALL_KINDS_SPECS = [
    {"kind": "scheduler", "wafer": "tiny", "workload": "tiny"},
    {"kind": "ga", "wafer": "tiny", "workload": "tiny",
     "population": 4, "generations": 2},
    {"kind": "dse", "workload": "tiny", "areas_mm2": [300.0, 500.0],
     "aspect_ratios": [1.0], "max_tp": 16},
    {"kind": "watos", "wafers": ["tiny"], "workloads": ["tiny"],
     "population": 4, "generations": 2, "seed": 3},
]


def _rows(path):
    """The deterministic result rows of a store, as canonical JSON per cell."""
    with open_result_store(path) as store:
        return {
            cell_id: json.dumps(record["result"], sort_keys=True)
            for cell_id, record in store.load().items()
        }


class TestStreamingSweep:
    def test_sweep_streams_and_writes_through(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        sweep = SweepSpec.from_specs(ALL_KINDS_SPECS[:1])
        with Session() as session:
            stream = session.sweep(sweep, results=path)
            run = next(stream)
            assert run.cell_id and run.plan is not None
            # Written through before the next cell starts, not at exit.
            assert run.cell_id in _rows(path)
            assert list(stream) == []

    def test_resume_is_bit_identical_across_all_four_kinds(self, tmp_path):
        sweep = SweepSpec.from_specs(ALL_KINDS_SPECS)
        fresh = str(tmp_path / "fresh.jsonl")
        with Session() as session:
            fresh_runs = list(session.sweep(sweep, results=fresh))
        assert len(fresh_runs) == 4

        # Interrupted after two cells (a kill mid-matrix), then resumed in a new
        # session with a cold cache.
        resumed = str(tmp_path / "resumed.sqlite")
        with Session() as session:
            stream = session.sweep(sweep, results=resumed)
            next(stream), next(stream)
            stream.close()
        assert len(_rows(resumed)) == 2
        with Session() as session:
            second = list(session.sweep(sweep, results=resumed))
        assert len(second) == 2  # only the missing cells ran

        assert _rows(resumed) == _rows(fresh)

        # A third, fully-warm invocation runs nothing and changes nothing.
        before = _rows(resumed)
        with Session() as session:
            assert list(session.sweep(sweep, results=resumed)) == []
        assert _rows(resumed) == before

    def test_no_resume_reruns_everything(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        sweep = SweepSpec.from_specs(ALL_KINDS_SPECS[:1])
        with Session() as session:
            assert len(list(session.sweep(sweep, results=path))) == 1
            assert len(list(session.sweep(sweep, results=path, resume=False))) == 1

    def test_bare_list_shim_warns_once_and_works(self):
        runtime.reset_legacy_warnings()
        # Name-only differences (and even exact repeats) were fine in the PR 4
        # list form and must stay fine; the shim also keeps the eager-list return,
        # so legacy callers can still index the result.
        spec = dict(ALL_KINDS_SPECS[0])
        specs = [
            ExperimentSpec(**spec, name="a"),
            ExperimentSpec(**spec, name="b"),
        ]
        with Session() as session:
            with pytest.warns(DeprecationWarning, match="SweepSpec"):
                runs = session.sweep(specs)
            assert isinstance(runs, list) and len(runs) == 2
            assert runs[0].plan is not None
            assert [run.label for run in runs] == ["a", "b"]
            assert runs[0].cell_id != runs[1].cell_id
            # Second call: warned already; wrapping via from_specs never warns.
            import warnings

            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                list(session.sweep(specs))
                list(session.sweep(SweepSpec.from_specs(specs)))
            assert [w for w in caught if w.category is DeprecationWarning] == []

    def test_legacy_list_never_skips_despite_ambient_store(self, tmp_path):
        # PR 4 contract: one result per spec, positionally — even when the
        # session's result store already holds the cell.
        runtime.reset_legacy_warnings()
        path = str(tmp_path / "legacy.jsonl")
        specs = [ExperimentSpec(**dict(ALL_KINDS_SPECS[0]))]
        with Session(results=path) as session:
            with pytest.warns(DeprecationWarning):
                first = session.sweep(specs)
            second = session.sweep(specs)
        assert len(first) == len(second) == 1
        assert second[0].plan is not None

    def test_legacy_iterables_take_the_shim_path_too(self):
        # PR 4's sweep iterated any iterable; generators must keep working.
        runtime.reset_legacy_warnings()
        with Session() as session:
            with pytest.warns(DeprecationWarning):
                runs = session.sweep(
                    ExperimentSpec(**dict(spec)) for spec in ALL_KINDS_SPECS[:1]
                )
        assert isinstance(runs, list) and len(runs) == 1

    def test_session_results_is_ambient(self, tmp_path):
        path = str(tmp_path / "ambient.jsonl")
        sweep = SweepSpec.from_specs(ALL_KINDS_SPECS[:1])
        with Session(results=path) as session:
            runs = list(session.sweep(sweep))
        assert session.closed
        assert len(_rows(path)) == len(runs) == 1
        # An inner session without a store inherits the ambient one.
        inner_path = str(tmp_path / "outer.jsonl")
        with Session(results=inner_path):
            with Session() as inner:
                assert runtime.current_results() is not None
                list(inner.sweep(SweepSpec.from_specs(ALL_KINDS_SPECS[:1])))
        assert len(_rows(inner_path)) == 1

    def test_stored_rows_match_run_to_dict(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        sweep = SweepSpec.from_specs(ALL_KINDS_SPECS[:1])
        with Session() as session:
            (run,) = list(session.sweep(sweep, results=path))
        with open_result_store(path) as store:
            record = store.get(run.cell_id)
        assert record["result"] == json.loads(json.dumps(run.to_dict(volatile=False)))
        assert record["spec"]["kind"] == "scheduler"
        assert record["seconds"] == run.seconds

    def test_sweep_on_closed_session_raises(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError):
            session.sweep(SweepSpec.from_specs(ALL_KINDS_SPECS[:1]))
