"""Memory-system substrate: dataflow EMA analysis, DRAM model, SRAM tiler."""

import pytest

from repro.memsys.dataflow import Dataflow, external_memory_accesses, external_memory_bytes, select_dataflow
from repro.memsys.dram import DramCapacityError, DramModel
from repro.memsys.sram import SramTiler
from repro.units import GB, MB


class TestDataflowEma:
    def test_input_stationary_formula(self):
        s, h, k, m, n = 128, 256, 64, 16, 16
        expected = s * h * k * (1 / k + 1 / m + 1 / n)
        assert external_memory_accesses(s, h, k, m, n, Dataflow.INPUT_STATIONARY) == pytest.approx(expected)

    def test_weight_stationary_formula(self):
        s, h, k, m, n = 128, 256, 64, 16, 16
        expected = s * h * k * (1 / n + 1 / s + 1 / m)
        assert external_memory_accesses(s, h, k, m, n, Dataflow.WEIGHT_STATIONARY) == pytest.approx(expected)

    def test_output_stationary_formula(self):
        s, h, k, m, n = 128, 256, 64, 16, 16
        expected = s * h * k * (1 / n + 1 / m + 1 / h)
        assert external_memory_accesses(s, h, k, m, n, Dataflow.OUTPUT_STATIONARY) == pytest.approx(expected)

    def test_row_stationary_treated_as_output_stationary(self):
        args = (64, 64, 64, 8, 8)
        assert external_memory_accesses(*args, Dataflow.ROW_STATIONARY) == pytest.approx(
            external_memory_accesses(*args, Dataflow.OUTPUT_STATIONARY)
        )

    def test_bytes_conversion(self):
        args = (64, 64, 64, 8, 8)
        assert external_memory_bytes(*args, Dataflow.OUTPUT_STATIONARY) == pytest.approx(
            2.0 * external_memory_accesses(*args, Dataflow.OUTPUT_STATIONARY)
        )

    def test_select_dataflow_picks_minimum(self):
        s, h, k, m, n = 32, 8192, 64, 16, 16
        best, ema = select_dataflow(s, h, k, m, n)
        for df in (Dataflow.OUTPUT_STATIONARY, Dataflow.WEIGHT_STATIONARY, Dataflow.INPUT_STATIONARY):
            assert ema <= external_memory_accesses(s, h, k, m, n, df)

    def test_large_reduction_prefers_input_stationary(self):
        # A huge K makes the 1/K reload term of IS negligible, so IS wins.
        best, _ = select_dataflow(64, 64, 4096, 16, 16)
        assert best is Dataflow.INPUT_STATIONARY

    def test_large_sequence_prefers_weight_stationary(self):
        # A huge S makes WS's 1/S reload term negligible, so WS wins.
        best, _ = select_dataflow(4096, 64, 64, 16, 16)
        assert best is Dataflow.WEIGHT_STATIONARY

    def test_large_hidden_prefers_output_stationary(self):
        best, _ = select_dataflow(64, 4096, 64, 16, 16)
        assert best is Dataflow.OUTPUT_STATIONARY

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            external_memory_accesses(0, 1, 1, 8, 8, Dataflow.OUTPUT_STATIONARY)
        with pytest.raises(ValueError):
            external_memory_accesses(1, 1, 1, 0, 8, Dataflow.OUTPUT_STATIONARY)


class TestDramModel:
    def test_allocation_and_free_accounting(self):
        dram = DramModel(capacity_bytes=10 * GB, bandwidth=1e12)
        dram.allocate("weights", 4 * GB)
        dram.allocate("ckpt", 2 * GB)
        assert dram.allocated_bytes == pytest.approx(6 * GB)
        assert dram.free_bytes == pytest.approx(4 * GB)
        assert dram.utilization == pytest.approx(0.6)

    def test_allocation_over_capacity_raises(self):
        dram = DramModel(capacity_bytes=1 * GB, bandwidth=1e12)
        with pytest.raises(DramCapacityError):
            dram.allocate("too-big", 2 * GB)

    def test_release_and_reset(self):
        dram = DramModel(capacity_bytes=4 * GB, bandwidth=1e12)
        dram.allocate("a", 1 * GB)
        assert dram.release("a") == pytest.approx(1 * GB)
        assert dram.release("missing") == 0.0
        dram.allocate("b", 2 * GB)
        dram.reset()
        assert dram.allocated_bytes == 0.0

    def test_access_time_is_latency_plus_bandwidth(self):
        dram = DramModel(capacity_bytes=GB, bandwidth=2e12, access_latency=1e-7)
        assert dram.access_time(2e12) == pytest.approx(1.0 + 1e-7)
        assert dram.access_time(0.0) == 0.0

    def test_remote_access_limited_by_slower_of_dram_and_d2d(self):
        dram = DramModel(capacity_bytes=GB, bandwidth=1e12)
        fast_fabric = dram.remote_access_time(1e12, d2d_bandwidth=4e12)
        slow_fabric = dram.remote_access_time(1e12, d2d_bandwidth=0.5e12)
        assert fast_fabric == pytest.approx(dram.access_time(1e12) + 1e-7, rel=0.01)
        assert slow_fabric > fast_fabric

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(capacity_bytes=0.0, bandwidth=1e12)
        dram = DramModel(capacity_bytes=GB, bandwidth=1e12)
        with pytest.raises(ValueError):
            dram.access_time(-1.0)
        with pytest.raises(ValueError):
            dram.allocate("x", -1.0)


class TestSramTiler:
    def test_small_gemm_fits_untileed(self):
        tiler = SramTiler(sram_bytes=1.25 * MB)
        assert tiler.fits(64, 64, 64)
        plan = tiler.plan(64, 64, 64)
        assert plan.num_tiles == 1

    def test_large_gemm_gets_tiled(self):
        tiler = SramTiler(sram_bytes=1.25 * MB)
        plan = tiler.plan(4096, 4096, 4096)
        assert plan.num_tiles > 1
        assert plan.tile_bytes <= tiler.budget_bytes

    def test_tile_count_covers_whole_problem(self):
        tiler = SramTiler(sram_bytes=1.25 * MB)
        s, h, k = 1000, 900, 800
        plan = tiler.plan(s, h, k)
        import math
        expected = (
            math.ceil(s / plan.tile_s) * math.ceil(h / plan.tile_h) * math.ceil(k / plan.tile_k)
        )
        assert plan.num_tiles == expected

    def test_bigger_sram_needs_fewer_tiles(self):
        small = SramTiler(sram_bytes=0.5 * MB).plan(2048, 2048, 2048)
        large = SramTiler(sram_bytes=8 * MB).plan(2048, 2048, 2048)
        assert large.num_tiles <= small.num_tiles

    def test_validation(self):
        with pytest.raises(ValueError):
            SramTiler(sram_bytes=0.0)
        with pytest.raises(ValueError):
            SramTiler(sram_bytes=MB, utilization=0.0)
        with pytest.raises(ValueError):
            SramTiler(sram_bytes=MB).plan(0, 1, 1)
