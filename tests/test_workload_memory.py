"""Training memory model: modelP accounting and 1F1B checkpoint retention."""

import pytest

from repro.units import GB
from repro.workloads.memory import MODEL_STATE_BYTES_PER_PARAM, TrainingMemoryModel
from repro.workloads.models import get_model


@pytest.fixture
def memory(tiny_model) -> TrainingMemoryModel:
    return TrainingMemoryModel(tiny_model)


class TestModelStates:
    def test_bytes_per_param_is_16(self):
        assert MODEL_STATE_BYTES_PER_PARAM == 16

    def test_total_model_state(self, memory, tiny_model):
        assert memory.total_model_state_bytes() == pytest.approx(
            16.0 * tiny_model.num_parameters
        )

    def test_llama3_405b_model_state_matches_paper(self):
        # §VI-F: Llama3-405B needs around 5670 GB for weights, optimizer and gradients.
        memory = TrainingMemoryModel(get_model("llama3-405b"))
        assert memory.total_model_state_bytes() == pytest.approx(5670 * GB, rel=0.2)

    def test_layers_per_stage_balanced(self, memory):
        layers = memory.layers_per_stage(3)
        assert sum(layers) == memory.model.num_layers
        assert max(layers) - min(layers) <= 1

    def test_layers_per_stage_requires_positive_pp(self, memory):
        with pytest.raises(ValueError):
            memory.layers_per_stage(0)

    def test_edge_stages_carry_embeddings(self, memory):
        pp = 4
        middle = memory.stage_param_count(1, pp)
        first = memory.stage_param_count(0, pp)
        last = memory.stage_param_count(pp - 1, pp)
        assert first > middle
        assert last > middle

    def test_tp_divides_stage_state(self, memory):
        full = memory.stage_model_state_bytes(1, 4, 1)
        half = memory.stage_model_state_bytes(1, 4, 2)
        assert half == pytest.approx(full / 2)


class TestCheckpointRetention:
    def test_retained_microbatches_decrease_along_pipeline(self, memory):
        pp, n = 4, 16
        retained = [memory.retained_microbatches(s, pp, n) for s in range(pp)]
        assert retained == [4, 3, 2, 1]

    def test_retained_capped_by_microbatch_count(self, memory):
        assert memory.retained_microbatches(0, 8, 2) == 2

    def test_stage_zero_has_highest_footprint(self, memory):
        pp = 4
        breakdown = memory.pipeline_breakdown(pp, 1, 1, 512, 16)
        checkpoints = [stage.checkpoint_bytes for stage in breakdown]
        assert checkpoints[0] == max(checkpoints)
        assert checkpoints[-1] == min(checkpoints)

    def test_recompute_fraction_reduces_checkpoints(self, memory):
        with_ckpt = memory.stage_breakdown(0, 4, 1, 1, 512, 16, recompute_fraction=0.0)
        recomputed = memory.stage_breakdown(0, 4, 1, 1, 512, 16, recompute_fraction=0.75)
        assert recomputed.checkpoint_bytes == pytest.approx(0.25 * with_ckpt.checkpoint_bytes)
        assert recomputed.model_state_bytes == pytest.approx(with_ckpt.model_state_bytes)

    def test_breakdown_totals_are_consistent(self, memory):
        stage = memory.stage_breakdown(1, 4, 2, 1, 512, 8)
        assert stage.total_bytes == pytest.approx(
            stage.weight_bytes + stage.gradient_bytes + stage.optimizer_bytes
            + stage.checkpoint_bytes
        )

    def test_invalid_recompute_fraction_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.stage_breakdown(0, 4, 1, 1, 512, 8, recompute_fraction=1.5)

    def test_fits_checks_every_stage(self, memory):
        breakdown = memory.pipeline_breakdown(4, 1, 1, 512, 16)
        worst = max(stage.total_bytes for stage in breakdown)
        assert memory.fits(worst * 1.01, 4, 1, 1, 512, 16)
        assert not memory.fits(worst * 0.5, 4, 1, 1, 512, 16)

    def test_fits_respects_recompute_fractions(self, memory):
        breakdown = memory.pipeline_breakdown(4, 1, 4, 1024, 16)
        worst = max(stage.total_bytes for stage in breakdown)
        capacity = worst * 0.7
        assert not memory.fits(capacity, 4, 1, 4, 1024, 16)
        assert memory.fits(capacity, 4, 1, 4, 1024, 16, recompute_fractions=[1.0] * 4)

    def test_pipeline_breakdown_validates_fraction_length(self, memory):
        with pytest.raises(ValueError):
            memory.pipeline_breakdown(4, 1, 1, 512, 8, recompute_fractions=[0.5])

    def test_checkpoints_dominate_for_heavy_microbatches(self, memory):
        # Fig. 5c: activation checkpoints account for the bulk of early-stage memory.
        stage0 = memory.stage_breakdown(0, 8, 1, 8, 2048, 32)
        assert stage0.checkpoint_bytes > stage0.model_state_bytes
