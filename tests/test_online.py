"""The online scenario engine: trace replay determinism, policies, and metrics rows.

The contract under test (PR 9): a trace is a replayable request stream — same
trace + same seed ⇒ a bit-identical run, byte for byte in the result store,
whether served serially or on a warm worker pool; the generator is pure given its
arguments (the golden file pins the byte format); EDF and FCFS genuinely reorder
completions; fault storms preempt running jobs through the same §VI-D fault model
the static robustness study uses; and every row lands in the ordinary
:class:`~repro.api.results.ResultStore` (tail ``--kind``, CSV union, resume skip).
"""

from __future__ import annotations

import io
import json
import os
from types import SimpleNamespace

import pytest

from repro.api import Session
from repro.api.cli import main as repro_main
from repro.api.results import export_csv, open_result_store
from repro.hardware.faults import FaultEvent, FaultInjector, FaultModel
from repro.online import (
    EventQueue,
    JobRequest,
    StormSpec,
    Trace,
    TraceEvent,
    VirtualClock,
    generate_trace,
    read_trace,
    resolve_policy,
    write_trace,
)
from repro.online.metrics import FLEET_SUMMARY_JOB, JobMetrics, trace_cell_id
from repro.online.policy import CacheAffinityPolicy, EdfPolicy, FcfsPolicy

GOLDEN_TRACE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data", "golden_trace.jsonl")


@pytest.fixture(autouse=True)
def _clean_runtime():
    from repro.api import close_default_session

    close_default_session()
    yield
    close_default_session()


def golden_trace() -> Trace:
    """The pinned generator call behind ``tests/data/golden_trace.jsonl``.

    Regenerate the file (only after an *intentional* format change) with::

        PYTHONPATH=src:tests python -c \
            "import test_online as t; t.write_trace(t.golden_trace(), t.GOLDEN_TRACE)"
    """
    return generate_trace(
        jobs=8,
        rate=2.0,
        seed=7,
        arrival="diurnal",
        workloads=("tiny", "llama2-30b"),
        iterations=(1, 5),
        deadline_s=20.0,
        fleet=("tiny", "tiny"),
        storms=(
            StormSpec(
                wafer=1, at=1.0, duration=4.0,
                die_fault_rate=0.25, link_fault_rate=0.1, mean_repair_s=2.0,
            ),
        ),
        name="golden",
    )


# ------------------------------------------------------------- event substrate
class TestEventQueue:
    def test_orders_by_time_then_push_order(self):
        queue = EventQueue()
        queue.push(2.0, "late")
        queue.push(1.0, "tie-first")
        queue.push(1.0, "tie-second")
        popped = [queue.pop(), queue.pop(), queue.pop()]
        assert [payload for _, _, payload in popped] == ["tie-first", "tie-second", "late"]
        times = [time for time, _, _ in popped]
        seqs = [seq for _, seq, _ in popped]
        assert times == [1.0, 1.0, 2.0]
        assert seqs[0] < seqs[1]  # equal instants resolved by insertion order

    def test_rejects_negative_time_and_empty_pop(self):
        queue = EventQueue()
        with pytest.raises(ValueError, match="non-negative"):
            queue.push(-0.5, "x")
        with pytest.raises(IndexError):
            queue.pop()
        with pytest.raises(IndexError):
            queue.peek_time()
        queue.push(3.0, "x")
        assert queue.peek_time() == 3.0
        assert len(queue) == 1 and bool(queue)


class TestVirtualClock:
    def test_advances_forward_only(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(1.5) == 1.5  # same instant is fine
        with pytest.raises(ValueError, match="backwards"):
            clock.advance(1.0)
        assert clock.now == 1.5


# ---------------------------------------------------------------- fault stream
class TestFaultInjector:
    def _injector(self, **overrides) -> FaultInjector:
        config = dict(
            dies_x=4, dies_y=4, die_fault_rate=0.25, link_fault_rate=0.25,
            degraded_fraction=0.5, dead_share=0.5,
        )
        config.update(overrides)
        return FaultInjector(**config)

    def test_schedule_is_deterministic(self):
        injector = self._injector(mean_repair_s=3.0)
        first = injector.schedule(seed=13, horizon=10.0)
        second = injector.schedule(seed=13, horizon=10.0)
        assert first == second
        assert first != injector.schedule(seed=14, horizon=10.0)

    def test_folded_stream_equals_static_snapshot(self):
        """With no repairs, the storm folds down to FaultModel.random exactly."""
        injector = self._injector(mean_repair_s=0.0)
        events = injector.schedule(seed=5, horizon=10.0, start=2.0)
        folded = FaultInjector.model_at(events, time=12.0)
        static = FaultModel.random(
            4, 4, link_fault_rate=0.25, die_fault_rate=0.25,
            degraded_fraction=0.5, dead_share=0.5, seed=5,
        )
        assert folded.die_faults == static.die_faults
        assert folded.link_faults == static.link_faults

    def test_repairs_follow_onsets_inside_the_horizon(self):
        injector = self._injector(mean_repair_s=1.0)
        events = injector.schedule(seed=3, horizon=50.0)
        onsets = {}
        for event in events:
            assert 0.0 <= event.time < 50.0
            target = event.die if event.die is not None else event.link
            if event.kind.endswith("repair"):
                assert event.time > onsets[target]
            else:
                onsets[target] = event.time
        assert any(event.kind.endswith("repair") for event in events)

    def test_event_dict_round_trip_and_validation(self):
        event = FaultEvent(time=1.5, kind="die_degrade", die=(1, 2), value=0.5)
        assert FaultEvent.from_dict(1.5, event.to_dict()) == event
        link = FaultEvent(time=0.0, kind="link_fail", link=((0, 0), (0, 1)))
        assert FaultEvent.from_dict(0.0, link.to_dict()) == link
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(time=0.0, kind="meteor", die=(0, 0))
        with pytest.raises(ValueError, match="exactly one"):
            FaultEvent(time=0.0, kind="die_fail")
        with pytest.raises(ValueError, match="target a die"):
            FaultEvent(time=0.0, kind="die_fail", link=((0, 0), (0, 1)))


# ---------------------------------------------------------------- trace format
class TestJobRequest:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            JobRequest(id="", workload="tiny")
        with pytest.raises(ValueError, match="iterations"):
            JobRequest(id="j", workload="tiny", iterations=0)
        with pytest.raises(ValueError, match="deadline"):
            JobRequest(id="j", workload="tiny", deadline_s=0.0)

    def test_dict_round_trip_is_compact(self):
        job = JobRequest(id="j", workload="tiny")
        assert job.to_dict() == {"id": "j", "workload": "tiny"}  # defaults omitted
        rich = JobRequest(id="k", workload={"model": "llama2-30b"}, iterations=3, deadline_s=9.0)
        assert JobRequest.from_dict(rich.to_dict()) == rich
        with pytest.raises(ValueError, match="workload"):
            JobRequest.from_dict({"id": "j"})


class TestTraceFormat:
    def test_generation_is_pure(self):
        first, second = golden_trace(), golden_trace()
        assert [e.to_dict() for e in first.events] == [e.to_dict() for e in second.events]
        assert first.fingerprint == second.fingerprint

    def test_golden_file_pins_the_byte_format(self, tmp_path):
        """The committed golden file byte-matches a fresh generation — generator
        drift (RNG discipline, rounding, serialization) fails here first."""
        regenerated = tmp_path / "regenerated.jsonl"
        write_trace(golden_trace(), regenerated)
        with open(GOLDEN_TRACE, "rb") as handle:
            golden_bytes = handle.read()
        assert regenerated.read_bytes() == golden_bytes

    def test_write_read_round_trip(self, tmp_path):
        trace = golden_trace()
        path = tmp_path / "trace.jsonl"
        assert write_trace(trace, path) == len(trace.events)
        back = read_trace(path)
        assert back.fingerprint == trace.fingerprint
        assert back.fleet == trace.fleet and back.seed == trace.seed
        assert back.name == "golden"
        assert [e.to_dict() for e in back.events] == [e.to_dict() for e in trace.events]

    def test_fingerprint_is_name_blind(self):
        trace = golden_trace()
        renamed = Trace(
            events=trace.events, fleet=trace.fleet, seed=trace.seed, name="other"
        )
        assert renamed.fingerprint == trace.fingerprint

    def test_read_rejects_foreign_and_versioned_files(self, tmp_path):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text('{"hello": "world"}\n')
        with pytest.raises(ValueError, match="not a watos-trace file"):
            read_trace(foreign)
        future = tmp_path / "future.jsonl"
        future.write_text('{"format": "watos-trace", "version": 99}\n')
        with pytest.raises(ValueError, match="version 99"):
            read_trace(future)

    def test_read_reports_the_bad_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"format": "watos-trace", "version": 1, "fleet": ["tiny"]}\n'
            '{"t": 0.5, "event": "arrival", "job": {"id": "ok", "workload": "tiny"}}\n'
            '{"t": 1.0, "event": "meteor"}\n'
        )
        with pytest.raises(ValueError, match=r":3: bad trace event"):
            read_trace(path)

    def test_trace_validates_order_and_fleet_bounds(self):
        a = TraceEvent(time=2.0, kind="arrival", job=JobRequest(id="a", workload="tiny"))
        b = TraceEvent(time=1.0, kind="arrival", job=JobRequest(id="b", workload="tiny"))
        with pytest.raises(ValueError, match="non-decreasing"):
            Trace(events=[a, b], fleet=["tiny"])
        fault = TraceEvent(
            time=0.0, kind="fault", wafer=2,
            fault=FaultEvent(time=0.0, kind="die_fail", die=(0, 0)),
        )
        with pytest.raises(ValueError, match="only 1 wafers"):
            Trace(events=[fault], fleet=["tiny"])

    def test_generator_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="rate"):
            generate_trace(jobs=1, rate=0.0)
        with pytest.raises(ValueError, match="arrival"):
            generate_trace(jobs=1, arrival="weekly")
        with pytest.raises(ValueError, match="storm 0"):
            generate_trace(jobs=0, fleet=("tiny",), storms=(StormSpec(wafer=5),))


# -------------------------------------------------------------------- policies
def _pending(seq, deadline_abs=None, workload="tiny"):
    return SimpleNamespace(
        seq=seq, deadline_abs=deadline_abs, arrival=float(seq),
        job=JobRequest(id=f"j{seq}", workload=workload),
    )


def _idle(index, last_workload_key=None):
    return SimpleNamespace(index=index, name="tiny", speed=1.0, last_workload_key=last_workload_key)


class TestPolicies:
    def test_fcfs_takes_oldest_job_lowest_wafer(self):
        pending = [_pending(2), _pending(0), _pending(1)]
        idle = [_idle(3), _idle(1)]
        assert FcfsPolicy().select(pending, idle) == (1, 1)

    def test_edf_takes_soonest_deadline_deadline_free_last(self):
        pending = [_pending(0, deadline_abs=None), _pending(1, deadline_abs=50.0),
                   _pending(2, deadline_abs=10.0)]
        assert EdfPolicy().select(pending, [_idle(0)]) == (2, 0)
        # all deadline-free → falls back to FCFS order
        free = [_pending(1), _pending(0)]
        assert EdfPolicy().select(free, [_idle(0)]) == (1, 0)

    def test_affinity_prefers_the_warm_wafer(self):
        pending = [_pending(0, workload="tiny")]
        key = pending[0].job.workload_key()
        idle = [_idle(0, last_workload_key=None), _idle(1, last_workload_key=key)]
        assert CacheAffinityPolicy().select(pending, idle) == (0, 1)
        # no warm history → lowest index
        cold = [_idle(1), _idle(0)]
        assert CacheAffinityPolicy().select(pending, cold) == (0, 1)

    def test_empty_views_decline(self):
        assert FcfsPolicy().select([], [_idle(0)]) is None
        assert EdfPolicy().select([_pending(0)], []) is None

    def test_resolve_policy_suggests_near_misses(self):
        assert resolve_policy("edf").name == "edf"
        policy = EdfPolicy()
        assert resolve_policy(policy) is policy
        with pytest.raises(ValueError, match="did you mean 'fcfs'"):
            resolve_policy("fcsf")


# ------------------------------------------------------------------ the engine
def _small_trace():
    return generate_trace(
        jobs=12,
        rate=5.0,
        seed=3,
        workloads=("tiny",),
        fleet=("tiny", "tiny"),
        iterations=(5, 15),
        deadline_s=30.0,
        storms=(
            StormSpec(
                wafer=0, at=1.0, duration=3.0,
                die_fault_rate=0.25, dead_share=0.5, mean_repair_s=2.0,
            ),
        ),
        name="unit",
    )


def _serve(trace, store_path, *, pool=None, **kwargs):
    with Session(pool=pool) as session:
        return session.serve(trace, results=str(store_path), **kwargs)


class TestReplayDeterminism:
    def test_two_serves_are_byte_identical(self, tmp_path):
        trace = _small_trace()
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        report = _serve(trace, first)
        _serve(trace, second)
        assert report.jobs == 12
        assert first.read_bytes() == second.read_bytes()

    def test_warm_pool_serve_is_byte_identical(self, tmp_path):
        """Pool pricing is pure memoization: pool size must not change a byte."""
        trace = _small_trace()
        serial, pooled = tmp_path / "serial.jsonl", tmp_path / "pooled.jsonl"
        _serve(trace, serial)
        _serve(trace, pooled, pool=2)
        assert serial.read_bytes() == pooled.read_bytes()

    def test_reserve_resumes_and_rewrites_nothing(self, tmp_path):
        trace = _small_trace()
        store = tmp_path / "store.jsonl"
        first = _serve(trace, store)
        before = store.read_bytes()
        again = _serve(trace, store)
        assert again.rows_written == 0
        assert again.rows_skipped == first.rows_written == 13  # 12 jobs + fleet row
        assert store.read_bytes() == before

    def test_no_resume_is_an_error_free_overwrite(self, tmp_path):
        trace = _small_trace()
        store = tmp_path / "store.jsonl"
        _serve(trace, store)
        again = _serve(trace, store, resume=False)
        assert again.rows_written == 13 and again.rows_skipped == 0


class TestEngineSemantics:
    def _ordering_trace(self, deadlines):
        """Three same-instant arrivals on one wafer; deadlines passed per job."""
        events = [
            TraceEvent(
                time=0.0, kind="arrival",
                job=JobRequest(id=f"job-{i}", workload="tiny", iterations=5,
                               deadline_s=deadline),
            )
            for i, deadline in enumerate(deadlines)
        ]
        return Trace(events=events, fleet=["tiny"], name="ordering")

    def test_edf_and_fcfs_complete_in_different_orders(self, tmp_path):
        # job-0 is placed on arrival (the wafer is idle) under either policy; the
        # policies differ on who goes next: FCFS picks job-1, EDF picks job-2.
        trace = self._ordering_trace([1000.0, 100.0, 10.0])
        fcfs = _serve(trace, tmp_path / "fcfs.jsonl", policy="fcfs")
        edf = _serve(trace, tmp_path / "edf.jsonl", policy="edf")
        fcfs_finish = {job.job_id: job.finish for job in fcfs.job_metrics}
        edf_finish = {job.job_id: job.finish for job in edf.job_metrics}
        assert fcfs_finish["job-1"] < fcfs_finish["job-2"]
        assert edf_finish["job-2"] < edf_finish["job-1"]
        assert edf.policy == "edf" and fcfs.policy == "fcfs"

    def test_die_fail_preempts_and_counts_attempts(self, tmp_path):
        events = [
            TraceEvent(time=0.0, kind="arrival",
                       job=JobRequest(id="victim", workload="tiny", iterations=50)),
            TraceEvent(time=0.0, kind="fault", wafer=0,
                       fault=FaultEvent(time=0.0, kind="die_fail", die=(0, 0))),
            TraceEvent(time=0.0, kind="fault", wafer=0,
                       fault=FaultEvent(time=0.0, kind="die_repair", die=(0, 0), value=1.0)),
        ]
        trace = Trace(events=events, fleet=["tiny"], name="preempt")
        store = tmp_path / "store.jsonl"
        report = _serve(trace, store)
        assert report.completed == 1 and report.failed == 0
        assert report.preemptions == 1
        with open_result_store(str(store)) as handle:
            record = handle.get(trace_cell_id(_run_key(report), "victim"))
        assert record is not None
        assert record["attempts"] == 2  # 1 + the preemption
        assert record["result"]["metrics"]["preemptions"] == 1

    def test_degrade_slows_without_preempting(self, tmp_path):
        degrade = [
            TraceEvent(time=0.0, kind="arrival",
                       job=JobRequest(id="slow", workload="tiny", iterations=50)),
            TraceEvent(time=0.0, kind="fault", wafer=0,
                       fault=FaultEvent(time=0.0, kind="die_degrade", die=(0, 0), value=0.5)),
        ]
        healthy = [degrade[0]]
        slow = _serve(Trace(events=degrade, fleet=["tiny"]), tmp_path / "slow.jsonl")
        fast = _serve(Trace(events=healthy, fleet=["tiny"]), tmp_path / "fast.jsonl")
        assert slow.preemptions == 0 and slow.completed == 1
        assert slow.makespan_s > fast.makespan_s  # half a die down → longer service

    def test_downed_wafer_fails_runner_and_queued_jobs(self, tmp_path):
        # die_degrade to 0 stalls the runner in place (a die_fail would preempt
        # it back into the queue instead — that path is covered above).
        kill_all = [
            TraceEvent(time=0.0, kind="fault", wafer=0,
                       fault=FaultEvent(time=0.0, kind="die_degrade", die=(x, y), value=0.0))
            for x in range(4)
            for y in range(4)
        ]
        events = [
            TraceEvent(time=0.0, kind="arrival",
                       job=JobRequest(id="runner", workload="tiny", iterations=50)),
            *kill_all,
            TraceEvent(time=0.0, kind="arrival",
                       job=JobRequest(id="stranded", workload="tiny")),
        ]
        report = _serve(Trace(events=events, fleet=["tiny"]), tmp_path / "down.jsonl")
        assert report.completed == 0 and report.failed == 2
        by_id = {job.job_id: job for job in report.job_metrics}
        assert "down" in by_id["runner"].error
        assert "still queued" in by_id["stranded"].error

    def test_fault_beyond_fleet_is_rejected(self, tmp_path):
        trace = golden_trace()  # faults target wafer 1
        with Session() as session:
            with pytest.raises(ValueError, match="only 1 wafers"):
                session.serve(trace, fleet=["tiny"], results=str(tmp_path / "x.jsonl"))

    def test_pricing_is_memoized_across_jobs(self, tmp_path):
        report = _serve(_small_trace(), tmp_path / "store.jsonl")
        assert report.prices <= 2  # one real search per (wafer name, workload)
        assert report.price_hits > 0


def _run_key(report):
    """The engine's store run key (trace fingerprint x fleet x policy)."""
    from repro.core.evalcache import fingerprint

    return fingerprint(
        {"trace": report.fingerprint, "fleet": list(report.fleet), "policy": report.policy}
    )[:16]


# --------------------------------------------------------------- store plumbing
class TestStoreIntegration:
    def test_rows_carry_queueing_metrics(self, tmp_path):
        trace = _small_trace()
        store_path = tmp_path / "store.jsonl"
        report = _serve(trace, store_path)
        with open_result_store(str(store_path)) as store:
            records = store.load()
            fleet_rows = [
                record for record in records.values()
                if record["result"]["kind"] == "trace_fleet"
            ]
            job_rows = [
                record for record in records.values()
                if record["result"]["kind"] == "trace"
            ]
            tailed = store.tail(50, kind="trace_fleet")
        assert len(job_rows) == 12 and len(fleet_rows) == 1
        completed = [r for r in job_rows if r["result"]["status"] == "ok"]
        assert completed and all(
            "wait_s" in r["result"]["metrics"] and "slo_miss" in r["result"]["metrics"]
            for r in completed
        )
        summary = fleet_rows[0]["result"]["metrics"]
        assert 0.0 < summary["util"] <= 1.0
        assert summary["jobs"] == 12
        # written_at is the virtual clock, not the wall clock — the byte-identity invariant
        assert fleet_rows[0]["written_at"] == report.makespan_s
        assert len(tailed) == 1 and tailed[0][1]["result"]["label"] == "fleet[fcfs]"

    def test_csv_export_unions_trace_and_sweep_columns(self, tmp_path):
        from repro.api.result import RunResult
        from repro.api.results import make_record

        store_path = tmp_path / "store.jsonl"
        _serve(_small_trace(), store_path)
        with open_result_store(str(store_path)) as store:
            sweep_row = RunResult(
                kind="scheduler", metrics={"throughput": 123.0}, seconds=1.0,
                label="sweep-cell", cell_id="sweepcell0000000",
            )
            store.put(sweep_row.cell_id, make_record(sweep_row, None, now=0.0))
            buffer = io.StringIO()
            rows = export_csv(store, buffer)
        header = buffer.getvalue().splitlines()[0].split(",")
        assert rows == 14  # 12 jobs + fleet summary + the sweep cell
        for column in ("wait_s", "slo_miss", "util", "throughput"):
            assert column in header

    def test_put_many_matches_per_put(self, tmp_path):
        from repro.api.results import make_record

        rows = []
        for index in range(5):
            metrics = JobMetrics(
                job_id=f"job-{index}", workload_key="k", arrival=float(index),
                start=float(index), finish=index + 1.0,
            )
            run = metrics.to_run_result("fp")
            rows.append((run.cell_id, make_record(run, None, now=index + 1.0)))

        one_path, many_path = str(tmp_path / "one.jsonl"), str(tmp_path / "many.jsonl")
        with open_result_store(one_path) as one:
            for cell_id, record in rows:
                one.put(cell_id, record)
        with open_result_store(many_path) as many:
            many.put_many(rows)
        with open(one_path, "rb") as a, open(many_path, "rb") as b:
            assert a.read() == b.read()

        with open_result_store(str(tmp_path / "batch.sqlite")) as sqlite_store:
            sqlite_store.put_many(rows)
            loaded = sqlite_store.load()
        assert list(loaded) == [cell_id for cell_id, _ in rows]
        assert loaded[rows[0][0]] == rows[0][1]

    def test_fleet_summary_cell_id_is_stable(self):
        assert trace_cell_id("fp", FLEET_SUMMARY_JOB) == trace_cell_id("fp", FLEET_SUMMARY_JOB)
        assert trace_cell_id("fp", "job-1") != trace_cell_id("other", "job-1")


# ------------------------------------------------------------------ front doors
class TestSessionAndCli:
    def test_session_serve_accepts_a_path(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        write_trace(_small_trace(), trace_path)
        with Session() as session:
            report = session.serve(str(trace_path), results=str(tmp_path / "s.jsonl"))
        assert report.jobs == 12 and report.trace == "unit"

    def test_serve_on_a_closed_session_is_an_error(self, tmp_path):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError):
            session.serve(_small_trace(), results=str(tmp_path / "s.jsonl"))

    def test_trace_gen_serve_tail_round_trip(self, tmp_path, capsys):
        trace_path = str(tmp_path / "cli-trace.jsonl")
        store_path = str(tmp_path / "cli-store.jsonl")
        out_path = str(tmp_path / "report.json")
        assert repro_main(
            ["trace", "gen", "--out", trace_path, "--jobs", "5", "--rate", "4",
             "--seed", "3", "--deadline", "10", "--fleet", "tiny",
             "--storm", "wafer=0,at=0.5,duration=2,die_rate=0.25,repair_s=1"]
        ) == 0
        trace = read_trace(trace_path)
        assert len(trace.jobs) == 5 and trace.fleet == ["tiny"]
        assert any(event.kind == "fault" for event in trace.events)

        assert repro_main(
            ["serve-trace", trace_path, "--policy", "edf",
             "--results", store_path, "--json", out_path]
        ) == 0
        payload = json.loads(open(out_path).read())
        assert payload["jobs"] == 5 and payload["policy"] == "edf"
        capsys.readouterr()

        assert repro_main(["results", "tail", store_path, "--kind", "trace_fleet"]) == 0
        assert "fleet[edf]" in capsys.readouterr().out

    def test_bad_storm_spec_is_a_clear_cli_error(self, tmp_path):
        with pytest.raises(SystemExit):
            repro_main(
                ["trace", "gen", "--out", str(tmp_path / "t.jsonl"),
                 "--jobs", "1", "--storm", "wafer=0,meteor=1"]
            )

    def test_unknown_policy_is_a_clear_error(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        write_trace(_small_trace(), trace_path)
        with pytest.raises(SystemExit):
            repro_main(["serve-trace", trace_path, "--policy", "lifo",
                        "--results", str(tmp_path / "s.jsonl")])
