"""Tests for the fast evaluation subsystem: the content-addressed evaluation cache,
fingerprint sensitivity, the event-driven 1F1B simulator and the parallel search loops.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import (
    EvaluationCache,
    canonicalize,
    combine_fingerprints,
    fingerprint,
)
from repro.core.evaluator import Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.hardware_dse import DieGranularityDse
from repro.core.plan import MemPair
from repro.hardware.faults import FaultModel
from repro.parallelism.partition import TPSplitStrategy
from repro.parallelism.pipeline import (
    PipelineCostInputs,
    simulate_1f1b,
    simulate_1f1b_reference,
)
from repro.interconnect.collectives import CollectiveAlgorithm
from repro.workloads.workload import TrainingWorkload

from repro_testlib import make_small_wafer, make_tiny_model


@pytest.fixture
def wafer():
    return make_small_wafer(dram_gb=1.0)


@pytest.fixture
def workload():
    return TrainingWorkload(
        make_tiny_model(), global_batch_size=32, micro_batch_size=8,
        sequence_length=2048,
    )


@pytest.fixture
def seed_plan(wafer, workload):
    return CentralScheduler(wafer).best(workload).plan


# ---------------------------------------------------------------------- cache basics
class TestEvaluationCache:
    def test_hit_miss_accounting(self, wafer, workload, seed_plan):
        evaluator = Evaluator(wafer)
        first = evaluator.evaluate(workload, seed_plan)
        second = evaluator.evaluate(workload, seed_plan)
        assert first == second
        assert evaluator.cache.misses == 1
        assert evaluator.cache.hits == 1
        assert evaluator.raw_evaluations == 1
        assert evaluator.cache.hit_rate == 0.5

    def test_structurally_equal_plans_share_an_entry(self, wafer, workload, seed_plan):
        evaluator = Evaluator(wafer)
        clone = replace(seed_plan)
        assert clone is not seed_plan
        evaluator.evaluate(workload, seed_plan)
        evaluator.evaluate(workload, clone)
        assert evaluator.cache.hits == 1 and evaluator.cache.misses == 1

    def test_disabled_cache_paths(self, wafer, workload, seed_plan):
        evaluator = Evaluator(wafer, use_cache=False)
        assert evaluator.cache is None
        a = evaluator.evaluate(workload, seed_plan)
        b = evaluator.evaluate(workload, seed_plan)
        assert a == b
        assert evaluator.raw_evaluations == 2

    def test_cached_equals_uncached_bitforbit(self, wafer, workload, seed_plan):
        raw = Evaluator(wafer, use_cache=False, memoize_stages=False)
        fast = Evaluator(wafer)
        assert raw.evaluate(workload, seed_plan) == fast.evaluate(workload, seed_plan)

    def test_lru_eviction(self):
        cache = EvaluationCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now least recent
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.peek("b") is None
        assert cache.stats.evictions == 1

    def test_get_or_compute(self):
        cache = EvaluationCache()
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert cache.get_or_compute("k", lambda: calls.append(1) or 43) == 42
        assert len(calls) == 1


# ---------------------------------------------------------------- fingerprint checks
class TestFingerprintSensitivity:
    def fp(self, evaluator, workload, plan):
        return evaluator.fingerprint(workload, plan)

    def test_any_plan_field_change_misses(self, wafer, workload, seed_plan):
        evaluator = Evaluator(wafer)
        base = self.fp(evaluator, workload, seed_plan)
        pp = seed_plan.parallelism.pp

        variants = [
            seed_plan.with_recompute(
                seed_plan.recompute.with_stage(0, frozenset({"attention.qkv"}))
                if seed_plan.recompute.stage(0) != frozenset({"attention.qkv"})
                else seed_plan.recompute.with_stage(0, frozenset())
            ),
            replace(
                seed_plan,
                collective=(
                    CollectiveAlgorithm.TACOS
                    if seed_plan.collective is not CollectiveAlgorithm.TACOS
                    else CollectiveAlgorithm.BIDIRECTIONAL_RING
                ),
            ),
            replace(seed_plan, split_strategy=TPSplitStrategy.SEQUENCE),
            replace(seed_plan, offload_to_host=True),
        ]
        if seed_plan.placement is not None and pp >= 2:
            order = list(range(pp))
            order[0], order[1] = order[1], order[0]
            variants.append(seed_plan.with_placement(seed_plan.placement.permuted(order)))
        if pp >= 2:
            variants.append(
                seed_plan.with_mem_pairs(
                    list(seed_plan.mem_pairs) + [MemPair(0, pp - 1, 123.0)]
                )
            )
        if seed_plan.mem_pairs:
            scaled = [replace(p, bytes_moved=p.bytes_moved * 0.5) for p in seed_plan.mem_pairs]
            variants.append(seed_plan.with_mem_pairs(scaled))

        fps = [self.fp(evaluator, workload, variant) for variant in variants]
        assert all(fp != base for fp in fps), "every plan field change must miss"
        assert len(set(fps)) == len(fps), "distinct variants must not collide"

    def test_workload_and_hardware_changes_miss(self, wafer, workload, seed_plan):
        evaluator = Evaluator(wafer)
        base = self.fp(evaluator, workload, seed_plan)
        assert self.fp(evaluator, workload.with_sequence_length(1024), seed_plan) != base
        assert self.fp(evaluator, workload.with_batch(64, 8), seed_plan) != base

        other_wafer = make_small_wafer(dram_gb=2.0)
        assert self.fp(Evaluator(other_wafer), workload, seed_plan) != base
        assert self.fp(Evaluator(wafer, fault_aware=False), workload, seed_plan) != base

        faults = FaultModel()
        faults.add_die_fault((0, 0), 0.5)
        assert self.fp(Evaluator(wafer, faults=faults), workload, seed_plan) != base

    def test_in_place_fault_injection_invalidates(self, wafer, workload, seed_plan):
        faults = FaultModel()
        faults.add_link_fault(((0, 0), (0, 1)), 0.5)
        evaluator = Evaluator(wafer, faults=faults)
        before = self.fp(evaluator, workload, seed_plan)
        faults.add_link_fault(((0, 0), (0, 1)), 0.25)
        assert self.fp(evaluator, workload, seed_plan) != before

    def test_canonicalize_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_combine_order_sensitive(self):
        a, b = fingerprint(1), fingerprint(2)
        assert combine_fingerprints(a, b) != combine_fingerprints(b, a)


# ------------------------------------------------------------- 1F1B event-driven sim
class TestEventDriven1F1B:
    def test_randomized_equivalence_grid(self):
        rng = random.Random(1234)
        for pp in range(1, 7):
            for n in range(1, 17):
                forward = [rng.uniform(0.0, 2.0) for _ in range(pp)]
                backward = [rng.uniform(0.05, 3.0) for _ in range(pp)]
                comm = [rng.uniform(0.0, 0.5) for _ in range(pp - 1)]
                inputs = PipelineCostInputs(forward, backward, comm, n)
                new = simulate_1f1b(inputs)
                old = simulate_1f1b_reference(inputs)
                assert new.iteration_time == old.iteration_time, (pp, n)
                assert new.stage_busy_time == old.stage_busy_time, (pp, n)
                assert new.stage_finish_time == old.stage_finish_time, (pp, n)

    def test_heterogeneous_stages_still_match(self):
        inputs = PipelineCostInputs(
            forward=[1.0, 0.1, 2.5, 0.4],
            backward=[2.0, 0.2, 5.0, 0.8],
            comm=[0.3, 0.0, 1.2],
            num_microbatches=7,
        )
        new, old = simulate_1f1b(inputs), simulate_1f1b_reference(inputs)
        assert new == old


# ----------------------------------------------------------------- search-loop perf
class TestSearchLoops:
    def test_select_survives_fitness_ties(self, wafer, workload, seed_plan):
        ga = GeneticOptimizer(Evaluator(wafer), workload, GAConfig(seed=7))
        mutant = ga.mutate(seed_plan)
        # (fitness, TrainingPlan) tuples with equal fitness: plain sorted()/min() would
        # compare the plans and raise TypeError; selection must key on fitness only.
        scored = [(1.0, seed_plan), (1.0, mutant)] * 4
        survivors = ga._select(scored)
        assert len(survivors) == ga.config.population_size // 2
        assert survivors[0] is seed_plan  # stable: ties keep population order

    @pytest.mark.perf_smoke
    def test_cached_ga_prices_fewer_than_population_x_generations(
        self, wafer, workload, seed_plan
    ):
        config = GAConfig(population_size=8, generations=6, seed=0)
        evaluator = Evaluator(wafer)
        GeneticOptimizer(evaluator, workload, config).optimize(seed_plan)
        logical = config.population_size * config.generations
        assert evaluator.raw_evaluations < logical
        assert evaluator.cache.hits > 0

    def test_ga_parallel_matches_serial(self, wafer, workload, seed_plan):
        config = GAConfig(population_size=6, generations=3, seed=5)
        serial = GeneticOptimizer(Evaluator(wafer), workload, config).optimize(seed_plan)
        parallel = GeneticOptimizer(Evaluator(wafer), workload, config).optimize(
            seed_plan, parallel=2
        )
        assert parallel.best_fitness == serial.best_fitness
        assert parallel.history == serial.history
        assert parallel.best_plan == serial.best_plan

    def test_scheduler_explore_parallel_matches_serial(self, wafer, workload):
        serial = CentralScheduler(wafer).explore(workload)
        parallel = CentralScheduler(wafer).explore(workload, parallel=2)
        assert [r.plan for r in parallel] == [r.plan for r in serial]
        assert [r.result for r in parallel] == [r.result for r in serial]

    def test_parallel_explore_counters_stay_honest(self, wafer, workload):
        scheduler = CentralScheduler(wafer)
        first = scheduler.explore(workload, parallel=2)
        evaluator = scheduler.evaluator
        raw_after_first = evaluator.raw_evaluations
        assert raw_after_first == len(first)  # every candidate priced exactly once
        # A warm re-exploration must be answered from the cache: no new raw pricing,
        # one hit per candidate.
        hits_before = evaluator.cache.hits
        second = scheduler.explore(workload, parallel=2)
        assert [r.result for r in second] == [r.result for r in first]
        assert evaluator.raw_evaluations == raw_after_first
        assert evaluator.cache.hits == hits_before + len(second)

    def test_dse_sweep_parallel_matches_serial(self, workload):
        dse = DieGranularityDse(
            workload, areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,)
        )
        serial = dse.sweep(max_tp=4)
        parallel = dse.sweep(max_tp=4, parallel=2)
        assert parallel == serial
