"""Shared fixtures built on the helpers in :mod:`repro_testlib`.

Import helper *functions* from ``repro_testlib`` directly (``from repro_testlib import
make_small_wafer``), never from ``conftest``: pytest also loads
``benchmarks/conftest.py`` under the module name ``conftest`` when collecting from the
repo root, so a bare ``conftest`` import is ambiguous.
"""

from __future__ import annotations

import pytest

from repro.hardware.configs import wafer_config3
from repro.hardware.template import WaferConfig
from repro.workloads.models import ModelConfig
from repro.workloads.workload import TrainingWorkload

from repro_testlib import make_small_moe_model, make_small_wafer, make_tiny_model


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "perf_smoke: fast guards on the evaluation-layer performance machinery",
    )


@pytest.fixture
def small_wafer() -> WaferConfig:
    return make_small_wafer()

@pytest.fixture
def tight_wafer() -> WaferConfig:
    """A wafer whose per-die DRAM is small enough to force recomputation/balancing."""
    return make_small_wafer(dram_gb=1.0)


@pytest.fixture
def config3() -> WaferConfig:
    return wafer_config3()


@pytest.fixture
def tiny_model() -> ModelConfig:
    return make_tiny_model()


@pytest.fixture
def tiny_moe_model() -> ModelConfig:
    return make_small_moe_model()


@pytest.fixture
def tiny_workload(tiny_model) -> TrainingWorkload:
    return TrainingWorkload(
        tiny_model, global_batch_size=16, micro_batch_size=1, sequence_length=512
    )


@pytest.fixture
def heavy_workload(tiny_model) -> TrainingWorkload:
    """Same model with a heavier micro-batch so checkpoints dominate memory."""
    return TrainingWorkload(
        tiny_model, global_batch_size=32, micro_batch_size=8, sequence_length=2048
    )
