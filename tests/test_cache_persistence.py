"""Tests for the persistent evaluation-cache stores: round-trips, namespace/version
invalidation, corrupt-store recovery and the warm-start accounting.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import (
    EvaluationCache,
    JsonlCacheStore,
    SqliteCacheStore,
    decode_value,
    default_namespace,
    encode_value,
    open_store,
)
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.workloads.workload import TrainingWorkload

from repro_testlib import make_small_wafer, make_tiny_model


def sample_result(iteration_time: float = 1.5) -> EvaluationResult:
    return EvaluationResult(
        iteration_time=iteration_time,
        useful_flops=3.25e12,
        recompute_flops=0.125e12,
        bubble_fraction=0.07,
        stage_memory_bytes=(1.0, 2.5, float("inf")),
        plan_label="tp4-pp2",
        system_label="test-wafer",
    )


@pytest.fixture(params=["jsonl", "sqlite"])
def store_path(request, tmp_path):
    suffix = ".jsonl" if request.param == "jsonl" else ".sqlite"
    return str(tmp_path / f"cache{suffix}")


# ---------------------------------------------------------------------------- codec
class TestCodec:
    def test_result_roundtrip_is_exact(self):
        result = sample_result()
        assert decode_value(encode_value(result)) == result

    def test_infinite_oom_result_roundtrips(self):
        oom = EvaluationResult.out_of_memory("plan", "wafer")
        decoded = decode_value(encode_value(oom))
        assert decoded == oom and decoded.iteration_time == float("inf")

    def test_primitives_and_containers(self):
        value = {"a": (1, 2.5), "b": [True, None], "c": frozenset({"x", "y"})}
        assert decode_value(encode_value(value)) == value

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_unknown_marker_rejected(self):
        with pytest.raises(ValueError):
            decode_value({"__rocket__": 1})

    def test_foreign_module_rejected(self):
        with pytest.raises(ValueError):
            decode_value({"__dataclass__": "os.path:join", "fields": {}})


# ------------------------------------------------------------------------ round trip
class TestRoundTrip:
    def test_flush_and_warm_start(self, store_path):
        result = sample_result()
        with EvaluationCache(store=store_path) as cache:
            cache.put("key-a", result)
            cache.put("key-b", 42)
            assert cache.flush() == 2

        warm = EvaluationCache(store=store_path)
        assert warm.stats.loaded == 2
        assert warm.peek("key-a") == result
        assert warm.peek("key-b") == 42
        # Warm entries answer lookups as ordinary hits.
        assert warm.get("key-a") == result
        assert warm.stats.hits == 1
        warm.close()

    def test_incremental_appends_accumulate(self, store_path):
        with EvaluationCache(store=store_path) as first:
            first.put("a", 1)
        with EvaluationCache(store=store_path) as second:
            assert second.stats.loaded == 1
            second.put("b", 2)
        third = EvaluationCache(store=store_path)
        assert third.stats.loaded == 2
        third.close()

    def test_flush_spills_evicted_entries(self, store_path):
        cache = EvaluationCache(max_entries=2, store=store_path)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a" from memory
        assert cache.peek("a") is None
        assert cache.flush() == 3  # ... but the store still gets all three
        cache.close()
        warm = EvaluationCache(store=store_path)
        assert warm.stats.loaded == 3
        warm.close()

    def test_close_flushes(self, store_path):
        cache = EvaluationCache(store=store_path)
        cache.put("k", 7)
        cache.close()  # no explicit flush
        warm = EvaluationCache(store=store_path)
        assert warm.peek("k") == 7
        warm.close()

    def test_open_store_suffix_dispatch(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "x.sqlite")), SqliteCacheStore)
        assert isinstance(open_store(str(tmp_path / "x.db")), SqliteCacheStore)
        assert isinstance(open_store(str(tmp_path / "x.jsonl")), JsonlCacheStore)


# ----------------------------------------------------------------- version namespace
class TestNamespaceInvalidation:
    def test_mismatched_namespace_discards_store(self, store_path):
        with EvaluationCache(store=open_store(store_path, namespace="schema-v1")) as cache:
            cache.put("k", 1)

        stale = EvaluationCache(store=open_store(store_path, namespace="schema-v2"))
        assert stale.stats.loaded == 0 and len(stale) == 0
        stale.close()

        # The store has been re-namespaced: the old namespace no longer loads either.
        old = EvaluationCache(store=open_store(store_path, namespace="schema-v1"))
        assert old.stats.loaded == 0
        old.close()

    def test_default_namespace_is_versioned(self):
        assert "v1" in default_namespace()


# ------------------------------------------------------------------ corrupt recovery
class TestCorruptStoreRecovery:
    def test_jsonl_skips_corrupt_rows(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with EvaluationCache(store=path) as cache:
            cache.put("good-1", 1)
            cache.put("good-2", sample_result())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn-and-invalid\n")
            handle.write(json.dumps({"k": "bad-type", "v": {"__rocket__": 0}}) + "\n")
            handle.write(json.dumps({"wrong": "shape"}) + "\n")

        store = open_store(path)
        entries = store.load()
        assert set(entries) == {"good-1", "good-2"}
        assert store.load_errors == 3

    def test_jsonl_foreign_file_preserved_not_truncated(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        foreign = "this is not an evalcache file\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(foreign)
        cache = EvaluationCache(store=path)
        assert cache.stats.loaded == 0
        # A pure read must not destroy the user's file.
        assert open(path, encoding="utf-8").read() == foreign
        cache.put("k", 1)
        cache.flush()
        cache.close()
        # The first write moves the foreign file aside instead of clobbering it.
        assert open(path + ".corrupt", encoding="utf-8").read() == foreign
        warm = EvaluationCache(store=path)
        assert warm.stats.loaded == 1
        warm.close()

    def test_sqlite_corrupt_file_recovers_cold_and_is_preserved(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        junk = b"definitely not a sqlite database"
        with open(path, "wb") as handle:
            handle.write(junk)
        cache = EvaluationCache(store=path)
        assert cache.stats.loaded == 0
        assert open(path + ".corrupt", "rb").read() == junk
        cache.put("k", sample_result())
        cache.flush()
        cache.close()
        warm = EvaluationCache(store=path)
        assert warm.stats.loaded == 1
        warm.close()

    def test_sqlite_corrupt_row_skipped(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        with EvaluationCache(store=path) as cache:
            cache.put("good", 5)
        conn = sqlite3.connect(path)
        conn.execute("INSERT INTO entries VALUES ('bad', 'not-json', 0)")
        conn.commit()
        conn.close()
        store = open_store(path)
        entries = store.load()
        assert entries == {"good": 5}
        assert store.load_errors == 1
        store.close()


# -------------------------------------------------------------- evaluator integration
class TestEvaluatorWarmStart:
    def test_persisted_sweep_reprices_nothing(self, tmp_path):
        wafer = make_small_wafer(dram_gb=1.0)
        workload = TrainingWorkload(
            make_tiny_model(), global_batch_size=32, micro_batch_size=8,
            sequence_length=2048,
        )
        path = str(tmp_path / "sweep.jsonl")

        cold_cache = EvaluationCache(store=path)
        cold = CentralScheduler(wafer, evaluator=Evaluator(wafer, cache=cold_cache))
        cold_records = cold.explore(workload)
        cold_raw = cold.evaluator.raw_evaluations
        assert cold_raw == len(cold_records) > 0
        cold_cache.close()

        warm_cache = EvaluationCache(store=path)
        assert warm_cache.stats.loaded == cold_raw
        warm = CentralScheduler(wafer, evaluator=Evaluator(wafer, cache=warm_cache))
        warm_records = warm.explore(workload)
        assert warm.evaluator.raw_evaluations == 0
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hit_rate == 1.0
        assert [r.result for r in warm_records] == [r.result for r in cold_records]
        warm_cache.close()

    def test_seed_respects_lru_bound(self, store_path):
        with EvaluationCache(store=store_path) as writer:
            for i in range(6):
                writer.put(f"k{i}", i)
        bounded = EvaluationCache(max_entries=3, store=store_path)
        assert len(bounded) == 3
        # The newest entries stay resident; the store keeps everything.
        assert bounded.peek("k5") == 5 and bounded.peek("k0") is None
        bounded.close()

    def test_pickled_cache_drops_store(self, store_path):
        import pickle

        cache = EvaluationCache(store=store_path)
        cache.put("k", 1)
        cache.flush()  # sqlite: opens the (unpicklable) connection
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.store is None
        assert clone.peek("k") == 1
        assert cache.store is not None  # the parent keeps its live store
        cache.close()

    def test_seed_export_delta_absorb(self):
        parent = EvaluationCache()
        parent.put("p", 1)
        child = EvaluationCache()
        child.seed(parent.export())
        assert child.get("p") == 1 and child.stats.hits == 1
        child.put("q", 2)
        assert child.delta() == {"q": 2}
        assert parent.absorb(child.delta()) == 1
        assert parent.peek("q") == 2
        # Re-absorbing the same delta is a no-op.
        assert parent.absorb(child.delta()) == 0


# ------------------------------------------------------------------- age eviction
class TestAgeCompaction:
    """priced_at timestamps + compact(max_age_s=...): the age-eviction knob."""

    def test_rows_carry_priced_at_timestamps(self, store_path):
        import time

        before = time.time()
        with EvaluationCache(store=store_path) as cache:
            cache.put("k", sample_result())
        store = open_store(store_path)
        store.load()
        assert before <= store.row_times["k"] <= time.time()
        store.close()

    def test_warm_start_preserves_original_timestamp(self, store_path):
        with EvaluationCache(store=store_path) as cache:
            cache.put("k", 1)
        store = open_store(store_path)
        store.load()
        stamped = store.row_times["k"]
        store.close()
        # A warm run that only reads (and re-flushes nothing) must not rejuvenate.
        warm = EvaluationCache(store=store_path)
        assert warm.get("k") == 1
        warm.compact()  # rewrite via replace_all, timestamps carried over
        warm.close()
        store = open_store(store_path)
        store.load()
        assert store.row_times["k"] == stamped
        store.close()

    def test_compact_max_age_evicts_only_old_rows(self, store_path):
        store = open_store(store_path)
        store.append({"old": 1}, {"old": 1_000.0})
        store.append({"new": 2}, {"new": 2_000.0})
        store.close()
        cache = EvaluationCache(store=store_path)
        kept = cache.compact(max_age_s=500.0, now=2_400.0)
        cache.close()
        assert kept == 1
        warm = EvaluationCache(store=store_path)
        assert warm.peek("new") == 2 and warm.peek("old") is None
        warm.close()

    def test_age_and_size_knobs_compose(self, store_path):
        store = open_store(store_path)
        store.append(
            {"a": 1, "b": 2, "c": 3}, {"a": 100.0, "b": 900.0, "c": 950.0}
        )
        store.close()
        cache = EvaluationCache(store=store_path)
        # Age drops "a"; size then keeps only the newest single survivor.
        kept = cache.compact(max_entries=1, max_age_s=500.0, now=1_000.0)
        cache.close()
        assert kept == 1
        warm = EvaluationCache(store=store_path)
        assert warm.peek("c") == 3
        warm.close()

    def test_pre_timestamp_rows_count_as_oldest(self, store_path):
        store = open_store(store_path)
        if isinstance(store, JsonlCacheStore):
            # Hand-write a legacy row without a "t" field.
            store.append({}, None)  # no-op, just materialise nothing
            with open(store_path, "w", encoding="utf-8") as handle:
                handle.write(store._header() + "\n")
                handle.write(json.dumps({"k": "legacy", "v": 7}) + "\n")
        else:
            store.append({"legacy": 7}, {"legacy": 0.0})
        store.close()
        cache = EvaluationCache(store=store_path)
        assert cache.peek("legacy") == 7
        cache.put("fresh", 8)
        kept = cache.compact(max_age_s=3600.0)
        cache.close()
        assert kept == 1
        warm = EvaluationCache(store=store_path)
        assert warm.peek("fresh") == 8 and warm.peek("legacy") is None
        warm.close()

    def test_priced_at_stays_bounded_on_store_backed_sweeps(self, store_path):
        # Regression: timestamps of spilled-and-evicted keys must not accumulate —
        # a week-long bounded-LRU sweep would otherwise leak one stamp per key.
        cache = EvaluationCache(max_entries=10, store=store_path)
        for index in range(200):
            cache.put(f"k{index}", index)
            if index % 20 == 0:
                cache.flush()
        cache.flush()
        assert len(cache._priced_at) <= 10 + 1  # resident set (+ in-flight slack)
        cache.close()
        store = open_store(store_path)
        assert len(store.load()) == 200  # the store, not the stamps, keeps history
        store.close()

    def test_sqlite_schema_migration_from_pre_timestamp_store(self, tmp_path):
        path = str(tmp_path / "old.sqlite")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute("CREATE TABLE entries (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute(
            "INSERT INTO meta VALUES ('namespace', ?)", (default_namespace(),)
        )
        conn.execute(
            "INSERT INTO entries VALUES ('k', ?)", (json.dumps(encode_value(5)),)
        )
        conn.commit()
        conn.close()
        store = SqliteCacheStore(path)
        assert store.load() == {"k": 5}
        assert store.row_times["k"] == 0.0  # migrated rows count as oldest
        store.append({"k2": 6})
        assert store.load() == {"k": 5, "k2": 6}
        assert store.row_times["k2"] > 0.0
        store.close()
