"""XY routing, fault-aware paths and the link-load tracker."""

import pytest

from repro.hardware.faults import FaultModel
from repro.interconnect.routing import (
    LinkLoadTracker,
    all_shortest_paths,
    fault_aware_path,
    manhattan_hops,
    path_links,
    xy_path,
)
from repro.interconnect.topology import MeshTopology


@pytest.fixture
def mesh() -> MeshTopology:
    return MeshTopology(dies_x=5, dies_y=5, link_bandwidth=1e12)


class TestPaths:
    def test_manhattan_distance(self):
        assert manhattan_hops((0, 0), (3, 2)) == 5
        assert manhattan_hops((2, 2), (2, 2)) == 0

    def test_xy_path_goes_x_first(self):
        path = xy_path((0, 0), (2, 1))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1)]

    def test_xy_path_handles_negative_direction(self):
        path = xy_path((3, 3), (1, 3))
        assert path == [(3, 3), (2, 3), (1, 3)]

    def test_xy_path_length_matches_manhattan(self):
        src, dst = (0, 4), (4, 0)
        assert len(xy_path(src, dst)) - 1 == manhattan_hops(src, dst)

    def test_path_links_are_canonical(self):
        links = path_links([(1, 0), (0, 0), (0, 1)])
        assert ((0, 0), (1, 0)) in links
        assert ((0, 0), (0, 1)) in links

    def test_fault_aware_path_equals_xy_when_healthy(self, mesh):
        assert fault_aware_path(mesh, (0, 0), (3, 2)) == xy_path((0, 0), (3, 2))

    def test_fault_aware_path_avoids_dead_die(self):
        faults = FaultModel()
        faults.add_die_fault((1, 0), 0.0)
        mesh = MeshTopology(5, 5, 1e12, faults=faults)
        path = fault_aware_path(mesh, (0, 0), (2, 0))
        assert (1, 0) not in path
        assert path[0] == (0, 0) and path[-1] == (2, 0)

    def test_all_shortest_paths_limited(self, mesh):
        paths = all_shortest_paths(mesh, (0, 0), (2, 2), limit=3)
        assert 1 <= len(paths) <= 3
        for path in paths:
            assert len(path) - 1 == manhattan_hops((0, 0), (2, 2))


class TestLinkLoadTracker:
    def test_add_path_accumulates_load(self, mesh):
        tracker = LinkLoadTracker(mesh)
        tracker.add_path(xy_path((0, 0), (2, 0)), 100.0)
        tracker.add_path(xy_path((0, 0), (1, 0)), 50.0)
        assert tracker.load(((0, 0), (1, 0))) == pytest.approx(150.0)
        assert tracker.load(((1, 0), (2, 0))) == pytest.approx(100.0)

    def test_conflicts_count_shared_links(self, mesh):
        tracker = LinkLoadTracker(mesh)
        tracker.add_path(xy_path((0, 0), (3, 0)), 10.0)
        assert tracker.conflicts(xy_path((1, 0), (2, 0))) == 1
        assert tracker.conflicts(xy_path((0, 1), (3, 1))) == 0

    def test_utilization_fraction(self, mesh):
        tracker = LinkLoadTracker(mesh)
        assert tracker.utilization() == 0.0
        tracker.add_path(xy_path((0, 0), (4, 0)), 1.0)
        assert tracker.utilization() == pytest.approx(4 / len(mesh.links()))

    def test_congestion_time_grows_with_existing_load(self, mesh):
        tracker = LinkLoadTracker(mesh)
        empty = tracker.congestion_time(1e9, xy_path((0, 0), (2, 0)))
        tracker.add_path(xy_path((0, 0), (2, 0)), 1e9)
        loaded = tracker.congestion_time(1e9, xy_path((0, 0), (2, 0)))
        assert loaded > empty

    def test_congestion_time_zero_for_local_path(self, mesh):
        tracker = LinkLoadTracker(mesh)
        assert tracker.congestion_time(1e9, [(0, 0)]) == 0.0

    def test_congestion_time_rejects_dead_link(self):
        faults = FaultModel()
        faults.add_link_fault(((0, 0), (1, 0)), 0.0)
        mesh = MeshTopology(3, 3, 1e12, faults=faults)
        tracker = LinkLoadTracker(mesh)
        with pytest.raises(ValueError):
            tracker.congestion_time(1.0, [(0, 0), (1, 0)])

    def test_negative_traffic_rejected(self, mesh):
        with pytest.raises(ValueError):
            LinkLoadTracker(mesh).add_path(xy_path((0, 0), (1, 0)), -1.0)

    def test_totals(self, mesh):
        tracker = LinkLoadTracker(mesh)
        tracker.add_path(xy_path((0, 0), (2, 0)), 5.0)
        assert tracker.total_traffic() == pytest.approx(10.0)
        assert tracker.busy_links() == 2
        assert tracker.max_link_load() == pytest.approx(5.0)
