"""Collective-communication cost models: rings, TACOS, 2D TP, all-to-all, broadcast."""

import pytest

from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.collectives import CollectiveAlgorithm, CollectiveModel


LINK = AlphaBetaLink(bandwidth=1e12, latency=1e-7)


def model(n: int, overhead: float = 2e-6) -> CollectiveModel:
    return CollectiveModel(LINK, n, step_overhead=overhead)


class TestRingAllReduce:
    def test_single_die_is_free(self):
        assert model(1).ring_all_reduce(1e9) == 0.0

    def test_zero_bytes_is_free(self):
        assert model(8).ring_all_reduce(0.0) == 0.0

    def test_bandwidth_term_matches_formula(self):
        n, size = 4, 1e9
        result = model(n, overhead=0.0).ring_all_reduce(size)
        expected = 2 * (n - 1) * LINK.latency + 2 * (n - 1) / n * size / LINK.bandwidth
        assert result == pytest.approx(expected)

    def test_bidirectional_halves_bandwidth_term(self):
        uni = model(8, overhead=0.0).ring_all_reduce(1e9)
        bi = model(8, overhead=0.0).ring_all_reduce(1e9, bidirectional=True)
        assert bi < uni

    def test_step_overhead_penalises_large_groups(self):
        small = model(4).ring_all_reduce(1e6)
        large = model(32).ring_all_reduce(1e6)
        assert large > small

    def test_volume_term_saturates_with_group_size(self):
        # Without per-step overhead the volume term approaches 2×bytes/bw.
        big = model(64, overhead=0.0).ring_all_reduce(1e9)
        limit = 2.0 * 1e9 / LINK.bandwidth
        assert big == pytest.approx(limit, rel=0.05)


class TestOtherRings:
    def test_all_gather_cheaper_than_all_reduce(self):
        assert model(8).ring_all_gather(1e9) < model(8).ring_all_reduce(1e9)

    def test_reduce_scatter_equals_all_gather(self):
        m = model(8)
        assert m.reduce_scatter(1e9) == pytest.approx(m.ring_all_gather(1e9))

    def test_ring_bi_odd_matches_bidirectional_for_even_groups(self):
        m = model(8)
        assert m.ring_bi_odd(1e9) == pytest.approx(
            m.ring_all_reduce(1e9, bidirectional=True)
        )

    def test_ring_bi_odd_supports_odd_groups_with_small_penalty(self):
        m = model(7)
        even = m.ring_all_reduce(1e9, bidirectional=True)
        odd = m.ring_bi_odd(1e9)
        assert odd > even
        assert odd < even * 1.5

    def test_tacos_beats_plain_ring_for_large_groups(self):
        n = 49
        assert model(n).tacos(1e8) < model(n).ring_all_reduce(1e8)

    def test_tacos_cannot_beat_bandwidth_lower_bound(self):
        n = 16
        lower = 2.0 * (n - 1) / n * 1e9 / (2.0 * LINK.bandwidth)
        assert model(n).tacos(1e9) >= lower


class TestDispatchAndOthers:
    @pytest.mark.parametrize("algorithm", list(CollectiveAlgorithm))
    def test_dispatch_returns_nonnegative(self, algorithm):
        assert model(8).all_reduce(1e8, algorithm) >= 0.0

    def test_dispatch_matches_direct_calls(self):
        m = model(8)
        assert m.all_reduce(1e8, CollectiveAlgorithm.RING) == pytest.approx(
            m.ring_all_reduce(1e8)
        )
        assert m.all_reduce(1e8, CollectiveAlgorithm.TACOS) == pytest.approx(m.tacos(1e8))

    def test_2d_tp_costs_more_than_1d_on_mesh(self):
        # Fig. 21 insight: 2D TP moves more data and pays tail latency on a 2D mesh.
        m = model(16)
        assert m.tp_2d_all_reduce(1e9) > m.ring_all_reduce(1e9, bidirectional=True)

    def test_all_to_all_grows_with_group(self):
        assert model(16).all_to_all(1e9) > model(4).all_to_all(1e9)

    def test_broadcast_linear_in_size(self):
        m = model(8)
        assert m.broadcast(2e9) > m.broadcast(1e9)

    def test_single_member_collectives_free(self):
        m = model(1)
        assert m.all_to_all(1e9) == 0.0
        assert m.broadcast(1e9) == 0.0
        assert m.tp_2d_all_reduce(1e9) == 0.0


class TestLinkUtilization:
    def test_strip_shape_uses_all_links(self):
        assert model(4).ring_link_utilization((1, 4)) == pytest.approx(1.0)

    def test_square_shape_leaves_interior_idle(self):
        # A ring on a 3×3 block uses the 8 perimeter links out of 12 total.
        assert model(9).ring_link_utilization((3, 3)) == pytest.approx(8 / 12)

    def test_larger_blocks_have_lower_utilization(self):
        util_2x4 = model(8).ring_link_utilization((2, 4))
        util_4x4 = model(16).ring_link_utilization((4, 4))
        assert util_4x4 < util_2x4

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            model(4).ring_link_utilization((0, 4))
