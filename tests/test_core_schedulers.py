"""Evaluator, GCMR recomputation scheduler, DRAM allocator, central scheduler and GA."""

import math

import pytest

from repro.core.central_scheduler import CentralScheduler
from repro.core.dram_allocation import DramAllocator
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.placement import serpentine_placement
from repro.core.plan import MemPair, RecomputeConfig, TrainingPlan
from repro.core.recomputation import GcmrScheduler
from repro.hardware.faults import FaultModel
from repro.parallelism.strategies import ParallelismConfig
from repro.units import GB
from repro.workloads.workload import TrainingWorkload

from repro_testlib import make_small_wafer, make_tiny_model


def simple_plan(tp=2, pp=4, shape=(1, 2), recompute=None) -> TrainingPlan:
    return TrainingPlan(
        parallelism=ParallelismConfig(dp=1, tp=tp, pp=pp),
        tp_shape=shape,
        recompute=recompute or RecomputeConfig.none(pp),
    )


class TestEvaluator:
    def test_basic_evaluation_fields(self, small_wafer, tiny_workload):
        result = Evaluator(small_wafer).evaluate(tiny_workload, simple_plan())
        assert not result.oom
        assert result.iteration_time > 0
        assert result.throughput > 0
        assert 0.0 <= result.compute_utilization <= 1.0
        assert len(result.stage_memory_bytes) == 4

    def test_throughput_excludes_recompute_work(self, small_wafer, tiny_workload):
        evaluator = Evaluator(small_wafer)
        ops = tiny_workload.layer_operators()
        plain = evaluator.evaluate(tiny_workload, simple_plan())
        recomputed = evaluator.evaluate(
            tiny_workload, simple_plan(recompute=RecomputeConfig.full(4, ops))
        )
        assert recomputed.recompute_flops > 0
        assert recomputed.throughput < plain.throughput
        assert recomputed.total_throughput > recomputed.throughput

    def test_oom_detection_on_tight_wafer(self, tight_wafer, heavy_workload):
        result = Evaluator(tight_wafer).evaluate(heavy_workload, simple_plan(tp=1, pp=2, shape=(1, 1)))
        assert result.oom
        assert math.isinf(result.iteration_time)
        assert result.throughput == 0.0

    def test_recomputation_resolves_oom(self, tight_wafer, heavy_workload):
        ops = heavy_workload.layer_operators()
        evaluator = Evaluator(tight_wafer)
        oom = evaluator.evaluate(heavy_workload, simple_plan(tp=2, pp=2, shape=(1, 2)))
        recovered = evaluator.evaluate(
            heavy_workload,
            simple_plan(tp=2, pp=2, shape=(1, 2), recompute=RecomputeConfig.full(2, ops)),
        )
        assert oom.oom and not recovered.oom

    def test_mem_pairs_shift_stage_memory(self, small_wafer, heavy_workload):
        evaluator = Evaluator(small_wafer)
        base_plan = simple_plan(tp=2, pp=4, shape=(1, 2))
        base = evaluator.evaluate(heavy_workload, base_plan)
        moved = evaluator.evaluate(
            heavy_workload, base_plan.with_mem_pairs([MemPair(0, 3, 2 * GB)])
        )
        assert moved.stage_memory_bytes[0] < base.stage_memory_bytes[0]
        assert moved.stage_memory_bytes[3] > base.stage_memory_bytes[3]

    def test_offloading_slower_than_recomputation(self, config3):
        # Fig. 6b: at wafer scale, recomputing on-wafer beats evicting checkpoints over
        # the comparatively narrow host link.  This is a regime claim about real wafer
        # compute/host-bandwidth ratios, so it is checked on the paper's Config 3.
        from repro.workloads.models import get_model

        workload = TrainingWorkload(
            get_model("llama2-30b"), global_batch_size=256, micro_batch_size=8,
            sequence_length=4096,
        )
        ops = workload.layer_operators()
        evaluator = Evaluator(config3)
        plan = simple_plan(tp=4, pp=14, shape=(2, 2))
        recompute = evaluator.evaluate(
            workload, plan.with_recompute(RecomputeConfig.full(14, ops))
        )
        from dataclasses import replace
        offload = evaluator.evaluate(workload, replace(plan, offload_to_host=True))
        assert not offload.oom and not recompute.oom
        assert offload.iteration_time > recompute.iteration_time

    def test_dp_gradient_sync_adds_time(self, small_wafer, tiny_workload):
        evaluator = Evaluator(small_wafer)
        mp_only = evaluator.evaluate(tiny_workload, simple_plan(tp=2, pp=4))
        with_dp = evaluator.evaluate(
            tiny_workload,
            TrainingPlan(parallelism=ParallelismConfig(dp=2, tp=2, pp=4), tp_shape=(1, 2),
                         recompute=RecomputeConfig.none(4)),
        )
        # Per-replica work halves but a gradient all-reduce is added; both must be priced.
        assert with_dp.iteration_time > 0
        assert with_dp.useful_flops == pytest.approx(mp_only.useful_flops / 2, rel=0.01)

    def test_world_size_must_fit_wafer(self, small_wafer, tiny_workload):
        with pytest.raises(ValueError):
            Evaluator(small_wafer).evaluate(
                tiny_workload, simple_plan(tp=8, pp=4, shape=(2, 4))
            )

    def test_die_faults_reduce_throughput(self, small_wafer, tiny_workload):
        healthy = Evaluator(small_wafer).evaluate(tiny_workload, simple_plan())
        faults = FaultModel.random(4, 4, die_fault_rate=0.3, seed=3)
        faulty = Evaluator(small_wafer, faults=faults).evaluate(tiny_workload, simple_plan())
        assert faulty.throughput < healthy.throughput

    def test_fault_aware_beats_non_fault_aware(self, small_wafer, tiny_workload):
        faults = FaultModel.random(4, 4, die_fault_rate=0.25, link_fault_rate=0.25, seed=5)
        robust = Evaluator(small_wafer, faults=faults, fault_aware=True).evaluate(
            tiny_workload, simple_plan()
        )
        fragile = Evaluator(small_wafer, faults=faults, fault_aware=False).evaluate(
            tiny_workload, simple_plan()
        )
        assert robust.throughput >= fragile.throughput

    def test_out_of_memory_constructor(self):
        result = EvaluationResult.out_of_memory("plan", "wafer")
        assert result.oom and result.throughput == 0.0 and result.recompute_ratio == 0.0


class TestGcmr:
    def test_no_recompute_when_memory_is_plentiful(self, small_wafer, tiny_workload):
        plan = GcmrScheduler(small_wafer).schedule(tiny_workload, tp=2, pp=4)
        assert plan.feasible
        assert all(not stage for stage in plan.recompute.stages)
        assert not plan.mem_pairs

    def test_recompute_appears_under_memory_pressure(self, tight_wafer, heavy_workload):
        plan = GcmrScheduler(tight_wafer).schedule(heavy_workload, tp=1, pp=4)
        assert plan.feasible
        assert any(stage for stage in plan.recompute.stages)

    def test_stage_memory_fits_wafer_budget(self, tight_wafer, heavy_workload):
        wafer_budget = tight_wafer.die.dram_capacity * 4
        plan = GcmrScheduler(tight_wafer).schedule(heavy_workload, tp=1, pp=4)
        assert plan.feasible
        assert sum(plan.stage_memory_bytes) <= wafer_budget * 1.001

    def test_senders_and_helpers_partition_overflow(self, tight_wafer, heavy_workload):
        plan = GcmrScheduler(tight_wafer).schedule(heavy_workload, tp=1, pp=4)
        capacity = tight_wafer.die.dram_capacity
        for sender in plan.senders:
            assert plan.stage_memory_bytes[sender] > capacity
        for helper in plan.helpers:
            assert plan.stage_memory_bytes[helper] < capacity

    def test_mem_pairs_cover_sender_overflow(self, tight_wafer, heavy_workload):
        plan = GcmrScheduler(tight_wafer).schedule(heavy_workload, tp=1, pp=4)
        capacity = tight_wafer.die.dram_capacity
        total_overflow = sum(
            max(0.0, m - capacity) for m in plan.stage_memory_bytes
        )
        assert plan.total_balanced_bytes == pytest.approx(total_overflow, rel=0.01)

    def test_infeasible_when_even_full_recompute_does_not_fit(self, heavy_workload):
        minuscule = make_small_wafer(dram_gb=0.25)
        plan = GcmrScheduler(minuscule).schedule(heavy_workload, tp=1, pp=2)
        assert not plan.feasible

    def test_gcmr_beats_naive_recompute_on_stage_time(self, tight_wafer, heavy_workload):
        scheduler = GcmrScheduler(tight_wafer)
        plan = scheduler.schedule(heavy_workload, tp=1, pp=4)
        ops = heavy_workload.layer_operators()
        naive = scheduler.naive_full_recompute(heavy_workload, tp=1, pp=4)
        # GCMR never recomputes more (per stage) than the naive strategy.
        for stage in range(4):
            assert plan.recompute.extra_forward_flops(stage, ops) <= naive.extra_forward_flops(stage, ops)

    def test_validation(self, small_wafer, tiny_workload):
        with pytest.raises(ValueError):
            GcmrScheduler(small_wafer).schedule(tiny_workload, tp=0, pp=2)


class TestDramAllocator:
    @pytest.fixture
    def placement(self):
        return serpentine_placement(4, 4, (1, 1), 8)

    def test_allocation_covers_all_overflow(self, placement):
        allocator = DramAllocator(placement)
        allocation = allocator.allocate({0: 10.0, 1: 5.0}, {6: 8.0, 7: 12.0})
        assert allocation.feasible
        assert allocation.total_bytes == pytest.approx(15.0)

    def test_nearest_conflict_free_helper_preferred(self, placement):
        # Stage 7 sits directly below stage 0 on the serpentine layout and its path does
        # not share links with the pipeline, so it beats the distant stage 3.
        allocator = DramAllocator(placement)
        allocation = allocator.allocate({0: 5.0}, {3: 100.0, 7: 100.0})
        assert allocation.pairs[0].helper_stage == 7

    def test_partial_helpers_are_reused(self, placement):
        allocator = DramAllocator(placement)
        allocation = allocator.allocate({0: 10.0}, {1: 4.0, 2: 4.0, 3: 4.0})
        helpers = [pair.helper_stage for pair in allocation.pairs]
        assert len(helpers) == 3 and allocation.feasible

    def test_unplaced_bytes_reported(self, placement):
        allocation = DramAllocator(placement).allocate({0: 10.0}, {1: 3.0})
        assert not allocation.feasible
        assert allocation.unplaced_bytes == pytest.approx(7.0)

    def test_negative_amounts_rejected(self, placement):
        with pytest.raises(ValueError):
            DramAllocator(placement).allocate({0: -1.0}, {})

    def test_from_mem_pairs_round_trip(self):
        pairs = [MemPair(0, 3, 5.0), MemPair(0, 2, 2.0), MemPair(1, 3, 1.0)]
        senders, helpers = DramAllocator.from_mem_pairs(pairs)
        assert senders == {0: 7.0, 1: 1.0}
        assert helpers == {3: 6.0, 2: 2.0}


class TestCentralScheduler:
    def test_explore_returns_feasible_records(self, small_wafer, tiny_workload):
        records = CentralScheduler(small_wafer).explore(tiny_workload)
        assert records
        for record in records:
            assert record.plan.parallelism.model_parallel_size == small_wafer.num_dies

    def test_best_is_highest_throughput(self, small_wafer, tiny_workload):
        scheduler = CentralScheduler(small_wafer)
        records = [r for r in scheduler.explore(tiny_workload) if not r.result.oom]
        best = scheduler.best(tiny_workload)
        assert best.result.throughput == pytest.approx(
            max(r.result.throughput for r in records)
        )

    def test_prunes_models_that_cannot_fit(self, small_wafer):
        giant = TrainingWorkload(make_tiny_model(layers=64, hidden=8192, heads=64, ffn=28672),
                                 global_batch_size=8, micro_batch_size=1, sequence_length=512)
        scheduler = CentralScheduler(small_wafer)
        assert scheduler.prunes(giant, small_wafer.num_dies)
        assert scheduler.explore(giant) == []

    def test_subset_of_dies_can_be_used(self, small_wafer, tiny_workload):
        records = CentralScheduler(small_wafer).explore(tiny_workload, model_parallel_dies=8)
        assert records
        assert all(r.plan.parallelism.model_parallel_size == 8 for r in records)

    def test_model_parallel_dies_cannot_exceed_wafer(self, small_wafer, tiny_workload):
        with pytest.raises(ValueError):
            CentralScheduler(small_wafer).explore(tiny_workload, model_parallel_dies=64)

    def test_memory_tight_configs_get_recompute_or_pairs(self, tight_wafer, heavy_workload):
        scheduler = CentralScheduler(tight_wafer)
        best = scheduler.best(heavy_workload)
        assert best is not None and not best.result.oom

    def test_max_tp_limits_search(self, small_wafer, tiny_workload):
        scheduler = CentralScheduler(small_wafer, max_tp=2)
        records = scheduler.explore(tiny_workload)
        assert all(r.plan.parallelism.tp <= 2 for r in records)


class TestGeneticOptimizer:
    @pytest.fixture
    def seed_plan(self, tight_wafer, heavy_workload):
        return CentralScheduler(tight_wafer).best(heavy_workload).plan

    def test_ga_never_worse_than_seed(self, tight_wafer, heavy_workload, seed_plan):
        evaluator = Evaluator(tight_wafer)
        seed_result = evaluator.evaluate(heavy_workload, seed_plan)
        ga = GeneticOptimizer(evaluator, heavy_workload,
                              GAConfig(population_size=6, generations=4, seed=1))
        outcome = ga.optimize(seed_plan)
        assert outcome.best_result.throughput >= seed_result.throughput * 0.999

    def test_history_length_matches_generations(self, tight_wafer, heavy_workload, seed_plan):
        ga = GeneticOptimizer(Evaluator(tight_wafer), heavy_workload,
                              GAConfig(population_size=6, generations=5, seed=2))
        outcome = ga.optimize(seed_plan)
        assert outcome.generations == 5
        assert len(outcome.throughput_history) == 5

    def test_best_fitness_history_is_monotone_nonincreasing(self, tight_wafer, heavy_workload, seed_plan):
        ga = GeneticOptimizer(Evaluator(tight_wafer), heavy_workload,
                              GAConfig(population_size=6, generations=6, seed=3))
        outcome = ga.optimize(seed_plan)
        history = list(outcome.history)
        assert all(history[i + 1] <= history[i] + 1e-9 for i in range(len(history) - 1))

    def test_mutation_operators_preserve_plan_validity(self, tight_wafer, heavy_workload, seed_plan):
        ga = GeneticOptimizer(Evaluator(tight_wafer), heavy_workload, GAConfig(seed=4))
        plan = seed_plan
        for _ in range(25):
            plan = ga.mutate(plan)
            assert plan.parallelism == seed_plan.parallelism
            assert plan.recompute.num_stages == seed_plan.parallelism.pp

    def test_crossover_mixes_parent_stages(self, tight_wafer, heavy_workload, seed_plan):
        ga = GeneticOptimizer(Evaluator(tight_wafer), heavy_workload, GAConfig(seed=5))
        other = ga.mutate(ga.mutate(seed_plan))
        child = ga.crossover(seed_plan, other)
        assert child.parallelism == seed_plan.parallelism

    def test_oom_plans_get_infinite_fitness(self, tight_wafer, heavy_workload):
        ga = GeneticOptimizer(Evaluator(tight_wafer), heavy_workload, GAConfig(seed=6))
        hopeless = simple_plan(tp=1, pp=2, shape=(1, 1))
        fitness, result = ga.fitness(hopeless)
        assert math.isinf(fitness) and result.oom

    def test_omega_validation(self):
        with pytest.raises(ValueError):
            GAConfig(omega=1.5)
        with pytest.raises(ValueError):
            GAConfig(population_size=1)
