"""Architecture candidate enumerator: exhaustiveness and feasibility filtering."""

import pytest

from repro.hardware.enumerator import ArchitectureEnumerator, CandidateSpec


@pytest.fixture
def enumerator() -> ArchitectureEnumerator:
    return ArchitectureEnumerator(
        grid_options=[(6, 8), (7, 8), (8, 8)],
        dram_options=[2, 4, 6],
        compute_variants=["16x16", "18x18"],
    )


class TestSpecs:
    def test_spec_count_is_product_of_options(self, enumerator):
        specs = list(enumerator.specs())
        assert len(specs) == 3 * 3 * 2

    def test_specs_cover_every_dram_option(self, enumerator):
        drams = {spec.num_dram_chiplets for spec in enumerator.specs()}
        assert drams == {2, 4, 6}

    def test_candidate_spec_die_count(self):
        assert CandidateSpec(7, 8, 4, "16x16").num_dies == 56


class TestBuild:
    def test_build_applies_io_budget(self, enumerator):
        spec = CandidateSpec(6, 8, 6, "16x16")
        wafer = enumerator.build(spec)
        expected = enumerator.area_model.derive_d2d_bandwidth(wafer.die)
        assert wafer.die.d2d_bandwidth == pytest.approx(expected)

    def test_build_names_are_unique(self, enumerator):
        names = [enumerator.build(spec).name for spec in enumerator.specs()]
        assert len(names) == len(set(names))

    def test_more_dram_means_less_d2d(self, enumerator):
        low = enumerator.build(CandidateSpec(6, 8, 2, "16x16"))
        high = enumerator.build(CandidateSpec(6, 8, 6, "16x16"))
        assert high.die.d2d_bandwidth < low.die.d2d_bandwidth
        assert high.die.dram_capacity > low.die.dram_capacity


class TestEnumerate:
    def test_feasible_candidates_fit_area(self, enumerator):
        for wafer in enumerator.enumerate():
            assert enumerator.area_model.fits(wafer)

    def test_feasible_candidates_have_min_d2d(self, enumerator):
        for wafer in enumerator.enumerate():
            assert wafer.die.d2d_bandwidth >= enumerator.area_model.min_d2d_bandwidth

    def test_enumerate_with_rejects_partitions_spec_space(self, enumerator):
        feasible, rejected = enumerator.enumerate_with_rejects()
        assert len(feasible) + len(rejected) == len(list(enumerator.specs()))

    def test_some_candidates_are_rejected(self, enumerator):
        # 8×8 grids of the large 18×18 die cannot fit the wafer, so rejects must exist.
        _, rejected = enumerator.enumerate_with_rejects()
        assert rejected

    def test_custom_variant_registration(self, enumerator):
        from repro.hardware.configs import compute_die_16x16

        enumerator.register_compute_variant("custom", compute_die_16x16)
        assert "custom" in enumerator.compute_variants
        specs = list(enumerator.specs())
        assert any(spec.compute_variant == "custom" for spec in specs)
