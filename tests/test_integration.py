"""Integration tests: end-to-end flows on the paper's Config 3 reproducing key claims."""

import pytest

from repro.baselines.dse_frameworks import evaluate_dse_framework
from repro.baselines.gpu_system import GpuEvaluator
from repro.baselines.wafer_strategies import cerebras_wafer_result, megatron_wafer_plan
from repro.core.central_scheduler import CentralScheduler
from repro.core.evaluator import Evaluator
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.core.recomputation import GcmrScheduler
from repro.hardware.configs import dgx_b300_equalized, wafer_config2, wafer_config3
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload


@pytest.fixture(scope="module")
def workload():
    return TrainingWorkload(
        get_model("llama2-30b"), global_batch_size=128, micro_batch_size=4,
        sequence_length=4096,
    )


@pytest.fixture(scope="module")
def config3_best(workload):
    wafer = wafer_config3()
    return wafer, CentralScheduler(wafer).best(workload)


class TestOverallComparison:
    """Fig. 16's ordering: WATOS beats MG-GPU, MG-wafer and Cerebras on the same wafer."""

    def test_watos_beats_megatron_gpu(self, workload, config3_best):
        _, best = config3_best
        gpu = GpuEvaluator(dgx_b300_equalized()).evaluate(workload)
        assert best.result.throughput > gpu.throughput

    def test_watos_beats_megatron_wafer(self, workload, config3_best):
        wafer, best = config3_best
        _, mg_wafer = megatron_wafer_plan(wafer, workload)
        assert best.result.throughput >= mg_wafer.throughput

    def test_watos_beats_cerebras(self, workload, config3_best):
        wafer, best = config3_best
        cerebras = cerebras_wafer_result(wafer, workload)
        assert best.result.throughput > cerebras.throughput


class TestMemoryPressureFlow:
    """GCMR + Sender/Helper balancing keep memory-tight configurations trainable."""

    @pytest.fixture(scope="class")
    def tight_workload(self):
        return TrainingWorkload(
            get_model("llama2-30b"), global_batch_size=128, micro_batch_size=8,
            sequence_length=4096,
        )

    def test_naive_plan_goes_oom_but_watos_plan_fits(self, tight_workload):
        wafer = wafer_config3()
        evaluator = Evaluator(wafer)
        naive = TrainingPlan(
            parallelism=ParallelismConfig(dp=1, tp=4, pp=14), tp_shape=(2, 2),
            recompute=RecomputeConfig.none(14),
        )
        assert evaluator.evaluate(tight_workload, naive).oom
        plan = CentralScheduler(wafer).build_plan(tight_workload, tp=4, pp=14)
        assert plan is not None
        result = evaluator.evaluate(tight_workload, plan)
        assert not result.oom

    def test_gcmr_produces_senders_and_helpers_for_deep_pipelines(self, tight_workload):
        wafer = wafer_config3()
        gcmr = GcmrScheduler(wafer).schedule(tight_workload, tp=4, pp=14)
        assert gcmr.feasible
        # The 1F1B imbalance makes early stages heavier: if anything overflows, it is an
        # early stage, and helpers are later stages.
        if gcmr.senders:
            assert min(gcmr.senders) < min(gcmr.helpers)

    def test_watos_recomputes_less_than_naive_megatron_wafer(self, tight_workload):
        wafer = wafer_config3()
        _, mg_result = megatron_wafer_plan(wafer, tight_workload)
        watos = CentralScheduler(wafer).best(tight_workload)
        assert watos.result.recompute_ratio <= mg_result.recompute_ratio + 1e-9


class TestArchDseClaims:
    """Fig. 15's headline: the balanced Config 3 is at least as good as its neighbours."""

    def test_config3_not_dominated_by_config2(self, workload):
        best3 = CentralScheduler(wafer_config3()).best(workload)
        best2 = CentralScheduler(wafer_config2()).best(workload)
        # Config 3 is the paper's universal optimum; allow a small tolerance since the
        # reproduction's cost model is not identical to the authors' simulator.
        assert best3.result.throughput >= 0.9 * best2.result.throughput


class TestDseFrameworkOrdering:
    """Fig. 20: WATOS leads the prior DSE frameworks on the wafer."""

    def test_watos_leads_on_config3(self, workload):
        wafer = wafer_config3()
        watos = evaluate_dse_framework("watos", wafer, workload)
        for name in ("timeloop", "dfmodel", "calculon", "hecaton", "gemini", "pd", "wsc-llm"):
            other = evaluate_dse_framework(name, wafer, workload)
            assert watos.throughput >= other.throughput * 0.999, name
