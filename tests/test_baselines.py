"""GPU baseline evaluator, Megatron-wafer / Cerebras strategies and prior DSE frameworks."""

import pytest

from repro.baselines.dse_frameworks import DSE_FRAMEWORKS, evaluate_dse_framework
from repro.baselines.gpu_system import GpuEvaluator, megatron_gpu_result
from repro.baselines.wafer_strategies import cerebras_wafer_result, megatron_wafer_plan
from repro.core.central_scheduler import CentralScheduler
from repro.hardware.configs import dgx_b300_equalized, dgx_b300_node, nvl72_gb300
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload


@pytest.fixture(scope="module")
def llama30b_workload() -> TrainingWorkload:
    return TrainingWorkload(
        get_model("llama2-30b"), global_batch_size=128, micro_batch_size=2,
        sequence_length=4096,
    )


class TestGpuEvaluator:
    def test_basic_evaluation(self, llama30b_workload):
        result = GpuEvaluator(dgx_b300_node()).evaluate(llama30b_workload)
        assert not result.oom
        assert result.iteration_time > 0 and result.throughput > 0

    def test_default_parallelism_comes_from_megatron(self, llama30b_workload):
        result = megatron_gpu_result(llama30b_workload)
        assert "T(8)" in result.plan_label

    def test_explicit_parallelism_respected(self, llama30b_workload):
        evaluator = GpuEvaluator(dgx_b300_node())
        result = evaluator.evaluate(llama30b_workload, ParallelismConfig(dp=1, tp=4, pp=2))
        assert result.plan_label == "D(1)T(4)P(2)"

    def test_oversized_parallelism_rejected(self, llama30b_workload):
        with pytest.raises(ValueError):
            GpuEvaluator(dgx_b300_node()).evaluate(
                llama30b_workload, ParallelismConfig(dp=1, tp=8, pp=4)
            )

    def test_equalized_node_is_slower_than_full_bandwidth_node(self, llama30b_workload):
        # §V-C equalisation caps HBM bandwidth at 2 TB/s, which costs performance.
        full = GpuEvaluator(dgx_b300_node()).evaluate(llama30b_workload)
        equalized = GpuEvaluator(dgx_b300_equalized()).evaluate(llama30b_workload)
        assert equalized.throughput <= full.throughput

    def test_nvl72_handles_many_gpus(self):
        workload = TrainingWorkload(get_model("llama3-70b"), 64, 1, 4096)
        result = GpuEvaluator(nvl72_gb300(56)).evaluate(
            workload, ParallelismConfig(dp=1, tp=4, pp=14)
        )
        assert not result.oom and result.throughput > 0


class TestWaferStrategies:
    def test_megatron_wafer_plan_uses_megatron_tp(self, config3, llama30b_workload):
        plan, result = megatron_wafer_plan(config3, llama30b_workload)
        assert plan is not None and not result.oom
        assert plan.parallelism.tp == 8

    def test_watos_beats_megatron_wafer(self, config3, llama30b_workload):
        _, mg_result = megatron_wafer_plan(config3, llama30b_workload)
        watos = CentralScheduler(config3).best(llama30b_workload)
        assert watos.result.throughput >= mg_result.throughput

    def test_cerebras_result_fields(self, config3, llama30b_workload):
        result = cerebras_wafer_result(config3, llama30b_workload)
        assert result.plan_label == "weight-streaming"
        assert result.iteration_time > 0 and result.throughput > 0

    def test_watos_beats_cerebras(self, config3, llama30b_workload):
        cerebras = cerebras_wafer_result(config3, llama30b_workload)
        watos = CentralScheduler(config3).best(llama30b_workload)
        assert watos.result.throughput > cerebras.throughput


class TestDseFrameworks:
    def test_registry_contains_all_eight_entries(self):
        assert set(DSE_FRAMEWORKS) == {
            "timeloop", "dfmodel", "calculon", "hecaton", "gemini", "pd", "wsc-llm", "watos",
        }

    def test_unknown_framework_raises(self, small_wafer, tiny_workload):
        with pytest.raises(KeyError):
            evaluate_dse_framework("maestro", small_wafer, tiny_workload)

    @pytest.mark.parametrize("name", sorted(DSE_FRAMEWORKS))
    def test_every_framework_produces_a_result(self, name, small_wafer, tiny_workload):
        result = evaluate_dse_framework(name, small_wafer, tiny_workload)
        assert result.oom or result.throughput > 0

    def test_watos_leads_or_ties_the_frameworks(self, small_wafer, tiny_workload):
        # On the toy wafer the activation volumes are tiny, so mesh-aware baselines can
        # land within a few percent of WATOS; the strict ordering at LLM scale is checked
        # in test_integration.py.  Here WATOS must stay within 5% of the best and must
        # strictly beat the frameworks that ignore the mesh topology.
        results = {
            name: evaluate_dse_framework(name, small_wafer, tiny_workload)
            for name in DSE_FRAMEWORKS
        }
        watos = results.pop("watos")
        best_other = max(result.throughput for result in results.values())
        assert watos.throughput >= 0.95 * best_other
        for name in ("timeloop", "dfmodel", "calculon"):
            assert watos.throughput >= results[name].throughput * 0.999, name

    def test_timeloop_is_weakest_wafer_aware_entry(self, small_wafer, tiny_workload):
        timeloop = evaluate_dse_framework("timeloop", small_wafer, tiny_workload)
        wsc_llm = evaluate_dse_framework("wsc-llm", small_wafer, tiny_workload)
        assert wsc_llm.throughput >= timeloop.throughput
