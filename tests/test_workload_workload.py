"""TrainingWorkload: batching arithmetic and derived quantities."""

import pytest

from repro.workloads.workload import TrainingWorkload


class TestValidation:
    def test_global_batch_must_divide_by_micro(self, tiny_model):
        with pytest.raises(ValueError):
            TrainingWorkload(tiny_model, global_batch_size=10, micro_batch_size=3)

    def test_positive_batches_required(self, tiny_model):
        with pytest.raises(ValueError):
            TrainingWorkload(tiny_model, global_batch_size=0)

    def test_default_sequence_length_comes_from_model(self, tiny_model):
        workload = TrainingWorkload(tiny_model, 16, 1)
        assert workload.seq_len == tiny_model.default_seq_len

    def test_explicit_sequence_length_wins(self, tiny_model):
        workload = TrainingWorkload(tiny_model, 16, 1, sequence_length=2048)
        assert workload.seq_len == 2048


class TestDerivedQuantities:
    def test_num_microbatches_divides_by_dp(self, tiny_workload):
        assert tiny_workload.num_microbatches(1) == 16
        assert tiny_workload.num_microbatches(4) == 4

    def test_num_microbatches_rejects_oversized_dp(self, tiny_workload):
        with pytest.raises(ValueError):
            tiny_workload.num_microbatches(64)

    def test_tokens_per_iteration(self, tiny_workload):
        assert tiny_workload.tokens_per_iteration == 16 * 512

    def test_iteration_flops_scale_with_batch(self, tiny_model):
        small = TrainingWorkload(tiny_model, 16, 1, 512)
        large = TrainingWorkload(tiny_model, 32, 1, 512)
        assert large.iteration_flops() == pytest.approx(2.0 * small.iteration_flops())

    def test_iteration_flops_counts_forward_and_backward(self, tiny_workload):
        per_layer = tiny_workload.microbatch_layer_flops()
        expected = 3.0 * per_layer * tiny_workload.model.num_layers * 16
        assert tiny_workload.iteration_flops() == pytest.approx(expected)

    def test_model_state_bytes_is_16_per_param(self, tiny_workload):
        assert tiny_workload.model_state_bytes == pytest.approx(
            16.0 * tiny_workload.model.num_parameters
        )

    def test_with_batch_and_sequence_produce_new_objects(self, tiny_workload):
        other = tiny_workload.with_batch(64, 2).with_sequence_length(1024)
        assert other.global_batch_size == 64
        assert other.seq_len == 1024
        assert tiny_workload.global_batch_size == 16

    def test_describe_contains_model_name(self, tiny_workload):
        assert tiny_workload.describe()["model"] == tiny_workload.model.name

    def test_layer_operators_cached_shape(self, tiny_workload):
        ops = tiny_workload.layer_operators()
        assert len(ops) == 8  # dense transformer layer decomposition
