"""Tests for the scale-out DSE subsystem: parallel-vs-serial bit-identity of the
multi-wafer GA and ``Watos.explore``, per-wafer RNG streams, shared-cache routing in
the hardware DSE, and the vectorized predictor batch path.
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.evalcache import EvaluationCache
from repro.core.framework import Watos
from repro.core.genetic import GAConfig
from repro.core.hardware_dse import DieGranularityDse
from repro.predictor.analytical import AnalyticalPredictor
from repro.predictor.lookup import OperatorProfileTable
from repro.workloads.transformer import build_layer_graph
from repro.workloads.workload import TrainingWorkload

from repro_testlib import make_small_wafer, make_tiny_model

# The multi-wafer GA driver lives with the figure benchmarks.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
from bench_fig24_multiwafer_ga import (  # noqa: E402
    run_multiwafer_ga,
    wafer_slice_workloads,
)


@pytest.fixture
def wafer():
    return make_small_wafer(dram_gb=1.0)


@pytest.fixture
def workload():
    return TrainingWorkload(
        make_tiny_model(), global_batch_size=32, micro_batch_size=8,
        sequence_length=2048,
    )


# ------------------------------------------------------------------ RNG streams
class TestGaStreams:
    def test_stream_zero_is_base(self):
        config = GAConfig(seed=7)
        assert config.stream(0) == config

    def test_streams_are_distinct_and_deterministic(self):
        config = GAConfig(seed=7)
        seeds = [config.stream(i).seed for i in range(6)]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [config.stream(i).seed for i in range(6)]

    def test_negative_stream_rejected(self):
        with pytest.raises(ValueError):
            GAConfig().stream(-1)


# ------------------------------------------------------------------ multi-wafer GA
class TestMultiWaferGa:
    def test_slices_cover_all_layers(self, workload):
        slices = wafer_slice_workloads(workload, 3)
        assert sum(s.model.num_layers for s in slices) == workload.model.num_layers
        # Equal-sized slices share a model name (and hence cache fingerprints).
        names = [s.model.name for s in slices]
        assert names[0] == names[1] and slices[0].model == slices[1].model

    def test_more_wafers_than_layers_rejected(self, workload):
        with pytest.raises(ValueError):
            wafer_slice_workloads(workload, workload.model.num_layers + 1)

    def test_parallel_matches_serial_bitforbit(self, wafer, workload):
        config = GAConfig(population_size=4, generations=3, seed=5)
        serial = run_multiwafer_ga(wafer, workload, 3, config, EvaluationCache())
        parallel = run_multiwafer_ga(
            wafer, workload, 3, config, EvaluationCache(), parallel=2
        )
        assert parallel == serial

    @pytest.mark.perf_smoke
    def test_warm_start_from_persisted_store(self, wafer, workload, tmp_path):
        config = GAConfig(population_size=4, generations=3, seed=5)
        path = str(tmp_path / "multiwafer.jsonl")

        cold = EvaluationCache(store=path)
        cold_rows = run_multiwafer_ga(wafer, workload, 3, config, cold)
        assert cold.stats.misses > 0
        cold.close()

        warm = EvaluationCache(store=path)
        loaded = warm.stats.loaded
        assert loaded > 0
        warm_rows = run_multiwafer_ga(wafer, workload, 3, config, warm, parallel=2)
        # The whole matrix is answered from the persisted store: identical results,
        # nothing re-priced, hit rate far above the ≥50 % acceptance bar.
        assert warm_rows == cold_rows
        assert warm.stats.misses == 0
        assert warm.stats.hit_rate >= 0.5
        warm.close()

    def test_wafer_streams_decorrelate(self, workload):
        # Wafer index enters the GA seed, so two equal slices still run
        # different trajectories (same best is allowed, same stream is not).
        config = GAConfig(seed=3)
        assert config.stream(1).seed != config.stream(2).seed


# ------------------------------------------------------------------ Watos explore
class TestWatosParallel:
    def _watos(self, wafers, config):
        return Watos(candidates=wafers, ga_config=config)

    def test_explore_parallel_matches_serial(self, wafer):
        other = replace(make_small_wafer(dram_gb=2.0), name="wafer-2g")
        workloads = [
            TrainingWorkload(make_tiny_model(), 16, 4, 1024),
            TrainingWorkload(make_tiny_model(), 32, 8, 2048),
        ]
        config = GAConfig(population_size=4, generations=2, seed=3)

        serial = self._watos([wafer, other], config).explore(workloads)
        parallel = self._watos([wafer, other], config).explore(workloads, parallel=2)

        assert len(serial.outcomes) == len(parallel.outcomes) > 0
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.plan == b.plan
            assert a.result == b.result
            assert a.ga_history == b.ga_history
        assert serial.exploration_records.keys() == parallel.exploration_records.keys()
        for key in serial.exploration_records:
            assert serial.exploration_records[key] == parallel.exploration_records[key]

    def test_explore_merges_worker_deltas(self, wafer):
        workloads = [TrainingWorkload(make_tiny_model(), 16, 4, 1024)]
        watos = self._watos([wafer], GAConfig(population_size=4, generations=2, seed=3))
        watos.explore(workloads, parallel=2)
        # The shared cache absorbed the worker's pricing: a re-exploration of the
        # same point re-prices nothing.
        misses_before = watos.cache.stats.misses
        watos.explore(workloads, parallel=2)
        assert watos.cache.stats.misses == misses_before

    def test_explore_persists_across_instances(self, wafer, tmp_path):
        workloads = [TrainingWorkload(make_tiny_model(), 16, 4, 1024)]
        config = GAConfig(population_size=4, generations=2, seed=3)
        path = str(tmp_path / "watos.sqlite")

        first = Watos(candidates=[wafer], ga_config=config,
                      cache=EvaluationCache(store=path))
        outcome_first = first.explore(workloads, parallel=2)
        first.cache.close()

        second = Watos(candidates=[wafer], ga_config=config,
                       cache=EvaluationCache(store=path))
        assert second.cache.stats.loaded > 0
        outcome_second = second.explore(workloads)
        assert second.cache.stats.misses == 0
        assert [o.result for o in outcome_second.outcomes] == [
            o.result for o in outcome_first.outcomes
        ]
        second.cache.close()

    def test_parallel_explore_with_warm_sqlite_store(self, wafer, tmp_path):
        # Regression: a warm sqlite store holds an open connection; shipping the
        # shared cache to pool workers must drop the store, not fail to pickle it.
        workloads = [
            TrainingWorkload(make_tiny_model(), 16, 4, 1024),
            TrainingWorkload(make_tiny_model(), 32, 8, 2048),
        ]
        config = GAConfig(population_size=4, generations=2, seed=3)
        path = str(tmp_path / "warm.sqlite")

        first = Watos(candidates=[wafer], ga_config=config,
                      cache=EvaluationCache(store=path))
        cold = first.explore(workloads, parallel=2)
        first.cache.close()

        second = Watos(candidates=[wafer], ga_config=config,
                       cache=EvaluationCache(store=path))
        assert second.cache.stats.loaded > 0
        warm = second.explore(workloads, parallel=2)  # used to raise TypeError
        assert [o.result for o in warm.outcomes] == [o.result for o in cold.outcomes]
        assert second.cache.stats.misses == 0
        second.cache.close()


# ------------------------------------------------------------------ hardware DSE
class TestDseSharedCache:
    def test_sweep_with_shared_cache_matches_plain(self, workload):
        plain = DieGranularityDse(
            workload, areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,)
        ).sweep(max_tp=4)
        cached_dse = DieGranularityDse(
            workload, areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,),
            cache=EvaluationCache(),
        )
        assert cached_dse.sweep(max_tp=4) == plain
        # Parallel sweep with the shared cache also matches.
        assert cached_dse.sweep(max_tp=4, parallel=2) == plain

    def test_repeat_sweep_is_all_hits(self, workload):
        # max_tp=16 so the 48-die (500 mm²) design point enumerates real splits
        # (tp=8/pp=6, tp=16/pp=3) — with max_tp=4 the grid prices nothing.
        dse = DieGranularityDse(
            workload, areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,),
            cache=EvaluationCache(),
        )
        dse.sweep(max_tp=16, parallel=2)
        assert dse.cache.stats.misses > 0
        misses_before = dse.cache.stats.misses
        dse.sweep(max_tp=16, parallel=2)
        assert dse.cache.stats.misses == misses_before

    def test_sweep_persists_to_store(self, workload, tmp_path):
        path = str(tmp_path / "dse.jsonl")
        dse = DieGranularityDse(
            workload, areas_mm2=(500.0,), aspect_ratios=(1.0, 1.6),
            cache=EvaluationCache(store=path),
        )
        points = dse.sweep(max_tp=16, parallel=2)
        dse.cache.close()

        warm = DieGranularityDse(
            workload, areas_mm2=(500.0,), aspect_ratios=(1.0, 1.6),
            cache=EvaluationCache(store=path),
        )
        assert warm.cache.stats.loaded > 0
        assert warm.sweep(max_tp=16) == points
        assert warm.cache.stats.misses == 0
        warm.cache.close()


# ------------------------------------------------------------ vectorized predictor
class TestVectorizedPredictor:
    def _sharded_ops(self, tp=4):
        model = make_tiny_model()
        return [op.sharded(tp) for op in build_layer_graph(model, 4, 1024)]

    def test_estimate_batch_bitidentical_to_scalar(self, wafer):
        predictor = AnalyticalPredictor(wafer.die)
        ops = self._sharded_ops()
        assert predictor.estimate_batch(ops) == [predictor.estimate(op) for op in ops]

    def test_lookup_many_matches_sequential_lookups(self, wafer):
        predictor = AnalyticalPredictor(wafer.die)
        ops = self._sharded_ops() * 2  # duplicates exercise the in-batch dedupe
        sequential = OperatorProfileTable(predictor, wafer.die)
        expected = [sequential.lookup(op) for op in ops]
        batched = OperatorProfileTable(predictor, wafer.die)
        assert batched.lookup_many(ops) == expected
        # Counter semantics match a sequence of scalar lookups exactly.
        assert (batched.hits, batched.misses) == (sequential.hits, sequential.misses)
        assert len(batched) == len(sequential)

    def test_latencies_batch_api(self, wafer):
        predictor = AnalyticalPredictor(wafer.die)
        ops = self._sharded_ops()
        table = OperatorProfileTable(predictor, wafer.die)
        assert table.latencies(ops) == [predictor.latency(op) for op in ops]

    def test_batch_path_without_estimate_batch_falls_back(self, wafer):
        class PlainPredictor:
            def __init__(self, inner):
                self.inner = inner

            def latency(self, op):
                return self.inner.latency(op)

            def memory(self, op):
                return self.inner.memory(op)

        inner = AnalyticalPredictor(wafer.die)
        table = OperatorProfileTable(PlainPredictor(inner), wafer.die)
        ops = self._sharded_ops()
        assert table.latencies(ops) == [inner.latency(op) for op in ops]
