"""Shared test helpers: a small fast wafer and tiny models for unit tests.

These used to live in ``tests/conftest.py`` and be imported as ``from conftest import
...``, but a bare ``conftest`` import is ambiguous at the repo root: pytest loads
``benchmarks/conftest.py`` first (benchmarks sorts before tests), registers it in
``sys.modules`` under the name ``conftest`` and every test-side import then resolves to
the *benchmark* helpers and fails collection.  A uniquely named module is unambiguous
from any invocation directory.
"""

from __future__ import annotations

from repro.hardware.template import (
    ComputeDieConfig,
    CoreConfig,
    DieConfig,
    DramChipletConfig,
    WaferConfig,
)
from repro.units import GB, tbps, tflops
from repro.workloads.models import ModelConfig, ModelFamily


def make_small_wafer(
    dies_x: int = 4,
    dies_y: int = 4,
    dram_gb: float = 8.0,
    d2d_tbps: float = 2.0,
    dram_bw_tbps: float = 1.0,
) -> WaferConfig:
    """A small 4×4 wafer with modest dies, sized so tiny models stress memory."""
    compute = ComputeDieConfig(
        core_rows=8,
        core_cols=8,
        core=CoreConfig(flops_fp16=tflops(1.0)),
        width_mm=12.0,
        height_mm=12.0,
        edge_io_bandwidth=tbps(6.0),
    )
    chiplet = DramChipletConfig(
        capacity_bytes=dram_gb * GB / 4,
        bandwidth=tbps(dram_bw_tbps) / 4,
        interface_bandwidth=tbps(dram_bw_tbps) / 4,
        width_mm=3.0,
        height_mm=6.0,
    )
    die = DieConfig(
        compute=compute,
        dram_chiplet=chiplet,
        num_dram_chiplets=4,
        d2d_bandwidth=tbps(d2d_tbps),
    )
    return WaferConfig(name="test-wafer", dies_x=dies_x, dies_y=dies_y, die=die,
                       wafer_width_mm=100.0, wafer_height_mm=100.0)


def make_tiny_model(
    layers: int = 8,
    hidden: int = 512,
    heads: int = 8,
    ffn: int = 1408,
    vocab: int = 8000,
    seq: int = 512,
) -> ModelConfig:
    """A toy dense transformer small enough for exhaustive scheduler tests."""
    return ModelConfig(
        name="tiny-transformer",
        family=ModelFamily.TRANSFORMER,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=heads,
        ffn_hidden=ffn,
        vocab_size=vocab,
        default_seq_len=seq,
        gated_mlp=True,
    )


def make_small_moe_model() -> ModelConfig:
    return ModelConfig(
        name="tiny-moe",
        family=ModelFamily.MOE_TRANSFORMER,
        num_layers=6,
        hidden_size=512,
        num_heads=8,
        num_kv_heads=8,
        ffn_hidden=1024,
        vocab_size=8000,
        default_seq_len=512,
        num_experts=8,
        experts_per_token=2,
    )
