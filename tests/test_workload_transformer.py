"""Operator-graph builders: transformer, MoE, Mamba and embedding operators."""

import pytest

from repro.units import FP16_BYTES
from repro.workloads.models import get_model
from repro.workloads.operators import OperatorKind
from repro.workloads.transformer import (
    build_layer_graph,
    embedding_operator,
    layer_checkpoint_bytes,
    layer_flops,
)

from repro_testlib import make_small_moe_model, make_tiny_model


class TestDenseLayer:
    def test_layer_contains_expected_operator_units(self, tiny_model):
        names = {op.name for op in build_layer_graph(tiny_model, 1, 512)}
        assert {"attn_norm", "qkv_proj", "flash_attention", "attn_out_proj",
                "mlp_norm", "mlp_up_proj", "mlp_activation", "mlp_down_proj"} <= names

    def test_two_allreduces_per_layer(self, tiny_model):
        ops = build_layer_graph(tiny_model, 1, 512)
        allreduce_ops = [op for op in ops if op.tp_allreduce_bytes > 0]
        assert len(allreduce_ops) == 2  # attention output and MLP down projections

    def test_flops_scale_linearly_with_batch(self, tiny_model):
        assert layer_flops(tiny_model, 4, 512) == pytest.approx(
            4.0 * layer_flops(tiny_model, 1, 512)
        )

    def test_attention_flops_scale_quadratically_with_sequence(self, tiny_model):
        ops_short = {op.name: op for op in build_layer_graph(tiny_model, 1, 256)}
        ops_long = {op.name: op for op in build_layer_graph(tiny_model, 1, 1024)}
        ratio = ops_long["flash_attention"].flops / ops_short["flash_attention"].flops
        assert ratio == pytest.approx(16.0)

    def test_gemm_flops_scale_linearly_with_sequence(self, tiny_model):
        ops_short = {op.name: op for op in build_layer_graph(tiny_model, 1, 256)}
        ops_long = {op.name: op for op in build_layer_graph(tiny_model, 1, 1024)}
        assert ops_long["qkv_proj"].flops / ops_short["qkv_proj"].flops == pytest.approx(4.0)

    def test_flash_attention_checkpoint_smaller_than_score_matrix(self, tiny_model):
        ops = {op.name: op for op in build_layer_graph(tiny_model, 1, 1024)}
        score_matrix_bytes = 1 * tiny_model.num_heads * 1024 * 1024 * FP16_BYTES
        assert ops["flash_attention"].checkpoint_bytes < score_matrix_bytes

    def test_layer_weight_bytes_match_param_count(self, tiny_model):
        ops = build_layer_graph(tiny_model, 1, 512)
        weights = sum(op.weight_bytes for op in ops)
        assert weights == pytest.approx(tiny_model.params_per_layer * FP16_BYTES, rel=0.01)

    def test_checkpoint_bytes_positive_and_scale_with_batch(self, tiny_model):
        assert layer_checkpoint_bytes(tiny_model, 2, 512) == pytest.approx(
            2.0 * layer_checkpoint_bytes(tiny_model, 1, 512)
        )

    def test_invalid_batch_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            build_layer_graph(tiny_model, 0, 512)


class TestMoeLayer:
    def test_moe_layer_has_router_and_experts(self):
        moe = make_small_moe_model()
        names = {op.name for op in build_layer_graph(moe, 1, 512)}
        assert {"moe_router", "moe_expert_up", "moe_expert_down"} <= names

    def test_moe_weights_store_all_experts_but_flops_only_active(self):
        moe = make_small_moe_model()
        ops = {op.name: op for op in build_layer_graph(moe, 1, 512)}
        dense_equivalent = make_tiny_model(hidden=512, ffn=1024, layers=6)
        dense_ops = {op.name: op for op in build_layer_graph(dense_equivalent, 1, 512)}
        # Stored expert weights exceed a single dense MLP by ~the expert count.
        assert ops["moe_expert_up"].weight_bytes > 4 * dense_ops["mlp_up_proj"].weight_bytes
        # Active compute corresponds to experts_per_token (2), not num_experts (8).
        assert ops["moe_expert_up"].flops < 4 * dense_ops["mlp_up_proj"].flops

    def test_router_emits_all_to_all_metadata(self):
        moe = make_small_moe_model()
        router = next(op for op in build_layer_graph(moe, 1, 512) if op.name == "moe_router")
        assert router.metadata.get("all_to_all_bytes", 0) > 0


class TestOtherFamilies:
    def test_mamba_layer_has_scan(self):
        mamba = get_model("mamba-2.8b")
        kinds = {op.kind for op in build_layer_graph(mamba, 1, 512)}
        assert OperatorKind.SCAN in kinds
        assert OperatorKind.FLASH_ATTENTION not in kinds

    def test_diffusion_model_uses_non_causal_attention(self):
        sd = get_model("sd-3.5-large")
        llama = get_model("llama2-30b")
        sd_attn = next(op for op in build_layer_graph(sd, 1, 1024) if op.kind is OperatorKind.FLASH_ATTENTION)
        llama_attn = next(op for op in build_layer_graph(llama, 1, 1024) if op.kind is OperatorKind.FLASH_ATTENTION)
        # Non-causal attention does twice the work per token pair.
        assert sd_attn.flops / (sd.hidden_size) == pytest.approx(
            2.0 * llama_attn.flops / llama.hidden_size, rel=0.01
        )


class TestEmbedding:
    def test_embedding_weight_counts_both_tables(self, tiny_model):
        op = embedding_operator(tiny_model, 1, 512)
        assert op.weight_bytes == pytest.approx(
            2.0 * tiny_model.vocab_size * tiny_model.hidden_size * FP16_BYTES
        )

    def test_embedding_not_recomputable(self, tiny_model):
        assert not embedding_operator(tiny_model, 1, 512).recomputable
