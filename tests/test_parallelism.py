"""Parallelism: config algebra, TP/PP enumeration, 1F1B simulation, splits and baselines."""

import pytest

from repro.interconnect.alphabeta import AlphaBetaLink
from repro.parallelism.cerebras import CerebrasWeightStreaming
from repro.parallelism.fsdp import fsdp_cost, fsdp_traffic_bytes
from repro.parallelism.megatron import megatron_parallelism
from repro.parallelism.partition import (
    TPSplitStrategy,
    best_mesh_shape,
    factor_shapes,
    split_communication,
)
from repro.parallelism.pipeline import (
    PipelineCostInputs,
    analytic_1f1b_time,
    simulate_1f1b,
)
from repro.parallelism.strategies import ParallelismConfig, enumerate_tp_pp
from repro.units import GB
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload


class TestParallelismConfig:
    def test_sizes(self):
        cfg = ParallelismConfig(dp=2, tp=4, pp=8)
        assert cfg.model_parallel_size == 32
        assert cfg.world_size == 64
        assert cfg.fits(64) and not cfg.fits(63)

    def test_label_format(self):
        assert ParallelismConfig(dp=1, tp=4, pp=14).label() == "D(1)T(4)P(14)"

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelismConfig(dp=0)

    def test_with_dp(self):
        assert ParallelismConfig(tp=2).with_dp(4).dp == 4


class TestEnumerateTpPp:
    def test_products_cover_model_parallel_dies(self):
        pairs = list(enumerate_tp_pp(32, num_layers=64))
        assert all(tp * pp == 32 for tp, pp in pairs)

    def test_even_tp_requirement(self):
        pairs = list(enumerate_tp_pp(12, num_layers=64))
        assert all(tp == 1 or tp % 2 == 0 for tp, pp in pairs)
        assert (3, 4) not in pairs

    def test_pp_capped_by_layer_count(self):
        pairs = list(enumerate_tp_pp(64, num_layers=8))
        assert all(pp <= 8 for _, pp in pairs)

    def test_max_tp_filter(self):
        pairs = list(enumerate_tp_pp(32, num_layers=64, max_tp=8))
        assert all(tp <= 8 for tp, _ in pairs)

    def test_invalid_die_count(self):
        with pytest.raises(ValueError):
            list(enumerate_tp_pp(0, 8))


class TestPipelineSimulation:
    def test_homogeneous_matches_analytic_formula(self):
        pp, n, fwd, bwd = 4, 8, 1.0, 2.0
        result = simulate_1f1b(
            PipelineCostInputs([fwd] * pp, [bwd] * pp, [0.0] * (pp - 1), n)
        )
        assert result.iteration_time == pytest.approx(analytic_1f1b_time(fwd, bwd, pp, n))

    def test_single_stage_has_no_bubble(self):
        result = simulate_1f1b(PipelineCostInputs([1.0], [2.0], [], 8))
        assert result.iteration_time == pytest.approx(24.0)
        assert result.bubble_fraction == pytest.approx(0.0)

    def test_more_microbatches_reduce_bubble_fraction(self):
        few = simulate_1f1b(PipelineCostInputs([1.0] * 4, [2.0] * 4, [0.0] * 3, 4))
        many = simulate_1f1b(PipelineCostInputs([1.0] * 4, [2.0] * 4, [0.0] * 3, 64))
        assert many.bubble_fraction < few.bubble_fraction

    def test_slowest_stage_gates_iteration(self):
        balanced = simulate_1f1b(PipelineCostInputs([1.0] * 4, [2.0] * 4, [0.0] * 3, 16))
        skewed = simulate_1f1b(
            PipelineCostInputs([1.0, 1.0, 1.5, 1.0], [2.0, 2.0, 3.0, 2.0], [0.0] * 3, 16)
        )
        assert skewed.iteration_time > balanced.iteration_time

    def test_inter_stage_comm_increases_time(self):
        free = simulate_1f1b(PipelineCostInputs([1.0] * 4, [2.0] * 4, [0.0] * 3, 8))
        slow = simulate_1f1b(PipelineCostInputs([1.0] * 4, [2.0] * 4, [0.5] * 3, 8))
        assert slow.iteration_time > free.iteration_time

    def test_stage_busy_time_equals_work(self):
        pp, n = 3, 5
        result = simulate_1f1b(PipelineCostInputs([1.0] * pp, [2.0] * pp, [0.0] * (pp - 1), n))
        for busy in result.stage_busy_time:
            assert busy == pytest.approx(n * 3.0)

    def test_stage_utilization_below_one(self):
        result = simulate_1f1b(PipelineCostInputs([1.0] * 4, [2.0] * 4, [0.1] * 3, 8))
        for stage in range(4):
            assert 0.0 < result.stage_utilization(stage) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineCostInputs([1.0, 1.0], [1.0], [0.0], 4)
        with pytest.raises(ValueError):
            PipelineCostInputs([1.0], [1.0], [], 0)
        with pytest.raises(ValueError):
            PipelineCostInputs([1.0, -1.0], [1.0, 1.0], [0.0], 2)
        with pytest.raises(ValueError):
            analytic_1f1b_time(1.0, 2.0, 0, 4)


class TestPartition:
    def test_factor_shapes(self):
        assert (2, 4) in factor_shapes(8)
        assert (8, 1) in factor_shapes(8)
        assert all(a * b == 8 for a, b in factor_shapes(8))

    def test_best_mesh_shape_prefers_square(self):
        assert best_mesh_shape(16, 8, 8) == (4, 4)
        assert best_mesh_shape(8, 8, 8) in ((2, 4), (4, 2))

    def test_best_mesh_shape_respects_mesh_bounds(self):
        shape = best_mesh_shape(14, 7, 8)
        assert shape[0] <= 7 and shape[1] <= 8

    def test_best_mesh_shape_rejects_impossible_group(self):
        with pytest.raises(ValueError):
            best_mesh_shape(64, 4, 4)

    def test_hidden_split_allreduces_activations(self):
        cost = split_communication(TPSplitStrategy.HIDDEN, 2, 512, 1024, tp=4)
        assert cost.allreduce_bytes == pytest.approx(2 * 2 * 512 * 1024 * 2)
        assert cost.allgather_bytes == 0.0

    def test_batch_split_needs_no_activation_comm(self):
        cost = split_communication(TPSplitStrategy.BATCH, 2, 512, 1024, tp=4)
        assert cost.allreduce_bytes == 0.0 and cost.allgather_bytes == 0.0

    def test_tp_one_is_free(self):
        cost = split_communication(TPSplitStrategy.HIDDEN, 2, 512, 1024, tp=1)
        assert cost.allreduce_bytes == 0.0


class TestMegatronHeuristic:
    def test_large_models_use_tp8(self):
        cfg = megatron_parallelism(get_model("llama3-70b"), 64, 96 * GB)
        assert cfg.tp == 8

    def test_small_models_use_smaller_tp(self):
        cfg = megatron_parallelism(get_model("llama2-7b"), 8, 96 * GB)
        assert cfg.tp <= 4

    def test_world_size_fits_devices(self):
        for name in ("llama2-30b", "gpt-175b"):
            cfg = megatron_parallelism(get_model(name), 56, 70 * GB)
            assert cfg.world_size <= 56

    def test_pp_grows_until_model_fits(self):
        tight = megatron_parallelism(get_model("gpt-175b"), 64, 48 * GB)
        roomy = megatron_parallelism(get_model("gpt-175b"), 64, 288 * GB)
        assert tight.pp >= roomy.pp

    def test_validation(self):
        with pytest.raises(ValueError):
            megatron_parallelism(get_model("llama2-30b"), 0, GB)


class TestCerebrasAndFsdp:
    def test_weight_streaming_costs_scale_with_model(self, small_wafer):
        streaming = CerebrasWeightStreaming(small_wafer)
        small = streaming.evaluate(TrainingWorkload(get_model("llama2-30b"), 16, 1, 1024))
        large = streaming.evaluate(TrainingWorkload(get_model("llama3-70b"), 16, 1, 1024))
        assert large.weight_stream_time > small.weight_stream_time
        assert large.iteration_time > small.compute_time

    def test_exposed_comm_nonnegative(self, small_wafer):
        streaming = CerebrasWeightStreaming(small_wafer)
        outcome = streaming.evaluate(TrainingWorkload(get_model("llama2-30b"), 16, 1, 1024))
        assert outcome.exposed_comm_time >= 0.0

    def test_streaming_validation(self, small_wafer):
        with pytest.raises(ValueError):
            CerebrasWeightStreaming(small_wafer, compute_efficiency=0.0)

    def test_fsdp_traffic_is_three_passes_over_params(self):
        model = get_model("llama2-30b")
        assert fsdp_traffic_bytes(model) == pytest.approx(3 * 2.0 * model.num_parameters)

    def test_fsdp_comm_time_grows_with_group(self):
        model = get_model("llama2-30b")
        link = AlphaBetaLink(1e12, 1e-7)
        assert fsdp_cost(model, 16, link).comm_time > fsdp_cost(model, 4, link).comm_time

    def test_fsdp_moves_more_bytes_than_tp_activations(self):
        # Fig. 6a rationale: FSDP traffic is parameter-sized, TP traffic activation-sized.
        model = get_model("llama2-30b")
        workload = TrainingWorkload(model, 16, 1, 4096)
        tp_bytes_per_layer = 2 * 2 * workload.micro_batch_size * workload.seq_len * model.hidden_size
        tp_total = tp_bytes_per_layer * model.num_layers * 16
        assert fsdp_traffic_bytes(model) > tp_total
