"""Operator predictors: analytical roofline, DNN correction and the lookup table."""

import numpy as np
import pytest

from repro.predictor.analytical import AnalyticalPredictor
from repro.predictor.dnn import DnnOperatorPredictor, MlpRegressor
from repro.predictor.lookup import OperatorProfileTable
from repro.workloads.operators import OperatorKind
from repro.workloads.transformer import build_layer_graph

from repro_testlib import make_small_wafer, make_tiny_model


@pytest.fixture
def die():
    return make_small_wafer().die


@pytest.fixture
def predictor(die):
    return AnalyticalPredictor(die)


@pytest.fixture
def layer_ops(tiny_model):
    return build_layer_graph(tiny_model, 2, 512)


class TestAnalyticalPredictor:
    def test_latency_positive_for_every_operator(self, predictor, layer_ops):
        for op in layer_ops:
            assert predictor.latency(op) > 0.0

    def test_gemms_are_compute_bound_on_wafer_dies(self, predictor, layer_ops):
        gemms = [op for op in layer_ops if op.kind is OperatorKind.GEMM]
        assert gemms
        for op in gemms:
            assert not predictor.estimate(op).is_memory_bound

    def test_norms_are_memory_bound(self, predictor, layer_ops):
        norms = [op for op in layer_ops if op.kind is OperatorKind.NORM]
        for op in norms:
            assert predictor.estimate(op).is_memory_bound

    def test_latency_scales_down_with_tp_sharding(self, predictor, layer_ops):
        gemm = next(op for op in layer_ops if op.name == "mlp_up_proj")
        assert predictor.latency(gemm.sharded(4)) < predictor.latency(gemm)

    def test_memory_reports_checkpoint_bytes(self, predictor, layer_ops):
        for op in layer_ops:
            assert predictor.memory(op) == pytest.approx(op.checkpoint_bytes)

    def test_faster_die_gives_lower_latency(self, layer_ops):
        slow = AnalyticalPredictor(make_small_wafer().die)
        fast_wafer = make_small_wafer()
        from dataclasses import replace
        fast_core = replace(fast_wafer.die.compute.core, flops_fp16=fast_wafer.die.compute.core.flops_fp16 * 4)
        fast_die = replace(fast_wafer.die, compute=replace(fast_wafer.die.compute, core=fast_core))
        fast = AnalyticalPredictor(fast_die)
        gemm = next(op for op in layer_ops if op.kind is OperatorKind.GEMM)
        assert fast.latency(gemm) < slow.latency(gemm)

    def test_ema_at_least_one_pass_over_operands(self, predictor, layer_ops):
        gemm = next(op for op in layer_ops if op.name == "qkv_proj")
        estimate = predictor.estimate(gemm)
        assert estimate.ema_bytes >= gemm.weight_bytes


class TestMlpRegressor:
    def test_learns_a_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(400, 3))
        y = x[:, 0] * 1.5 - 0.5 * x[:, 1] + 0.2 * np.sin(x[:, 2])
        model = MlpRegressor(input_dim=3, hidden_dim=24, seed=1)
        losses = model.fit(x, y, epochs=300)
        assert losses[-1] < losses[0] * 0.1
        pred = model.predict(x)
        rel_err = np.mean(np.abs(pred - y)) / (np.std(y) + 1e-9)
        assert rel_err < 0.2

    def test_shape_validation(self):
        model = MlpRegressor(input_dim=2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 2)), np.zeros(3))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            MlpRegressor(input_dim=0)


class TestDnnOperatorPredictor:
    @pytest.fixture(scope="class")
    def trained(self):
        die = make_small_wafer().die
        model = make_tiny_model()
        ops = []
        for batch in (1, 2, 4):
            for seq in (256, 512, 1024):
                ops.extend(build_layer_graph(model, batch, seq))
        predictor = DnnOperatorPredictor(die, seed=0)
        accuracy = predictor.train(ops, epochs=250)
        return predictor, accuracy

    def test_dnn_beats_analytical_accuracy(self, trained):
        # Fig. 10b: the learned predictor captures alignment/memory effects the
        # analytical model misses.
        _, accuracy = trained
        assert accuracy.dnn_error < accuracy.analytical_error

    def test_dnn_error_is_small(self, trained):
        _, accuracy = trained
        assert accuracy.dnn_error < 0.10

    def test_trained_predictions_positive(self, trained, tiny_model):
        predictor, _ = trained
        for op in build_layer_graph(tiny_model, 2, 512):
            assert predictor.latency(op) > 0.0
            assert predictor.memory(op) >= 0.0

    def test_untrained_predictor_falls_back_to_analytical(self, tiny_model):
        die = make_small_wafer().die
        predictor = DnnOperatorPredictor(die)
        analytical = AnalyticalPredictor(die)
        op = build_layer_graph(tiny_model, 1, 512)[1]
        assert predictor.latency(op) == pytest.approx(analytical.latency(op))

    def test_training_requires_enough_samples(self, tiny_model):
        predictor = DnnOperatorPredictor(make_small_wafer().die)
        with pytest.raises(ValueError):
            predictor.train(build_layer_graph(tiny_model, 1, 512)[:4])


class TestLookupTable:
    def test_cache_hit_after_first_lookup(self, die, layer_ops):
        table = OperatorProfileTable(AnalyticalPredictor(die), die)
        op = layer_ops[0]
        first = table.lookup(op)
        second = table.lookup(op)
        assert first == second
        assert table.hits == 1 and table.misses == 1
        assert table.hit_rate == pytest.approx(0.5)

    def test_distinct_operators_get_distinct_entries(self, die, layer_ops):
        table = OperatorProfileTable(AnalyticalPredictor(die), die)
        for op in layer_ops:
            table.lookup(op)
        assert len(table) == len(layer_ops)

    def test_latency_and_memory_match_predictor(self, die, layer_ops):
        predictor = AnalyticalPredictor(die)
        table = OperatorProfileTable(predictor, die)
        op = layer_ops[3]
        assert table.latency(op) == pytest.approx(predictor.latency(op))
        assert table.memory(op) == pytest.approx(predictor.memory(op))

    def test_clear_resets_statistics(self, die, layer_ops):
        table = OperatorProfileTable(AnalyticalPredictor(die), die)
        table.lookup(layer_ops[0])
        table.clear()
        assert len(table) == 0 and table.hits == 0 and table.misses == 0
