"""Tests for the ``repro.obs`` observability subsystem: ring-buffer tracer
semantics (nesting, wraparound, worker merge), the versioned trace-file format
(round-trip, torn-tail tolerance), store lifecycle hygiene (result-store
compaction), and — the invariant everything hangs on — bit-identity of sweep
results with tracing on versus off.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.api import Session, SweepSpec, close_default_session, open_result_store
from repro.api.cli import main as cli_main
from repro.core.parallel_map import PoolConfig, WorkerPool
from repro.obs import tracer
from repro.obs.report import aggregate, fold_timings, render_table, render_waterfall
from repro.obs.tracefile import TRACE_FORMAT, read_trace, write_trace


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled (module-global flag)."""
    tracer.disable()
    close_default_session()
    yield
    tracer.disable()
    close_default_session()


SWEEP_PAYLOAD = {
    "base": {
        "kind": "ga", "wafer": "tiny", "workload": "tiny",
        "population": 4, "generations": 2,
    },
    "seeds": 2,
}


# ------------------------------------------------------------------------ tracer core
class TestTracer:
    def test_span_nesting_records_inner_first_with_depths(self):
        tracer.enable()
        mark = tracer.mark()
        with tracer.span("outer", tag="o"):
            with tracer.span("inner", tag="i"):
                pass
        records = tracer.records(since=mark)
        assert [r[1] for r in records] == ["inner", "outer"]  # inner exits first
        by_name = {r[1]: r for r in records}
        assert by_name["inner"][7] == 1  # depth
        assert by_name["outer"][7] == 0
        # The outer span brackets the inner one in time.
        assert by_name["outer"][2] <= by_name["inner"][2]
        assert by_name["inner"][3] <= by_name["outer"][3]

    def test_ring_wraparound_keeps_newest_and_counts_dropped(self):
        ring = tracer.Tracer(capacity=4)
        for i in range(10):
            ring.add_count("tick", float(i))
        records = ring.records()
        assert len(records) == 4
        assert [r[8] for r in records] == [6.0, 7.0, 8.0, 9.0]  # newest survive
        assert ring.dropped() == 6

    def test_drain_is_incremental(self):
        ring = tracer.Tracer(capacity=16)
        ring.add_count("a")
        assert [r[1] for r in ring.drain()] == ["a"]
        assert ring.drain() == []  # nothing new since
        ring.add_count("b")
        assert [r[1] for r in ring.drain()] == ["b"]

    def test_disabled_sites_record_nothing(self):
        assert not tracer.enabled
        before = tracer.mark()
        with tracer.span("quiet"):
            tracer.count("quiet.count")
            tracer.add("quiet.add", 0.0, 1.0)
        assert tracer.records(since=before) == []

    def test_absorb_merges_foreign_records_verbatim(self):
        ring = tracer.Tracer(capacity=8)
        ring.add_span("pricing", 1.0, 2.0, tag="x")
        host = tracer.Tracer(capacity=8)
        host.absorb(ring.drain())
        assert host.records() == ring.records()

    def test_fold_timings_sums_spans_and_prefixes_counters(self):
        records = [
            ("S", "pricing", 0.0, 0.5, "", 1, None, 0, 1.0),
            ("S", "pricing", 1.0, 1.25, "", 1, None, 0, 1.0),
            ("C", "cache.hit", 0.1, 0.1, "", 1, None, 0, 3.0),
        ]
        folded = fold_timings(records)
        assert folded["pricing"] == 0.75
        assert folded["#cache.hit"] == 3.0


# -------------------------------------------------------------------- worker shipping
def _traced_square(x: int) -> int:
    with obs.span("task", tag=str(x)):
        return x * x


class TestWorkerMerge:
    def test_worker_spans_ship_through_carry_in_slot_order(self):
        tracer.enable()
        mark = tracer.mark()
        with WorkerPool(config=PoolConfig(max_workers=2)) as pool:
            assert pool.map(_traced_square, list(range(8)), sync=False) == [
                x * x for x in range(8)
            ]
        spans = [r for r in tracer.records(since=mark) if r[1] == "task"]
        assert len(spans) == 8
        workers = [r[6] for r in spans]
        assert set(workers) == {0, 1}
        # Absorbed in worker-slot order: all of worker 0's spans, then worker 1's.
        assert workers == sorted(workers)

    def test_workers_stay_silent_when_parent_tracing_is_off(self):
        assert not tracer.enabled
        mark = tracer.mark()
        with WorkerPool(config=PoolConfig(max_workers=2)) as pool:
            pool.map(_traced_square, list(range(4)), sync=False)
        assert [r for r in tracer.records(since=mark) if r[1] == "task"] == []


# ------------------------------------------------------------------------- trace file
class TestTraceFile:
    def test_round_trip_preserves_spans_and_meta(self, tmp_path):
        ring = tracer.Tracer(capacity=8)
        ring.add_span("pricing", 1.0, 2.0, tag="cell-1")
        ring.add_count("cache.hit", 2.0)
        path = tmp_path / "trace.jsonl"
        written = write_trace(path, ring.records(), meta={"fingerprint": "abc"})
        assert written == 2
        header, spans = read_trace(path)
        assert header["format"] == TRACE_FORMAT
        assert header["fingerprint"] == "abc"
        assert [s["name"] for s in spans] == ["pricing", "cache.hit"]
        assert spans[0]["tag"] == "cell-1"
        assert spans[1]["value"] == 2.0

    def test_torn_tail_is_skipped(self, tmp_path):
        ring = tracer.Tracer(capacity=8)
        ring.add_span("pricing", 1.0, 2.0)
        ring.add_span("dispatch", 2.0, 3.0)
        path = tmp_path / "trace.jsonl"
        write_trace(path, ring.records())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"k": "S", "n": "torn')  # crash mid-write
        header, spans = read_trace(path)
        assert [s["name"] for s in spans] == ["pricing", "dispatch"]

    def test_foreign_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text('{"hello": "world"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a .*trace"):
            read_trace(path)

    def test_report_renders_merged_stages(self):
        records = [
            ("S", "cell", 0.0, 1.0, "c1", 1, None, 0, 1.0),
            ("S", "pricing", 0.2, 0.6, "", 2, 0, 0, 1.0),
            ("C", "cache.hit", 0.3, 0.3, "", 2, 0, 0, 4.0),
        ]
        agg = aggregate(tracer.as_dicts(records))
        assert agg["stages"]["pricing"]["from_workers"]
        table = render_table(agg)
        assert "pricing" in table and "cell" in table
        waterfall = render_waterfall(tracer.as_dicts(records))
        assert "w0" in waterfall and "main" in waterfall


# --------------------------------------------------------------- session integration
class TestSessionTracing:
    def test_sweep_results_are_bit_identical_tracing_on_vs_off(self, tmp_path):
        sweep = SweepSpec.from_payload(SWEEP_PAYLOAD)

        def rows(results_path, trace):
            store = open_result_store(results_path)
            with Session(trace=trace) as session:
                runs = list(session.sweep(sweep, results=store))
            assert all(runs)
            if trace is not None:
                assert all(run.timings.get("pricing", 0.0) > 0 for run in runs)
                assert all("#cache.hit" in run.timings for run in runs)
            else:
                assert all(run.timings == {} for run in runs)
            loaded = store.load()
            store.close()
            return {
                cell_id: record["result"] for cell_id, record in loaded.items()
            }

        plain = rows(str(tmp_path / "plain.jsonl"), trace=None)
        traced = rows(
            str(tmp_path / "traced.jsonl"), trace=str(tmp_path / "trace.jsonl")
        )
        assert plain == traced  # stored records never see the tracer

    def test_session_trace_writes_profile_readable_file(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        sweep = SweepSpec.from_payload(SWEEP_PAYLOAD)
        with Session(pool=2, trace=str(trace_path)) as session:
            list(session.sweep(sweep))
        assert not tracer.enabled  # the session disables what it enabled
        header, spans = read_trace(trace_path)
        assert header["cells"] == 2
        names = {s["name"] for s in spans}
        assert {"cell", "pricing", "cache.sync", "dispatch", "worker.chunk"} <= names
        # Worker rings were merged into the session timeline before the write.
        assert any(s["worker"] is not None for s in spans)

    def test_trace_fingerprint_is_stable_across_resume(self, tmp_path):
        sweep = SweepSpec.from_payload(SWEEP_PAYLOAD)
        results = str(tmp_path / "out.jsonl")
        headers = []
        for name in ("t1.jsonl", "t2.jsonl"):
            store = open_result_store(results)
            with Session(trace=str(tmp_path / name)) as session:
                list(session.sweep(sweep, results=store))
            store.close()
            headers.append(read_trace(tmp_path / name)[0])
        assert headers[0]["fingerprint"] == headers[1]["fingerprint"]


# ------------------------------------------------------------------- store lifecycle
class TestResultStoreCompaction:
    def _store_with_duplicates(self, path):
        store = open_result_store(path)
        store.put("cell-a", {"result": {"metrics": {"v": 1}}, "status": "ok"})
        store.put("cell-b", {"result": {"metrics": {"v": 2}}, "status": "ok"})
        store.put("cell-a", {"result": {"metrics": {"v": 3}}, "status": "ok"})
        return store

    @pytest.mark.parametrize("suffix", [".jsonl", ".sqlite"])
    def test_compact_folds_duplicates_later_wins(self, tmp_path, suffix):
        store = self._store_with_duplicates(str(tmp_path / f"out{suffix}"))
        # JSONL appends duplicate rows; sqlite upserts on its cell_id primary
        # key, so there its compact is a (harmless) no-op.
        before = 3 if suffix == ".jsonl" else 2
        assert store.physical_rows() == before
        report = store.compact()
        assert report == {"before": before, "after": 2, "cells": 2}
        assert store.physical_rows() == 2
        loaded = store.load()
        assert loaded["cell-a"]["result"]["metrics"]["v"] == 3
        store.close()

    def test_session_results_compact_folds_on_close(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        store = self._store_with_duplicates(path)
        store.close()
        with Session(results=path, results_compact=True):
            pass  # the compaction knob acts at close, mirroring compact_on_exit
        reopened = open_result_store(path)
        assert reopened.physical_rows() == 2
        reopened.close()

    def test_cli_results_compact_reports_counts(self, tmp_path, capsys):
        path = str(tmp_path / "out.jsonl")
        store = self._store_with_duplicates(path)
        store.close()
        assert cli_main(["results", "compact", path]) == 0
        out = capsys.readouterr().out
        assert "3 rows -> 2" in out and "1 duplicate rows folded" in out

    def test_cli_no_resume_rerun_keeps_store_bounded(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SWEEP_PAYLOAD), encoding="utf-8")
        results = str(tmp_path / "out.jsonl")
        for _ in range(2):
            assert cli_main(
                ["sweep", "--spec", str(spec_path), "--results", results,
                 "--no-resume"]
            ) == 0
        store = open_result_store(results)
        assert store.physical_rows() == 2  # re-runs folded, not appended
        store.close()


# -------------------------------------------------------------------------- CLI
class TestProfileCli:
    def test_profile_reports_stage_breakdown(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SWEEP_PAYLOAD), encoding="utf-8")
        trace_path = str(tmp_path / "trace.jsonl")
        assert cli_main(
            ["sweep", "--spec", str(spec_path), "--trace", trace_path,
             "--results", str(tmp_path / "out.jsonl")]
        ) == 0
        json_out = str(tmp_path / "profile.json")
        assert cli_main(["profile", trace_path, "--json", json_out]) == 0
        out = capsys.readouterr().out
        assert "pricing" in out and "store.put" in out
        with open(json_out, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["stages"]["pricing"]["total_s"] > 0
        assert payload["header"]["cells"] == 2

    def test_profile_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "nope.jsonl"
        path.write_text('{"cells": 1}\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="repro profile"):
            cli_main(["profile", str(path)])
