"""Distributed sweep fabric under test (ISSUE 8).

The contract:

* Lease semantics — a host that stops heartbeating has its leased cells requeued
  with the attempt count **carried** (the retry budget is global across hosts); a
  requeued cell can never be double-claimed; a cell whose granted attempt already
  reached the budget quarantines as a ``status="failed"`` row.
* Coordinator restart recovers the queue from the result store plus the append-only
  lease journal: completed cells stay completed, pending cells stay pending, cells
  that were mid-lease at the crash are requeued with attempts carried.
* ``Session(store="host:port/ns")`` drains the coordinator's queue with no other
  API change, and a multi-host sweep stores rows **bit-identical** to a single-host
  serial walk.
* Degradation: unreachable coordinator → actionable error naming ``repro serve``
  and the offline merge fallback; bad port / stale namespace / version-mismatched
  peer → did-you-mean-style messages; connection lost mid-sweep → bounded reconnect
  then local quarantine of the in-flight cell.
* ``repro results merge`` folds partial stores with later-duplicates-win.
* Network chaos (seeded drops, heartbeat delay, torn mid-frame writes) is bounded
  by the same O_EXCL token convention as the process-level monkey.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.api import (
    Session,
    SweepSpec,
    close_default_session,
    merge_stores,
    open_result_store,
)
from repro.api.cli import main as repro_main
from repro.api.registry import register_workload
from repro.core.chaos import ChaosMonkey
from repro.core.retry import RetryPolicy
from repro.fabric import FabricClient, FabricCoordinator
from repro.fabric.leases import LeaseJournal, LeaseTable
from repro.fabric.protocol import (
    FabricConnectionError,
    FabricProtocolError,
    looks_like_endpoint,
    parse_endpoint,
)


@pytest.fixture(autouse=True)
def _clean_runtime():
    close_default_session()
    yield
    close_default_session()


GA_SWEEP = {
    "base": {"kind": "ga", "wafer": "tiny", "workload": "tiny",
             "population": 4, "generations": 2},
    "seeds": 2,
}

#: A short lease so expiry paths run in test time, with a generous margin over
#: the reap tick.
LEASE_S = 0.3


def _rows(path):
    """The deterministic result rows of a store, as canonical JSON per cell."""
    with open_result_store(path) as store:
        return {
            cell_id: json.dumps(record["result"], sort_keys=True)
            for cell_id, record in store.load().items()
        }


def _free_port() -> int:
    """A port that was just free — connecting to it should be refused."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _cell(cell_id, **meta):
    payload = {"id": cell_id, "kind": "ga", "label": cell_id, "spec": {"x": 1}}
    payload.update(meta)
    return payload


def _record(cell_id, status="ok"):
    return {
        "result": {"kind": "ga", "label": cell_id, "cell_id": cell_id, "plan": None,
                   "oom": None, "status": status, "error": "", "metrics": {}},
        "spec": {"x": 1},
        "seconds": 0.0,
        "attempts": 1,
        "written_at": time.time(),
    }


# ------------------------------------------------------------------- endpoints
class TestEndpoints:
    def test_shapes(self):
        assert looks_like_endpoint("127.0.0.1:7077")
        assert looks_like_endpoint("localhost:7077/prod")
        assert looks_like_endpoint("localhost:70b7")  # typoed address, not a file
        assert not looks_like_endpoint("results.jsonl")
        assert not looks_like_endpoint("sweep.jsonl:old")
        assert not looks_like_endpoint("dir/sweep.jsonl")
        assert not looks_like_endpoint(None)

    def test_parse(self):
        endpoint = parse_endpoint("127.0.0.1:7077/prod")
        assert (endpoint.host, endpoint.port, endpoint.namespace) == (
            "127.0.0.1", 7077, "prod")
        assert parse_endpoint("h:1").namespace == "default"

    def test_bad_port_is_actionable(self):
        with pytest.raises(ValueError, match="bad port '70b7'.*host:port"):
            parse_endpoint("localhost:70b7")

    def test_empty_namespace_is_actionable(self):
        with pytest.raises(ValueError, match="empty namespace"):
            parse_endpoint("localhost:7077/")


# ---------------------------------------------------------------- retry policy
class TestRetryPolicyWireForm:
    def test_round_trip(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=1.0, timeout_s=2.0, seed=7)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_field_is_rejected_with_field_list(self):
        with pytest.raises(ValueError, match="unknown RetryPolicy field.*attemps"):
            RetryPolicy.from_dict({"attemps": 4})


# --------------------------------------------------------------------- leases
class TestLeaseTable:
    def test_grant_renew_expire(self):
        table = LeaseTable(lease_s=10.0)
        lease = table.grant("c1", "hostA", attempt=1)
        assert not lease.expired()
        assert table.renew("hostA") == 1 and table.renew("hostB") == 0
        assert table.expired(now=lease.expires_at + 1) == [lease]
        assert table.release("c1") is lease and "c1" not in table

    def test_double_grant_is_a_bug(self):
        table = LeaseTable(lease_s=10.0)
        table.grant("c1", "hostA", attempt=1)
        with pytest.raises(RuntimeError, match="already leased to hostA"):
            table.grant("c1", "hostB", attempt=2)


class TestLeaseJournal:
    def test_replay_rebuilds_queue(self, tmp_path):
        journal = LeaseJournal(str(tmp_path / "leases.jsonl"))
        journal.append("reg", "c1", m={"kind": "ga"})
        journal.append("reg", "c2", m={})
        journal.append("reg", "c3", m={})
        journal.append("grant", "c1", h="hostA", a=1)
        journal.append("grant", "c2", h="hostA", a=1)
        journal.append("requeue", "c2", a=1)
        journal.append("grant", "c3", h="hostB", a=1)
        journal.append("done", "c3")
        journal.close()

        cells, pending, interrupted = LeaseJournal(journal.path).replay()
        assert set(cells) == {"c1", "c2"}  # c3 settled
        assert pending == ["c2"] and interrupted == ["c1"]
        assert cells["c1"].attempts == 1 and cells["c1"].meta == {"kind": "ga"}

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = LeaseJournal(str(tmp_path / "leases.jsonl"))
        journal.append("reg", "c1", m={})
        journal.append("reg", "c2", m={})
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b'{"e": "done", "c"')  # killed mid-frame
        replayed = LeaseJournal(journal.path)
        cells, pending, _ = replayed.replay()
        assert set(cells) == {"c1", "c2"} and pending == ["c1", "c2"]
        assert replayed.replay_errors == 1


# ---------------------------------------------------------- coordinator queue
class TestCoordinatorQueue:
    """Queue semantics driven through the dispatcher ops directly (no sockets)."""

    def _coord(self, tmp_path, **kwargs):
        kwargs.setdefault("lease_s", 0.05)
        return FabricCoordinator(str(tmp_path / "store"), **kwargs)

    def test_lease_expiry_requeues_with_attempts_carried(self, tmp_path):
        coord = self._coord(tmp_path)
        coord._op_register({"host": "hostA", "cells": [_cell("c1")], "max_attempts": 3})
        grant = coord._op_claim({"host": "hostA"})
        assert grant["cell"] == "c1" and grant["attempt"] == 1
        time.sleep(0.08)  # let the lease expire (no heartbeat)
        coord._op_tick({})
        assert coord.requeues == 1 and coord.expiries == 1
        again = coord._op_claim({"host": "hostA"})
        assert again["cell"] == "c1" and again["attempt"] == 2  # budget is global
        coord.stop()

    def test_double_claim_impossible_after_requeue(self, tmp_path):
        coord = self._coord(tmp_path)
        for host in ("hostA", "hostB"):
            coord._op_register({"host": host, "cells": [_cell("c1")], "max_attempts": 5})
        assert coord._op_claim({"host": "hostA"})["cell"] == "c1"
        time.sleep(0.08)
        coord._op_tick({})  # hostA presumed dead; c1 requeued
        assert coord._op_claim({"host": "hostB"})["cell"] == "c1"
        # The cell is leased to hostB now: nobody can claim it again.
        assert coord._op_claim({"host": "hostA"}).get("wait") is True
        assert coord._op_claim({"host": "hostB"}).get("wait") is True
        # A stale failure report from the dead host must not burn an attempt.
        before = coord._cells["c1"].attempts
        reply = coord._op_fail({"host": "hostA", "cell": "c1", "record": None})
        assert reply.get("stale") is True
        assert coord._cells["c1"].attempts == before and coord.requeues == 1
        coord.stop()

    def test_dead_host_quarantines_after_global_budget(self, tmp_path):
        coord = self._coord(tmp_path)
        coord._op_register({"host": "hostA", "cells": [_cell("c1")], "max_attempts": 1})
        coord._op_claim({"host": "hostA"})
        time.sleep(0.08)
        coord._op_tick({})
        assert coord.quarantines == 1
        record = coord.results.get("c1")
        assert record is not None and record["result"]["status"] == "failed"
        assert "hostA" in record["result"]["error"]
        assert "missed the heartbeat window" in record["result"]["error"]
        assert coord._op_claim({"host": "hostA"}).get("drained") is True
        coord.stop()

    def test_completed_rows_settle_registration(self, tmp_path):
        coord = self._coord(tmp_path)
        coord._op_complete({"host": "hostA", "cell": "c1", "record": _record("c1")})
        reply = coord._op_register(
            {"host": "hostA", "cells": [_cell("c1"), _cell("c2")], "max_attempts": 3}
        )
        assert reply["completed"] == ["c1"] and reply["registered"] == 1
        coord.stop()

    def test_failed_rows_requeue_unless_skip_failed(self, tmp_path):
        coord = self._coord(tmp_path)
        coord._op_complete(
            {"host": "hostA", "cell": "c1", "record": _record("c1", status="failed")}
        )
        skip = coord._op_register(
            {"host": "hostA", "cells": [_cell("c1")], "max_attempts": 3,
             "skip_failed": True}
        )
        assert skip["completed"] == ["c1"]
        retry = coord._op_register(
            {"host": "hostA", "cells": [_cell("c1")], "max_attempts": 3}
        )
        assert retry["completed"] == [] and retry["registered"] == 1
        coord.stop()

    def test_restart_recovers_from_journal_and_store(self, tmp_path):
        coord = self._coord(tmp_path)
        coord._op_register(
            {"host": "hostA", "cells": [_cell("c1"), _cell("c2"), _cell("c3")],
             "max_attempts": 3}
        )
        assert coord._op_claim({"host": "hostA"})["cell"] == "c1"  # left mid-lease
        assert coord._op_claim({"host": "hostA"})["cell"] == "c2"
        coord._op_complete({"host": "hostA", "cell": "c2", "record": _record("c2")})
        coord.stop()  # coordinator "crash" (journal and store survive)

        revived = self._coord(tmp_path)
        assert revived._completed == {"c2"}
        # The reconnecting host re-registers its matrix (journal replay does not
        # carry host affiliations): c2 reports settled, c1/c3 merge into the queue.
        reply = revived._op_register(
            {"host": "hostA", "cells": [_cell("c1"), _cell("c2"), _cell("c3")],
             "max_attempts": 3}
        )
        assert reply["completed"] == ["c2"] and reply["registered"] == 0
        # c3 was pending, c1 was mid-lease: both claimable again, c1's attempt carried.
        claims = {
            revived._op_claim({"host": "hostA"})["cell"],
            revived._op_claim({"host": "hostA"})["cell"],
        }
        assert claims == {"c1", "c3"}
        assert revived._cells["c1"].attempts == 2  # attempt 1 died with the crash
        assert revived._op_claim({"host": "hostA"}).get("wait") is True
        revived.stop()


# ------------------------------------------------------------- live end-to-end
class TestSessionFabric:
    def test_two_hosts_bit_identical_to_serial(self, tmp_path):
        serial = str(tmp_path / "serial.jsonl")
        with Session() as session:
            list(session.sweep(SweepSpec.from_dict(GA_SWEEP), results=serial))

        coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
        address = coord.start("127.0.0.1:0")
        sessions = [Session(store=address), Session(store=address)]
        done = [[] for _ in sessions]

        def drain(index):
            done[index].extend(
                sessions[index].sweep(SweepSpec.from_dict(GA_SWEEP))
            )

        threads = [
            threading.Thread(target=drain, args=(index,))
            for index in range(len(sessions))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for session in sessions:
            session.close()
        coord.stop()
        total = sum(len(batch) for batch in done)
        assert total == len(SweepSpec.from_dict(GA_SWEEP).expand())
        assert _rows(str(tmp_path / "fabric" / "results.jsonl")) == _rows(serial)

    def test_fabric_resume_skips_completed(self, tmp_path):
        coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
        address = coord.start("127.0.0.1:0")
        with Session(store=address) as session:
            first = list(session.sweep(SweepSpec.from_dict(GA_SWEEP)))
        assert len(first) == 2
        with Session(store=address) as session:
            again = list(session.sweep(SweepSpec.from_dict(GA_SWEEP)))
        assert again == []  # the coordinator's store already settles every cell
        coord.stop()

    def test_poison_cell_quarantines_under_global_budget(self, tmp_path):
        coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
        address = coord.start("127.0.0.1:0")
        poison, good = _cell("poison"), _cell("good")
        clients = [
            FabricClient(address, host_id=f"host{index}") for index in range(2)
        ]
        for client in clients:
            client.register([poison, good], max_attempts=2)
        # host0 burns attempt 1, host1 gets the requeue and exhausts the budget.
        grant = clients[0].claim()
        assert grant["cell"] == "poison" and grant["attempt"] == 1
        assert clients[0].fail("poison", _record("poison", "failed")) == {
            "ok": True, "quarantined": False}
        assert clients[1].claim()["cell"] == "good"  # siblings keep draining
        clients[1].complete("good", _record("good"))
        second = clients[1].claim()
        assert second["cell"] == "poison" and second["attempt"] == 2
        reply = clients[1].fail("poison", _record("poison", "failed"))
        assert reply["quarantined"] is True
        assert clients[0].claim().get("drained") is True
        stats = clients[0].stats()
        assert stats["quarantines"] == 1 and stats["completed"] == 2
        for client in clients:
            client.close()
        coord.stop()
        rows = _rows(str(tmp_path / "fabric" / "results.jsonl"))
        assert set(rows) == {"poison", "good"}
        assert json.loads(rows["poison"])["status"] == "failed"


# ------------------------------------------------------------ degradation paths
class TestDegradation:
    def test_unreachable_coordinator_names_the_fallback(self):
        port = _free_port()
        with pytest.raises(FabricConnectionError) as excinfo:
            Session(store=f"127.0.0.1:{port}/default")
        message = str(excinfo.value)
        assert "repro serve" in message
        assert "offline fallback" in message and "repro results merge" in message

    def test_bad_port_in_session_store(self):
        with pytest.raises(ValueError, match="bad port"):
            Session(store="localhost:70b7")

    def test_namespace_conflict_between_kwarg_and_endpoint(self):
        with pytest.raises(ValueError, match="conflicts with the endpoint"):
            Session(store="127.0.0.1:1/prod", namespace="dev")

    def test_stale_namespace_gets_did_you_mean(self, tmp_path):
        coord = FabricCoordinator(str(tmp_path / "fabric"), namespace="prod")
        address = coord.start("127.0.0.1:0")
        with pytest.raises(FabricProtocolError, match="did you mean 'prod'"):
            Session(store=f"{address}/prodd")
        coord.stop()

    def test_version_mismatch_is_actionable(self, tmp_path, monkeypatch):
        coord = FabricCoordinator(str(tmp_path / "fabric"))
        address = coord.start("127.0.0.1:0")
        monkeypatch.setattr("repro.fabric.client.PROTOCOL_VERSION", 99)
        with pytest.raises(FabricProtocolError, match="v99.*upgrade"):
            Session(store=address)
        coord.stop()

    def test_connection_lost_mid_sweep_quarantines_locally(self, tmp_path):
        coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
        address = coord.start("127.0.0.1:0")
        local = str(tmp_path / "local.jsonl")
        session = Session(store=address)
        session.fabric.reconnect_attempts = 1
        session.fabric.backoff_s = 0.01
        with ChaosMonkey(tmp_path / "chaos") as chaos:
            # Every `complete` send dies: the cell prices fine but its ack can
            # never reach the coordinator — reconnect budget spent mid-flight.
            chaos.drop_connection(op="complete", times=None)
            with pytest.raises(FabricConnectionError, match="quarantined\\s+locally"):
                list(session.sweep(SweepSpec.from_dict(GA_SWEEP), results=local))
        session.close()
        coord.stop()
        # The in-flight cell's real row was salvaged into the local store, so the
        # offline merge fallback can fold it back later.
        rows = _rows(local)
        assert len(rows) == 1
        assert json.loads(next(iter(rows.values())))["status"] == "ok"


# ------------------------------------------------------------------- net chaos
class TestNetworkChaos:
    def test_drop_tokens_are_bounded(self, tmp_path):
        chaos = ChaosMonkey(tmp_path).drop_connection(op="claim", times=1)
        with pytest.raises(ConnectionResetError, match="chaos: dropped"):
            chaos._on_net("send", "claim")
        assert chaos._on_net("send", "claim") is None  # budget spent
        assert chaos._on_net("send", "complete") is None  # op filter
        assert chaos.claimed("drop") == 1

    def test_heartbeat_delay_only_hits_heartbeats(self, tmp_path):
        chaos = ChaosMonkey(tmp_path).delay_heartbeat(0.0, times=1)
        assert chaos._on_net("send", "claim") is None
        assert chaos.claimed("hb-delay") == 0
        assert chaos._on_net("send", "heartbeat") is None
        assert chaos.claimed("hb-delay") == 1

    def test_dropped_connection_mid_sweep_reconnects(self, tmp_path):
        coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
        address = coord.start("127.0.0.1:0")
        serial = str(tmp_path / "serial.jsonl")
        with Session() as session:
            list(session.sweep(SweepSpec.from_dict(GA_SWEEP), results=serial))
        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.drop_connection(op="claim", times=1)
            session = Session(store=address)
            session.fabric.backoff_s = 0.01
            runs = list(session.sweep(SweepSpec.from_dict(GA_SWEEP)))
            session.close()
        assert len(runs) == 2 and chaos.claimed("drop") == 1
        coord.stop()
        assert _rows(str(tmp_path / "fabric" / "results.jsonl")) == _rows(serial)

    def test_torn_frame_heals_like_a_dropped_connection(self, tmp_path):
        coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
        address = coord.start("127.0.0.1:0")
        serial = str(tmp_path / "serial.jsonl")
        with Session() as session:
            list(session.sweep(SweepSpec.from_dict(GA_SWEEP), results=serial))
        with ChaosMonkey(tmp_path / "chaos") as chaos:
            chaos.tear_frame(op="complete", times=1)
            session = Session(store=address)
            session.fabric.backoff_s = 0.01
            runs = list(session.sweep(SweepSpec.from_dict(GA_SWEEP)))
            session.close()
        # The torn `complete` never half-parsed: the server saw EOF, the client
        # reconnected and retried, and the idempotent put absorbed any double.
        assert len(runs) == 2 and chaos.claimed("tear") == 1
        coord.stop()
        assert _rows(str(tmp_path / "fabric" / "results.jsonl")) == _rows(serial)


# ------------------------------------------------------------------------ merge
class TestMerge:
    def test_later_duplicates_win_in_argument_order(self, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.sqlite")
        out = str(tmp_path / "merged.sqlite")
        with open_result_store(a) as store:
            store.put("c1", _record("c1"))
            store.put("c2", _record("c2", status="failed"))
        with open_result_store(b) as store:
            store.put("c2", _record("c2"))  # the healed re-run wins
            store.put("c3", _record("c3"))
        summary = merge_stores([a, b], out)
        assert summary == {
            "stores": 2, "cells": 3, "duplicates": 1, "statuses": {"ok": 3}}
        rows = _rows(out)
        assert set(rows) == {"c1", "c2", "c3"}
        assert json.loads(rows["c2"])["status"] == "ok"

    def test_cli_merge_prints_histogram(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        with open_result_store(a) as store:
            store.put("c1", _record("c1"))
            store.put("c2", _record("c2", status="failed"))
        out = str(tmp_path / "merged.jsonl")
        assert repro_main(["results", "merge", a, "-o", out]) == 0
        printed = capsys.readouterr().out
        assert "2 cells" in printed and "ok=1" in printed and "failed=1" in printed

    def test_cli_merge_missing_input(self, tmp_path, capsys):
        assert repro_main(
            ["results", "merge", str(tmp_path / "ghost.jsonl"),
             "-o", str(tmp_path / "out.jsonl")]
        ) == 1
        assert "no store at" in capsys.readouterr().err


# -------------------------------------------------------------------- CLI paths
class TestCli:
    def test_sweep_against_coordinator(self, tmp_path, capsys):
        coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
        address = coord.start("127.0.0.1:0")
        spec = tmp_path / "matrix.json"
        spec.write_text(json.dumps(GA_SWEEP))
        assert repro_main(["sweep", "--spec", str(spec), "--store", address]) == 0
        coord.stop()
        assert len(_rows(str(tmp_path / "fabric" / "results.jsonl"))) == 2
        assert "2 cells" in capsys.readouterr().out

    def test_sweep_bad_store_endpoint_is_a_clean_error(self, tmp_path):
        spec = tmp_path / "matrix.json"
        spec.write_text(json.dumps(GA_SWEEP))
        with pytest.raises(SystemExit, match="bad port"):
            repro_main(["sweep", "--spec", str(spec), "--store", "localhost:70b7"])

    def test_sweep_unreachable_coordinator_exit_code(self, tmp_path, capsys):
        spec = tmp_path / "matrix.json"
        spec.write_text(json.dumps(GA_SWEEP))
        port = _free_port()
        code = repro_main(
            ["sweep", "--spec", str(spec), "--store", f"127.0.0.1:{port}"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "repro serve" in err and "offline fallback" in err

    def test_serve_bad_bind_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="bad port"):
            repro_main(["serve", str(tmp_path / "store"), "--bind", "0.0.0.0:http"])


def test_poison_workload_quarantines_through_public_sweep(tmp_path):
    """End-to-end: a cell that raises on every host quarantines with the global
    budget while its sibling completes, through the public Session API only."""
    register_workload("fabric-poison", lambda: (_ for _ in ()).throw(
        RuntimeError("poisoned workload factory")))
    matrix = {
        "base": {"kind": "ga", "wafer": "tiny", "workload": "tiny",
                 "population": 4, "generations": 1},
        "grid": {"workload": ["fabric-poison", "tiny"]},
    }
    coord = FabricCoordinator(str(tmp_path / "fabric"), lease_s=5.0)
    address = coord.start("127.0.0.1:0")
    with Session(store=address) as session:
        runs = list(session.sweep(
            SweepSpec.from_dict(matrix), retry=RetryPolicy(max_attempts=2)))
    coord.stop()
    by_status = {run.status: run for run in runs}
    assert set(by_status) == {"ok", "failed"}
    assert by_status["failed"].attempts == 2
    assert "poisoned workload factory" in by_status["failed"].error
    rows = _rows(str(tmp_path / "fabric" / "results.jsonl"))
    statuses = {json.loads(row)["status"] for row in rows.values()}
    assert statuses == {"ok", "failed"}
