"""Session runtime API: lifecycle, legacy-path equivalence, deprecation shims.

The contract under test (ISSUE 4 acceptance criteria):

* ``Session`` owns the pool and the cache; context-manager exit joins the pool and
  flushes the store.
* ``Session.run(spec)`` is bit-identical to the legacy direct-call path for all four
  search loops (GA, CentralScheduler, DieGranularityDse, Watos), serial or pooled.
* Legacy ``cache=`` / ``parallel=`` kwargs still work but emit a
  ``DeprecationWarning`` exactly once per call site.
* An ambient session (``with Session(...):`` or ``default_session()``) supplies its
  pool and cache to bare loop calls, so nested sweeps share workers.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import (
    ExperimentSpec,
    Session,
    close_default_session,
    default_session,
    tiny_wafer,
    tiny_workload,
)
from repro.core import runtime
from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import EvaluationCache
from repro.core.evaluator import Evaluator
from repro.core.framework import Watos
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.hardware_dse import DieGranularityDse


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Each test starts with no ambient/default session and fresh warn-once state."""
    close_default_session()
    yield
    close_default_session()


@pytest.fixture
def wafer():
    return tiny_wafer()


@pytest.fixture
def workload():
    return tiny_workload()


GA_SPEC = dict(kind="ga", wafer="tiny", workload="tiny", population=6, generations=4)


# ---------------------------------------------------------------------- lifecycle
class TestLifecycle:
    def test_exit_joins_pool_and_flushes_store(self, tmp_path):
        path = str(tmp_path / "session.jsonl")
        with Session(workers=2, store=path) as session:
            run = session.run(ExperimentSpec(kind="scheduler", wafer="tiny", workload="tiny"))
            assert run
            pool = session.pool
            assert pool is not None
            procs = list(pool._procs)
            assert procs and all(p.is_alive() for p in procs)
        assert session.closed
        assert pool._closed
        assert all(not p.is_alive() for p in procs)
        # The store was flushed on exit: a new cache warm-starts from it.
        warm = EvaluationCache(store=path)
        assert warm.stats.loaded > 0
        warm.close()

    def test_adopted_cache_is_flushed_but_not_closed(self, tmp_path):
        path = str(tmp_path / "adopted.sqlite")
        cache = EvaluationCache(store=path)
        with Session(cache=cache) as session:
            session.run(ExperimentSpec(kind="scheduler", wafer="tiny", workload="tiny"))
        assert cache.stats.flushed > 0
        cache.put("post-close", 1)  # store still usable: the caller owns it
        cache.close()

    def test_serial_session_has_no_pool(self):
        with Session() as session:
            assert session.pool is None
            assert session.parallel is None

    def test_closed_session_refuses_to_run(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError):
            session.run(ExperimentSpec(kind="scheduler", wafer="tiny", workload="tiny"))

    def test_compact_on_exit(self, tmp_path):
        path = str(tmp_path / "compact.jsonl")
        with Session(store=path) as session:
            session.run(ExperimentSpec(kind="scheduler", wafer="tiny", workload="tiny"))
            session.cache.put("extra", 1)
        # Re-open, re-price the same key (appends a duplicate row), compact on exit.
        with open(path, "r", encoding="utf-8") as handle:
            rows_before = sum(1 for line in handle if line.strip()) - 1
        with Session(store=path, compact_on_exit=True) as session:
            session.cache.put("extra", 2)
        with open(path, "r", encoding="utf-8") as handle:
            rows_after = sum(1 for line in handle if line.strip()) - 1
        assert rows_after == rows_before  # duplicate row folded away
        warm = EvaluationCache(store=path)
        assert warm.peek("extra") == 2
        warm.close()

    def test_sessions_cannot_be_pickled(self):
        import pickle

        with pytest.raises(TypeError):
            pickle.dumps(Session())


# ------------------------------------------------------------------- equivalence
class TestRunEquivalence:
    """Session.run(spec) must reproduce the legacy direct-call path bit for bit."""

    def test_scheduler_kind(self, wafer, workload):
        legacy = CentralScheduler(wafer).explore(workload)
        with Session() as session:
            run = session.run(ExperimentSpec(kind="scheduler", wafer="tiny", workload="tiny"))
        assert [r.result for r in run.details] == [r.result for r in legacy]
        best = max((r for r in legacy if not r.result.oom), key=lambda r: r.throughput)
        assert run.plan == best.plan
        assert run.result == best.result

    def test_ga_kind(self, wafer, workload):
        evaluator = Evaluator(wafer)
        seed = CentralScheduler(wafer, evaluator=evaluator).best(workload)
        legacy = GeneticOptimizer(
            evaluator, workload, GAConfig(population_size=6, generations=4)
        ).optimize(seed.plan)
        with Session() as session:
            run = session.run(ExperimentSpec(**GA_SPEC))
        assert run.metrics["best_fitness"] == legacy.best_fitness
        assert run.details.history == legacy.history
        assert run.plan == legacy.best_plan
        assert run.result == legacy.best_result

    def test_ga_kind_pooled_matches_serial(self):
        with Session() as session:
            serial = session.run(ExperimentSpec(**GA_SPEC))
        with Session(workers=2) as session:
            pooled = session.run(ExperimentSpec(**GA_SPEC))
        assert pooled.metrics["best_fitness"] == serial.metrics["best_fitness"]
        assert pooled.details.history == serial.details.history
        assert pooled.plan == serial.plan

    def test_dse_kind(self, workload):
        legacy = DieGranularityDse(
            workload, areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,)
        ).sweep(max_tp=16)
        with Session() as session:
            run = session.run(
                ExperimentSpec(
                    kind="dse", workload="tiny",
                    areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,), max_tp=16,
                )
            )
        assert run.details == legacy
        assert run.metrics["points"] == len(legacy)

    def test_watos_kind(self, wafer, workload):
        config = GAConfig(population_size=4, generations=2, seed=3)
        legacy = Watos(candidates=[wafer], ga_config=config).explore([workload])
        with Session() as session:
            run = session.run(
                ExperimentSpec(
                    kind="watos", wafers=["tiny"], workloads=["tiny"],
                    population=4, generations=2, seed=3,
                )
            )
        assert [o.result for o in run.details.outcomes] == [
            o.result for o in legacy.outcomes
        ]
        assert run.metrics["best_wafer"] == legacy.best_wafer()

    def test_watos_nest_inner_matches_points(self):
        spec = dict(
            kind="watos", wafers=["tiny"], workloads=["tiny"],
            population=4, generations=2, seed=3,
        )
        with Session() as session:
            serial = session.run(ExperimentSpec(**spec))
        with Session(workers=2) as session:
            outer = session.run(ExperimentSpec(**spec, nest="points"))
        with Session(workers=2) as session:
            inner = session.run(ExperimentSpec(**spec, nest="inner"))
        # A pool-less session honours nest="inner" too: the spec's integer worker
        # hint is promoted to one pool lent to the nested loops, not ignored.
        with Session() as session:
            inner_int = session.run(ExperimentSpec(**spec, nest="inner", workers=2))
        for run in (outer, inner, inner_int):
            assert [o.result for o in run.details.outcomes] == [
                o.result for o in serial.details.outcomes
            ]

    def test_sweep_shares_one_cache(self):
        with Session() as session:
            first = session.run(ExperimentSpec(**GA_SPEC))
            misses_after_first = session.cache.stats.misses
            second = session.run(ExperimentSpec(**GA_SPEC))
        assert second.metrics["best_fitness"] == first.metrics["best_fitness"]
        # The second run re-priced nothing: every plan was already in the cache.
        assert session.cache.stats.misses == misses_after_first


# ------------------------------------------------------------------- deprecation
class TestDeprecationShims:
    def test_legacy_kwargs_warn_exactly_once(self, wafer, workload):
        runtime.reset_legacy_warnings()
        with pytest.warns(DeprecationWarning, match="CentralScheduler"):
            records = CentralScheduler(wafer, cache=EvaluationCache()).explore(workload)
        assert records
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CentralScheduler(wafer, cache=EvaluationCache()).explore(workload)
        assert [w for w in caught if w.category is DeprecationWarning] == []

    def test_legacy_parallel_kwarg_warns_and_matches(self, wafer, workload):
        runtime.reset_legacy_warnings()
        evaluator = Evaluator(wafer)
        seed = CentralScheduler(wafer, evaluator=evaluator).best(workload)
        config = GAConfig(population_size=4, generations=2)
        serial = GeneticOptimizer(evaluator, workload, config).optimize(seed.plan)
        with pytest.warns(DeprecationWarning, match="GeneticOptimizer"):
            legacy = GeneticOptimizer(
                Evaluator(wafer), workload, config
            ).optimize(seed.plan, parallel=2)
        assert legacy.history == serial.history

    def test_session_plus_legacy_kwarg_is_an_error(self, wafer, workload):
        with Session() as session:
            with pytest.raises(ValueError):
                CentralScheduler(wafer).explore(workload, parallel=2, session=session)

    def test_legacy_watos_cache_kwarg_still_works(self, wafer, workload):
        runtime.reset_legacy_warnings()
        cache = EvaluationCache()
        with pytest.warns(DeprecationWarning, match="Watos"):
            watos = Watos(
                candidates=[wafer], use_ga=False, cache=cache,
            )
        watos.explore([workload])
        assert watos.cache is cache
        assert cache.stats.misses > 0


# ---------------------------------------------------------------- ambient/default
class TestAmbientSession:
    def test_with_block_supplies_cache_to_bare_calls(self, wafer, workload):
        baseline = CentralScheduler(wafer).explore(workload)
        with Session() as session:
            ambient = CentralScheduler(wafer).explore(workload)
            assert session.cache.stats.misses > 0  # scheduler adopted the cache
            again = CentralScheduler(wafer).explore(workload)
            assert session.cache.stats.hit_rate > 0  # second bare call started warm
        assert [r.result for r in ambient] == [r.result for r in baseline]
        assert [r.result for r in again] == [r.result for r in baseline]

    def test_with_block_supplies_pool_to_bare_calls(self, wafer, workload):
        serial = CentralScheduler(wafer).explore(workload)
        with Session(workers=2) as session:
            pooled = CentralScheduler(wafer).explore(workload)
            assert session.pool is not None and session.pool._started
        assert [r.result for r in pooled] == [r.result for r in serial]

    def test_default_session_is_a_singleton_shared_by_bare_calls(self, wafer, workload):
        session = default_session(workers=2)
        assert default_session() is session
        evaluator = Evaluator(wafer, cache=session.cache)
        seed = CentralScheduler(wafer, evaluator=evaluator).best(workload)
        config = GAConfig(population_size=4, generations=2)
        outcome = GeneticOptimizer(evaluator, workload, config).optimize(seed.plan)
        # The bare optimize() above ran on the default session's pool.
        assert session.pool is not None and session.pool._started
        serial = GeneticOptimizer(
            Evaluator(wafer), workload, config
        ).optimize(seed.plan, session=runtime.SessionHandle())
        assert outcome.history == serial.history
        close_default_session()
        assert default_session() is not session  # a fresh one after closing

    def test_exited_session_is_no_longer_ambient(self):
        with Session() as session:
            assert runtime.current_session() is session
        assert runtime.current_session() is None


# ---------------------------------------------------------------------- spec codec
class TestExperimentSpec:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(**GA_SPEC, name="demo")
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.kind == "ga" and clone.population == 6

    def test_load_single_and_list(self, tmp_path):
        import json

        single = tmp_path / "one.json"
        single.write_text(json.dumps({"kind": "scheduler", "wafer": "tiny", "workload": "tiny"}))
        many = tmp_path / "many.json"
        many.write_text(json.dumps([{"kind": "ga", "wafer": "tiny", "workload": "tiny"},
                                    {"kind": "dse", "workload": "tiny"}]))
        assert [s.kind for s in ExperimentSpec.load(single)] == ["scheduler"]
        assert [s.kind for s in ExperimentSpec.load(many)] == ["ga", "dse"]

    def test_unknown_kind_and_names_raise(self):
        with pytest.raises(ValueError):
            ExperimentSpec(kind="annealing")
        with Session() as session:
            with pytest.raises(KeyError):
                session.run(ExperimentSpec(kind="scheduler", wafer="nope", workload="tiny"))
            with pytest.raises(KeyError):
                session.run(ExperimentSpec(kind="scheduler", wafer="tiny", workload="nope"))

    def test_registered_names_resolve(self, wafer, workload):
        Session.register_wafer("my-wafer", wafer)
        Session.register_workload("my-load", workload)
        with Session() as session:
            run = session.run(
                ExperimentSpec(kind="scheduler", wafer="my-wafer", workload="my-load")
            )
        assert run.plan is not None
