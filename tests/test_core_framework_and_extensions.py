"""WATOS framework front-end, robustness evaluator and die-granularity hardware DSE."""

import pytest

from repro.core.central_scheduler import CentralScheduler
from repro.core.framework import Watos
from repro.core.genetic import GAConfig
from repro.core.hardware_dse import DieGranularityDse, classify_die
from repro.core.robustness import RobustnessEvaluator
from repro.workloads.workload import TrainingWorkload

from repro_testlib import make_small_wafer, make_tiny_model


class TestWatosFramework:
    @pytest.fixture(scope="class")
    def exploration(self):
        wafers = [make_small_wafer(dram_gb=2.0), make_small_wafer(dram_gb=8.0)]
        wafers[0] = wafers[0].with_die(wafers[0].die)  # distinct objects
        from dataclasses import replace
        wafers = [replace(wafers[0], name="wafer-tight"), replace(wafers[1], name="wafer-roomy")]
        model = make_tiny_model()
        workloads = [
            TrainingWorkload(model, 16, 2, 1024),
            TrainingWorkload(model, 16, 4, 1024),
        ]
        watos = Watos(candidates=wafers, use_ga=True,
                      ga_config=GAConfig(population_size=4, generations=2, seed=0))
        return watos.explore(workloads), wafers, workloads

    def test_outcomes_cover_every_pair(self, exploration):
        result, wafers, workloads = exploration
        assert len(result.outcomes) == len(wafers) * len(workloads)

    def test_exploration_records_keyed_by_wafer_and_model(self, exploration):
        result, wafers, workloads = exploration
        for wafer in wafers:
            for workload in workloads:
                assert f"{wafer.name}/{workload.model.name}" in result.exploration_records

    def test_best_wafer_is_one_of_the_candidates(self, exploration):
        result, wafers, _ = exploration
        assert result.best_wafer() in {w.name for w in wafers}

    def test_outcome_queries(self, exploration):
        result, wafers, workloads = exploration
        per_wafer = result.outcomes_for_wafer(wafers[0].name)
        assert len(per_wafer) == len(workloads)
        best = result.best_outcome(workloads[0].model.name)
        assert best is not None and best.throughput > 0

    def test_optimize_single_point(self):
        wafer = make_small_wafer()
        workload = TrainingWorkload(make_tiny_model(), 16, 2, 1024)
        watos = Watos(candidates=[wafer], use_ga=False)
        outcome = watos.optimize(wafer, workload)
        assert outcome is not None
        scheduler_best = CentralScheduler(wafer).best(workload)
        assert outcome.result.throughput == pytest.approx(
            scheduler_best.result.throughput, rel=0.01
        )

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(ValueError):
            Watos(candidates=[])

    def test_ga_refinement_never_hurts(self):
        wafer = make_small_wafer(dram_gb=1.0)
        workload = TrainingWorkload(make_tiny_model(), 32, 8, 2048)
        no_ga = Watos(candidates=[wafer], use_ga=False).optimize(wafer, workload)
        with_ga = Watos(
            candidates=[wafer], use_ga=True,
            ga_config=GAConfig(population_size=4, generations=3, seed=1),
        ).optimize(wafer, workload)
        assert with_ga.result.throughput >= no_ga.result.throughput * 0.999


class TestRobustness:
    @pytest.fixture(scope="class")
    def setup(self):
        wafer = make_small_wafer()
        workload = TrainingWorkload(make_tiny_model(), 16, 2, 1024)
        plan = CentralScheduler(wafer).best(workload).plan
        return wafer, workload, plan

    def test_zero_faults_give_equal_throughput(self, setup):
        wafer, workload, plan = setup
        point = RobustnessEvaluator(wafer, workload, plan).point()
        assert point.robust_throughput == pytest.approx(point.baseline_throughput)
        assert point.improvement == pytest.approx(1.0)

    def test_robust_mode_degrades_more_gracefully(self, setup):
        wafer, workload, plan = setup
        evaluator = RobustnessEvaluator(wafer, workload, plan, seed=3)
        point = evaluator.point(die_fault_rate=0.3)
        assert point.robust_throughput >= point.baseline_throughput

    def test_throughput_decreases_with_fault_rate(self, setup):
        wafer, workload, plan = setup
        evaluator = RobustnessEvaluator(wafer, workload, plan, seed=1)
        sweep = evaluator.sweep_die_faults([0.0, 0.4])
        assert sweep[1].robust_throughput <= sweep[0].robust_throughput

    def test_link_fault_sweep_shape(self, setup):
        wafer, workload, plan = setup
        sweep = RobustnessEvaluator(wafer, workload, plan).sweep_link_faults([0.0, 0.2, 0.4])
        assert [p.fault_rate for p in sweep] == [0.0, 0.2, 0.4]


class TestHardwareDse:
    def test_classification_boundaries(self):
        assert classify_die(399.0, 1.0) == ("small", "square")
        assert classify_die(400.0, 1.0) == ("large", "square")
        assert classify_die(300.0, 1.6) == ("small", "rectangle")

    @pytest.fixture(scope="class")
    def sweep(self):
        workload = TrainingWorkload(make_tiny_model(), 16, 2, 1024)
        dse = DieGranularityDse(workload, areas_mm2=(200.0, 500.0), aspect_ratios=(1.0, 1.8))
        return dse, dse.sweep(max_tp=4)

    def test_sweep_covers_all_design_points(self, sweep):
        _, points = sweep
        assert len(points) == 4
        categories = {p.category for p in points}
        assert "small-square" in categories and "large-rectangle" in categories

    def test_objective_normalised_to_unit_box(self, sweep):
        _, points = sweep
        assert all(0.0 <= p.throughput <= 1.0 for p in points)
        assert all(0.0 <= p.memory_capacity <= 1.0 for p in points)

    def test_small_square_beats_large_rectangle(self, sweep):
        # Fig. 25's headline: Small Square designs dominate Large Rectangle designs on
        # the memory-capacity × throughput objective.
        _, points = sweep
        by_category = {p.category: p for p in points}
        assert by_category["small-square"].objective >= by_category["large-rectangle"].objective

    def test_smaller_dies_tile_more_dies_per_wafer(self, sweep):
        dse, _ = sweep
        small = dse.build_wafer(200.0, 1.0)
        large = dse.build_wafer(500.0, 1.0)
        assert small.num_dies > large.num_dies

    def test_best_point_has_maximal_objective(self, sweep):
        dse, points = sweep
        best = dse.best_point(points)
        assert best.objective == pytest.approx(max(p.objective for p in points))

    def test_best_point_requires_data(self, sweep):
        dse, _ = sweep
        with pytest.raises(ValueError):
            dse.best_point([])
