"""Tests for the persistent worker runtime: watermarked incremental cache export
(no entry shipped twice, none missed), incremental worker carries, the read-through
sqlite mode, store compaction, and — the invariant the whole design hangs on —
serial == fresh-pool == reused-``WorkerPool`` bit-identity across all four search
loops (GA, CentralScheduler, DieGranularityDse, Watos).
"""

from __future__ import annotations

import os
import pickle
import signal
import sys
import time
from dataclasses import replace
from functools import partial
from pathlib import Path

import pytest

from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import EvaluationCache
from repro.core.evaluator import Evaluator
from repro.core.framework import Watos
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.hardware_dse import DieGranularityDse
from repro.core.parallel_map import (
    WorkerCrashError,
    WorkerPool,
    parallel_map,
    resolve_workers,
)
from repro.hardware.faults import FaultModel
from repro.workloads.workload import TrainingWorkload

from repro_testlib import make_small_wafer, make_tiny_model

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))
from bench_fig24_multiwafer_ga import run_multiwafer_ga  # noqa: E402


@pytest.fixture
def wafer():
    return make_small_wafer(dram_gb=1.0)


@pytest.fixture
def workload():
    return TrainingWorkload(
        make_tiny_model(), global_batch_size=32, micro_batch_size=8,
        sequence_length=2048,
    )


@pytest.fixture
def ga_config():
    return GAConfig(population_size=4, generations=3, seed=5)


# ------------------------------------------------------------------ watermark export
class TestWatermarkExport:
    def test_export_since_zero_ships_everything_once(self):
        cache = EvaluationCache()
        for i in range(5):
            cache.put(f"k{i}", i)
        entries, watermark = cache.export_since(0)
        assert entries == {f"k{i}": i for i in range(5)}
        again, _ = cache.export_since(watermark)
        assert again == {}

    def test_monotone_watermarks_partition_the_stream(self):
        # Interleave pricing and export: the union of increments covers every entry
        # exactly once — nothing shipped twice, nothing missed.
        cache = EvaluationCache()
        shipped = {}
        watermark = 0
        for round_index in range(4):
            for i in range(3):
                cache.put(f"k{round_index}:{i}", (round_index, i))
            entries, watermark = cache.export_since(watermark)
            assert not set(entries) & set(shipped)
            shipped.update(entries)
        assert shipped == cache.export()

    def test_repriced_key_ships_latest_value_once(self):
        cache = EvaluationCache()
        cache.put("k", "old")
        cache.put("k", "new")
        entries, watermark = cache.export_since(0)
        assert entries == {"k": "new"}
        # Already-shipped key is not re-shipped until it is priced again.
        assert cache.export_since(watermark)[0] == {}
        cache.put("k", "newer")
        assert cache.export_since(watermark)[0] == {"k": "newer"}

    def test_evicted_entries_are_not_shipped(self):
        cache = EvaluationCache(max_entries=2)
        for i in range(5):
            cache.put(f"k{i}", i)
        entries, _ = cache.export_since(0)
        assert entries == {"k3": 3, "k4": 4}

    def test_seeded_entries_are_exportable(self):
        cache = EvaluationCache()
        cache.seed({"warm": 1})
        assert cache.export_since(0)[0] == {"warm": 1}

    def test_clear_keeps_sequence_monotonic(self):
        cache = EvaluationCache()
        cache.put("a", 1)
        _, watermark = cache.export_since(0)
        cache.clear()
        cache.put("b", 2)
        entries, new_watermark = cache.export_since(watermark)
        assert entries == {"b": 2}
        assert new_watermark > watermark


# ------------------------------------------------------------------ incremental carry
class TestTakeCarry:
    def test_delta_ships_once(self):
        shard = EvaluationCache(max_entries=None)
        shard.seed({"warm": 0})
        shard.put("fresh", 1)
        carry = shard.take_carry()
        assert carry["delta"] == {"fresh": 1}
        assert shard.take_carry()["delta"] == {}
        shard.put("later", 2)
        assert shard.take_carry()["delta"] == {"later": 2}

    def test_stat_increments_sum_to_totals(self):
        shard = EvaluationCache()
        increments = []
        for i in range(3):
            shard.put(f"k{i}", i)
            shard.get(f"k{i}")
            shard.get("absent")
            increments.append(shard.take_carry()["stats"])
        assert sum(inc["hits"] for inc in increments) == shard.stats.hits
        assert sum(inc["misses"] for inc in increments) == shard.stats.misses


# ------------------------------------------------------------------ read-through mode
class TestReadThrough:
    def _store_with_entries(self, tmp_path, entries):
        path = str(tmp_path / "warm.sqlite")
        writer = EvaluationCache(store=path)
        for key, value in entries.items():
            writer.put(key, value)
        writer.close()
        return path

    def test_sqlite_read_through_skips_the_load(self, tmp_path):
        path = self._store_with_entries(tmp_path, {"a": 1.5, "b": 2.5})
        cache = EvaluationCache(store=path, read_through=True)
        assert cache.read_through
        assert cache.stats.loaded == 0 and len(cache) == 0
        assert cache.get("a") == 1.5
        assert cache.stats.store_hits == 1 and cache.stats.hits == 1
        # Second lookup is resident, no further store traffic.
        assert cache.get("a") == 1.5
        assert cache.stats.store_hits == 1
        assert cache.get("missing") is None
        assert cache.stats.misses == 1
        cache.close()

    def test_read_through_adoptions_stay_out_of_sync_flows(self, tmp_path):
        path = self._store_with_entries(tmp_path, {"a": 1.0})
        cache = EvaluationCache(store=path, read_through=True)
        assert cache.get("a") == 1.0
        # Workers share the store file; adopted entries must not be re-shipped.
        assert cache.export_since(0)[0] == {}
        assert cache.delta() == {}
        cache.put("fresh", 2.0)
        assert cache.export_since(0)[0] == {"fresh": 2.0}
        cache.close()

    def test_jsonl_degrades_to_full_load(self, tmp_path):
        path = str(tmp_path / "warm.jsonl")
        writer = EvaluationCache(store=path)
        writer.put("a", 1.0)
        writer.close()
        cache = EvaluationCache(store=path, read_through=True)
        assert not cache.read_through
        assert cache.stats.loaded == 1 and cache.peek("a") == 1.0
        cache.close()


# ------------------------------------------------------------------ store compaction
class TestCompaction:
    def _rows(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            return [line for line in handle if line.strip()]

    def test_compaction_folds_duplicate_rows(self, tmp_path):
        path = str(tmp_path / "grown.jsonl")
        cache = EvaluationCache(store=path)
        for value in (1.0, 2.0, 3.0):
            cache.put("k", value)
            cache.put("stable", 7.0)
            cache.flush()
        assert len(self._rows(path)) == 1 + 6  # header + one row per flush per key
        written = cache.compact()
        assert written == 2
        assert len(self._rows(path)) == 1 + 2
        cache.close()
        reload = EvaluationCache(store=path)
        assert reload.peek("k") == 3.0 and reload.peek("stable") == 7.0
        reload.close()

    def test_compaction_eviction_keeps_newest(self, tmp_path):
        path = str(tmp_path / "big.jsonl")
        cache = EvaluationCache(store=path)
        for i in range(6):
            cache.put(f"k{i}", float(i))
        cache.flush()
        assert cache.compact(max_entries=2) == 2
        cache.close()
        reload = EvaluationCache(store=path)
        assert reload.stats.loaded == 2
        assert reload.peek("k4") == 4.0 and reload.peek("k5") == 5.0
        reload.close()

    def test_compaction_preserves_unflushed_entries(self, tmp_path):
        path = str(tmp_path / "dirty.jsonl")
        cache = EvaluationCache(store=path)
        cache.put("pending", 9.0)
        assert cache.compact() == 1  # flushes first, loses nothing
        cache.close()
        reload = EvaluationCache(store=path)
        assert reload.peek("pending") == 9.0
        reload.close()


# ------------------------------------------------------------------ pool mechanics
def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"boom on {value}")


class _UnpicklableError(Exception):
    def __init__(self):
        super().__init__("unpicklable")
        self.handle = lambda: None  # lambdas cannot be pickled


def _boom_unpicklable(value):
    raise _UnpicklableError()


def _unpicklable_result(value):
    return lambda: value


def _exit_hard(value):
    os._exit(17)


def _exit_once(token_path, value):
    try:
        fd = os.open(token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value * value
    os.close(fd)
    os._exit(17)


def _wedge(token_path, value):
    # Simulate a worker stuck in non-interruptible work: SIGTERM is shrugged off,
    # so only close()'s SIGKILL escalation can reap it.
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    with open(token_path, "w", encoding="utf-8") as handle:
        handle.write("wedged")
    while True:
        time.sleep(60)


class TestWorkerPoolMechanics:
    def test_map_preserves_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, list(range(7))) == [i * i for i in range(7)]
            # The same long-lived workers serve follow-up submissions.
            assert pool.map(_square, [9, 3]) == [81, 9]

    def test_single_item_and_empty(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, []) == []
            assert pool.map(_square, [4]) == [16]

    def test_exceptions_propagate_and_pool_survives(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.map(_boom, [1, 2, 3])
            assert pool.map(_square, [2, 3]) == [4, 9]

    def test_unpicklable_exception_does_not_hang(self):
        # Pipe sends pickle in the worker thread, so the fallback ("err", text,
        # None) path runs; a queue feeder would drop the message and hang the pool.
        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError, match="_UnpicklableError"):
                pool.map(_boom_unpicklable, [1, 2, 3])
            assert pool.map(_square, [2, 3]) == [4, 9]

    def test_unpicklable_result_does_not_hang(self):
        with WorkerPool(2) as pool:
            with pytest.raises(Exception, match="[Pp]ickle"):
                pool.map(_unpicklable_result, [1, 2, 3])
            assert pool.map(_square, [2, 3]) == [4, 9]

    def test_poison_chunk_exhausts_respawn_budget_and_pool_survives(self):
        # Every chunk kills its worker on the first task, twice in a row (the
        # dispatch plus one respawned re-dispatch): the supervisor gives up on the
        # chunks, raises, but leaves the pool whole — both deaths were concurrent,
        # so this also regresses the multi-death drain hang.
        pool = WorkerPool(2)
        try:
            with pytest.raises(WorkerCrashError, match="died mid-task"):
                pool.map(_exit_hard, [1, 2, 3])
            assert pool.crashes >= 2 and pool.respawns >= 2
            # The respawned workers serve follow-up submissions normally.
            assert pool.map(_square, [1, 2]) == [1, 4]
        finally:
            pool.close()

    def test_transient_crash_is_survived_with_complete_results(self, tmp_path):
        # A worker killed once mid-task is respawned and its chunk re-dispatched:
        # map returns complete, order-preserving results, identical to a crash-free
        # run.  The kill token makes the crash strike exactly once.
        token = tmp_path / "die-once"
        with WorkerPool(2) as pool:
            values = list(range(8))
            out = pool.map(partial(_exit_once, str(token)), values)
            assert out == [v * v for v in values]
            assert pool.crashes == 1 and pool.respawns == 1

    def test_close_reaps_wedged_worker_with_bounded_escalation(self, tmp_path):
        # A worker that ignores SIGTERM must not hang interpreter exit: close()
        # escalates join -> terminate -> kill, each bounded.
        token = tmp_path / "wedged"
        pool = WorkerPool(1)
        pool._ensure_started()
        pool._task_conns[0].send(("map", partial(_wedge, str(token)), [1], False, ""))
        deadline = time.monotonic() + 10
        while not token.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert token.exists(), "worker never reached its wedge"
        start = time.monotonic()
        pool.close(join_timeout=0.3)
        assert time.monotonic() - start < 8
        assert all(p is None or not p.is_alive() for p in pool._procs)

    def test_pool_refuses_to_pickle(self):
        with WorkerPool(1) as pool:
            with pytest.raises(TypeError):
                pickle.dumps(pool)

    def test_map_after_close_raises(self):
        pool = WorkerPool(1)
        pool.map(_square, [1, 2])
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.map(_square, [1, 2])

    def test_resolve_workers_accepts_pools(self):
        with WorkerPool(3) as pool:
            assert resolve_workers(pool) == 3

    def test_parallel_map_accepts_pools(self):
        with WorkerPool(2) as pool:
            assert parallel_map(_square, [1, 2, 3], parallel=pool) == [1, 4, 9]


# ------------------------------------------------------------ pool reuse determinism
class TestPoolReuseDeterminism:
    """Serial == fresh pool == reused pool, bit for bit, for every search loop."""

    def _ga(self, wafer, workload, ga_config, parallel=None, cache=None):
        evaluator = Evaluator(wafer, cache=cache) if cache is not None else Evaluator(wafer)
        seed_plan = CentralScheduler(wafer, evaluator=evaluator).best(workload).plan
        ga = GeneticOptimizer(evaluator, workload, ga_config)
        return ga.optimize(seed_plan, parallel=parallel)

    def test_ga_fresh_and_reused_pool_match_serial(self, wafer, workload, ga_config):
        serial = self._ga(wafer, workload, ga_config)
        with WorkerPool(2) as pool:
            fresh = self._ga(wafer, workload, ga_config, parallel=pool)
            reused = self._ga(wafer, workload, ga_config, parallel=pool)
        for outcome in (fresh, reused):
            assert outcome.best_fitness == serial.best_fitness
            assert outcome.history == serial.history
            assert outcome.best_plan == serial.best_plan
            assert outcome.best_result == serial.best_result

    def test_whole_matrix_on_one_pool_matches_serial(self, wafer, workload, ga_config):
        """One pool carries a GA, a scheduler exploration, a hardware DSE sweep, a
        multi-wafer GA and a Watos co-exploration back to back."""
        other = replace(make_small_wafer(dram_gb=2.0), name="wafer-2g")
        small = TrainingWorkload(make_tiny_model(), 16, 4, 1024)

        serial_ga = self._ga(wafer, workload, ga_config)
        serial_records = CentralScheduler(wafer).explore(workload)
        serial_sweep = DieGranularityDse(
            workload, areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,),
            cache=EvaluationCache(),
        ).sweep(max_tp=4)
        serial_rows = run_multiwafer_ga(wafer, workload, 3, ga_config, EvaluationCache())
        serial_watos = Watos(candidates=[wafer, other], ga_config=ga_config).explore(
            [small]
        )

        with WorkerPool(2) as pool:
            pool_ga = self._ga(wafer, workload, ga_config, parallel=pool)
            pool_records = CentralScheduler(wafer).explore(workload, parallel=pool)
            pool_sweep = DieGranularityDse(
                workload, areas_mm2=(300.0, 500.0), aspect_ratios=(1.0,),
                cache=EvaluationCache(),
            ).sweep(max_tp=4, parallel=pool)
            pool_rows = run_multiwafer_ga(
                wafer, workload, 3, ga_config, EvaluationCache(), parallel=pool
            )
            pool_watos = Watos(candidates=[wafer, other], ga_config=ga_config).explore(
                [small], parallel=pool
            )

        assert pool_ga.best_fitness == serial_ga.best_fitness
        assert pool_ga.history == serial_ga.history
        assert pool_records == serial_records
        assert pool_sweep == serial_sweep
        assert pool_rows == serial_rows
        assert pool_watos.outcomes == serial_watos.outcomes
        assert pool_watos.exploration_records == serial_watos.exploration_records

    def test_in_place_fault_mutation_reaches_pool_workers(self, wafer, workload):
        # Fault models are mutated in place (robustness study); the worker-resident
        # evaluator twin must be replaced, not reused, once the hardware changed —
        # a stale twin would cache pre-fault results under post-fault fingerprints.
        faults = FaultModel()
        evaluator = Evaluator(wafer, faults=faults)
        scheduler = CentralScheduler(wafer, evaluator=evaluator)
        with WorkerPool(2) as pool:
            healthy = scheduler.explore(workload, parallel=pool)
            faults.add_die_fault((0, 0), 0.2)
            degraded = scheduler.explore(workload, parallel=pool)

        reference_faults = FaultModel()
        reference_faults.add_die_fault((0, 0), 0.2)
        serial = CentralScheduler(
            wafer, evaluator=Evaluator(wafer, faults=reference_faults)
        ).explore(workload)
        assert [r.result for r in degraded] == [r.result for r in serial]
        assert [r.result for r in degraded] != [r.result for r in healthy]

    def test_watos_explore_on_pool_matches_serial(self, wafer, ga_config):
        workloads = [TrainingWorkload(make_tiny_model(), 16, 4, 1024)]
        serial = Watos(candidates=[wafer], ga_config=ga_config).explore(workloads)
        with WorkerPool(2) as pool:
            pooled = Watos(candidates=[wafer], ga_config=ga_config).explore(
                workloads, parallel=pool
            )
        assert pooled.outcomes == serial.outcomes
        assert pooled.exploration_records == serial.exploration_records


# ------------------------------------------------------------ delta-only sync counter
class TestDeltaOnlySync:
    @pytest.mark.perf_smoke
    def test_fanout_ships_only_fresh_entries(self, wafer, ga_config):
        """Acceptance guard: the per-submission sync ships entries priced since each
        worker's watermark — never a full snapshot per fan-out point."""
        workloads = [
            TrainingWorkload(make_tiny_model(), 16, 4, 1024),
            TrainingWorkload(make_tiny_model(), 32, 8, 2048),
        ]
        watos = Watos(candidates=[wafer], ga_config=ga_config)
        with WorkerPool(2) as pool:
            watos.explore(workloads, parallel=pool)
            entries_after_first = len(watos.cache)
            shipped_first = watos.cache.stats.shipped
            # First pass: shards start empty, so only cross-worker deltas ship.
            assert shipped_first <= entries_after_first

            watos.explore(workloads, parallel=pool)
            shipped_second = watos.cache.stats.shipped
            # Second pass re-prices nothing, so each worker receives at most the
            # other workers' first-pass entries — bounded by the cache size, far
            # below points × snapshot, and nothing the worker itself priced.
            assert shipped_second - shipped_first <= entries_after_first

            watos.explore(workloads, parallel=pool)
            # Watermarks are caught up: a third pass ships nothing at all.
            assert watos.cache.stats.shipped == shipped_second

    @pytest.mark.perf_smoke
    def test_warm_ga_rerun_ships_nothing(self, wafer, workload, ga_config):
        cache = EvaluationCache()
        evaluator = Evaluator(wafer, cache=cache)
        seed_plan = CentralScheduler(wafer, evaluator=evaluator).best(workload).plan
        with WorkerPool(2) as pool:
            GeneticOptimizer(evaluator, workload, ga_config).optimize(
                seed_plan, parallel=pool
            )
            shipped_cold = cache.stats.shipped
            # Every generation ships only that generation's freshly priced plans.
            assert 0 < shipped_cold <= evaluator.raw_evaluations * pool.workers
            GeneticOptimizer(evaluator, workload, ga_config).optimize(
                seed_plan, parallel=pool
            )
        assert cache.stats.shipped == shipped_cold
