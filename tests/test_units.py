"""Unit-constant and conversion helpers."""

import pytest

from repro import units


def test_binary_sizes_are_powers_of_1024():
    assert units.KB == 1024
    assert units.MB == 1024 ** 2
    assert units.GB == 1024 ** 3
    assert units.TB == 1024 ** 4


def test_tflops_converts_to_flop_per_second():
    assert units.tflops(1.0) == 1e12
    assert units.tflops(2.04) == pytest.approx(2.04e12)


def test_bandwidth_conversions_use_decimal_prefixes():
    assert units.gbps(1.0) == 1e9
    assert units.tbps(1.5) == 1.5e12


def test_gib_and_mib_are_binary():
    assert units.gib(1.0) == 1024 ** 3
    assert units.mib(2.0) == 2 * 1024 ** 2


def test_adam_state_bytes_matches_mixed_precision_layout():
    # FP32 momentum + variance + master copy.
    assert units.ADAM_STATE_BYTES_PER_PARAM == 12


def test_precision_byte_widths():
    assert units.FP16_BYTES == 2
    assert units.FP32_BYTES == 4
