#!/usr/bin/env python3
"""Fault-tolerant training: evaluate a WATOS plan under injected link and die faults.

Reproduces the §VI-D scenario interactively: the robust scheduler (fault localisation +
link-quality-aware scheduling + adaptive rerouting) degrades gracefully, while a static
plan collapses once dies start failing.

Run with::

    python examples/fault_tolerant_wafer.py
"""

from repro import wafer_config3
from repro.api import ExperimentSpec, Session, resolve_workload
from repro.core.robustness import RobustnessEvaluator


def main() -> None:
    wafer = wafer_config3()
    workload_spec = {
        "model": "llama2-30b", "global_batch_size": 128, "micro_batch_size": 4,
        "sequence_length": 4096,
    }
    # The plan under test comes from the central scheduler, run through the unified
    # Session entry point (same search as `python -m repro run --kind scheduler`).
    with Session() as session:
        plan = session.run(
            ExperimentSpec(kind="scheduler", wafer="config3", workload=workload_spec)
        ).plan
    workload = resolve_workload(workload_spec)
    evaluator = RobustnessEvaluator(wafer, workload, plan, seed=42)

    print(f"plan under test: {plan.label()}\n")
    print("link-fault sweep (throughput normalised to fault-free):")
    baseline = evaluator.point().robust_throughput
    for rate in (0.0, 0.15, 0.3, 0.45, 0.6):
        point = evaluator.point(link_fault_rate=rate)
        print(f"  rate={rate:4.2f}  robust={point.robust_throughput / baseline:5.2f}  "
              f"static={point.baseline_throughput / baseline:5.2f}")

    print("\ndie-fault sweep (throughput normalised to fault-free):")
    for rate in (0.0, 0.2, 0.4, 0.6):
        point = evaluator.point(die_fault_rate=rate)
        print(f"  rate={rate:4.2f}  robust={point.robust_throughput / baseline:5.2f}  "
              f"static={point.baseline_throughput / baseline:5.2f}")


if __name__ == "__main__":
    main()
