#!/usr/bin/env python3
"""Quickstart: find the best WATOS training strategy for Llama-2 30B on wafer Config 3.

Everything runs through one :class:`repro.api.Session` — the object that owns the
worker pool and the shared evaluation cache — and declarative
:class:`repro.api.ExperimentSpec` descriptions of what to run.  The same specs work
from the shell::

    python examples/quickstart.py
    python -m repro run --kind scheduler --wafer config3 --workload llama2-30b
"""

from repro.api import ExperimentSpec, Session

WORKLOAD = {
    "model": "llama2-30b",
    "global_batch_size": 128,
    "micro_batch_size": 4,
    "sequence_length": 4096,
}


def main() -> None:
    with Session() as session:
        # 1. WATOS central scheduler: search the (TP, PP, collective) space, applying
        #    GCMR recomputation and checkpoint balancing whenever memory gets tight.
        spec = ExperimentSpec(kind="scheduler", wafer="config3", workload=WORKLOAD)
        run = session.run(spec)
        best = run.result
        print(f"WATOS best plan: {run.plan.label()}")
        print(f"  throughput      : {best.throughput / 1e12:.0f} TFLOPS")
        print(f"  iteration time  : {best.iteration_time:.2f} s")
        print(f"  recompute ratio : {best.recompute_ratio:.2%}")
        print(f"  bubble fraction : {best.bubble_fraction:.2%}")
        print(f"  per-stage memory (GB): "
              f"{[round(m / 1e9, 1) for m in best.stage_memory_bytes]}")
        print(f"  ({run.metrics['records']} candidates priced in {run.seconds:.1f}s)")

        # 2. Refine the plan with the genetic optimizer (§IV-D).  The session's
        #    cache is already warm from step 1, so the GA only prices new mutants.
        ga_spec = ExperimentSpec(
            kind="ga", wafer="config3", workload=WORKLOAD,
            population=8, generations=5,
        )
        ga_run = session.run(ga_spec)
        print(f"\nGA-refined plan: {ga_run.plan.label()}")
        print(f"  throughput      : {ga_run.throughput / 1e12:.0f} TFLOPS")
        print(f"  best fitness    : {ga_run.metrics['best_fitness']:.4f}")
        print(f"  cache hit rate  : {ga_run.cache_stats['hit_rate']:.1%}")

    # 3. The spec is plain data — dump it next to your results to make the run
    #    reproducible from the shell: python -m repro run --spec quickstart.json
    print(f"\nspec as JSON: {ga_spec.to_dict()}")


if __name__ == "__main__":
    main()
