#!/usr/bin/env python3
"""Quickstart: find the best WATOS training strategy for Llama-2 30B on wafer Config 3.

Run with::

    python examples/quickstart.py
"""

from repro import Evaluator, ParallelismConfig, TrainingWorkload, get_model, wafer_config3
from repro.core.central_scheduler import CentralScheduler
from repro.core.plan import RecomputeConfig, TrainingPlan


def main() -> None:
    # 1. Pick a wafer configuration (Table II Config 3, the paper's optimum) and a model.
    wafer = wafer_config3()
    model = get_model("llama2-30b")
    workload = TrainingWorkload(
        model, global_batch_size=128, micro_batch_size=4, sequence_length=4096
    )
    print("wafer:", wafer.describe())
    print("workload:", workload.describe())

    # 2. Price a hand-written plan: TP=8, PP=7, no recomputation.
    evaluator = Evaluator(wafer)
    manual = TrainingPlan(
        parallelism=ParallelismConfig(dp=1, tp=8, pp=7),
        tp_shape=(2, 4),
        recompute=RecomputeConfig.none(7),
    )
    manual_result = evaluator.evaluate(workload, manual)
    print(f"\nmanual plan {manual.parallelism.label()}: "
          f"{manual_result.throughput / 1e12:.0f} TFLOPS, "
          f"iteration {manual_result.iteration_time:.2f}s")

    # 3. Let WATOS's central scheduler search the (TP, PP, collective) space, applying
    #    GCMR recomputation and checkpoint balancing whenever memory gets tight.
    scheduler = CentralScheduler(wafer)
    best = scheduler.best(workload)
    print(f"\nWATOS best plan: {best.plan.label()}")
    print(f"  throughput      : {best.result.throughput / 1e12:.0f} TFLOPS")
    print(f"  iteration time  : {best.result.iteration_time:.2f} s")
    print(f"  recompute ratio : {best.result.recompute_ratio:.2%}")
    print(f"  bubble fraction : {best.result.bubble_fraction:.2%}")
    print(f"  per-stage memory (GB): "
          f"{[round(m / 1e9, 1) for m in best.result.stage_memory_bytes]}")


if __name__ == "__main__":
    main()
