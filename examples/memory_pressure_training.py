#!/usr/bin/env python3
"""Memory-pressure scenario: train GPT-175B with a heavy micro-batch on Config 3.

Naive full checkpointing goes out of memory; the example shows how the GCMR
recomputation scheduler, the Sender/Helper pairing and the location-aware placement /
DRAM allocation together make the configuration trainable, and how much better they do
than naive full recomputation (the MG-wafer fallback).

Run with::

    python examples/memory_pressure_training.py
"""

from repro import Evaluator, ParallelismConfig, TrainingWorkload, get_model, wafer_config3
from repro.api import Session
from repro.baselines.wafer_strategies import megatron_wafer_plan
from repro.core.central_scheduler import CentralScheduler
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.core.recomputation import GcmrScheduler
from repro.parallelism.partition import best_mesh_shape


def main() -> None:
    wafer = wafer_config3()
    workload = TrainingWorkload(
        get_model("gpt-175b"), global_batch_size=64, micro_batch_size=8,
        sequence_length=2048,
    )
    # One session for the whole walkthrough: every pricing below shares its
    # evaluation cache (the ambient-session form of the unified runtime API).
    session = Session()
    evaluator = Evaluator(wafer, cache=session.cache)
    tp, pp = 4, 14
    shape = best_mesh_shape(tp, wafer.dies_x, wafer.dies_y)

    # 1. Naive plan: keep every checkpoint.  The early pipeline stages overflow.
    naive = TrainingPlan(
        parallelism=ParallelismConfig(dp=1, tp=tp, pp=pp), tp_shape=shape,
        recompute=RecomputeConfig.none(pp),
    )
    naive_result = evaluator.evaluate(workload, naive)
    print(f"naive full checkpointing  : {'OOM' if naive_result.oom else 'fits'}")

    # 2. GCMR: decide per stage what to recompute and who balances whose checkpoints.
    gcmr = GcmrScheduler(wafer).schedule(workload, tp, pp)
    print(f"GCMR feasible             : {gcmr.feasible}")
    print(f"  senders (overflowing)   : {list(gcmr.senders)}")
    print(f"  helpers (spare DRAM)    : {list(gcmr.helpers)}")
    print(f"  balanced bytes          : {gcmr.total_balanced_bytes / 1e9:.1f} GB")

    # 3. Full WATOS plan (placement + DRAM allocation + evaluation); the scheduler
    #    adopts the session's shared cache.
    plan = CentralScheduler(wafer, session=session).build_plan(workload, tp, pp)
    watos_result = evaluator.evaluate(workload, plan)
    print(f"\nWATOS plan ({plan.parallelism.label()}):")
    print(f"  throughput       : {watos_result.throughput / 1e12:.0f} TFLOPS")
    print(f"  recompute ratio  : {watos_result.recompute_ratio:.2%}")
    print(f"  stage memory (GB): {[round(m / 1e9) for m in watos_result.stage_memory_bytes]}")

    # 4. Compare with Megatron's strategy transplanted onto the wafer.
    _, mg_result = megatron_wafer_plan(wafer, workload)
    if mg_result is not None:
        print(f"\nMG-wafer baseline: {mg_result.throughput / 1e12:.0f} TFLOPS "
              f"(recompute ratio {mg_result.recompute_ratio:.2%})")
        print(f"WATOS speedup over MG-wafer: "
              f"{watos_result.throughput / mg_result.throughput:.2f}x")
    session.close()


if __name__ == "__main__":
    main()
