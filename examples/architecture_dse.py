#!/usr/bin/env python3
"""Architecture design-space exploration: co-explore training strategies for a mix of
LLM workloads across the Table II wafer presets.

This is the full WATOS flow of Fig. 9, with the wafer × workload matrix expressed as
*data*: one declarative `SweepSpec` grid, expanded to one `kind="ga"` cell per
(wafer, workload) point, streamed through `session.sweep` with every completed cell
written to a queryable result store.  Interrupt it and run it again — cells already
in the store are skipped, and the report is rebuilt from the store, not from memory.

Run with::

    python examples/architecture_dse.py [results.jsonl]
"""

import sys

from repro.analysis import geomean
from repro.analysis.reporting import Report
from repro.api import Session, SweepSpec, open_result_store

WORKLOADS = [
    {"model": "llama2-30b", "global_batch_size": 128, "micro_batch_size": 4,
     "sequence_length": 4096},
    {"model": "llama3-70b", "global_batch_size": 128, "micro_batch_size": 4,
     "sequence_length": 4096},
    {"model": "gpt-175b", "global_batch_size": 64, "micro_batch_size": 4,
     "sequence_length": 2048},
]


def main() -> None:
    # The matrix is one grid: candidate architectures (three Table II presets — an
    # enumerator could be used instead) × the workload mix, every cell a scheduler
    # seed + GA refinement.  The session owns the shared evaluation cache each cell
    # prices against; add Session(workers=4) to fan the search loops out.
    sweep = SweepSpec(
        name="arch-dse",
        base={"kind": "ga", "population": 8, "generations": 6, "seed": 0},
        grid={
            "wafer": ["config2", "config3", "config4"],
            "workload": WORKLOADS,
        },
    )
    results_path = sys.argv[1] if len(sys.argv) > 1 else "arch_dse_results.jsonl"
    with Session(results=results_path) as session:
        for run in session.sweep(sweep):
            print(f"  done: {run.summary()}")

    # The report reads the store — a resumed run reports the whole matrix even
    # though it only priced the missing cells.
    with open_result_store(results_path) as store:
        records = store.load()

    report = Report("WATOS architecture / training-strategy co-exploration")
    rows = {}
    plans = []
    throughput_by_wafer = {}
    for cell in sweep.expand():
        result = records[cell.cell_id]["result"]
        spec = records[cell.cell_id]["spec"]
        key = f"{spec['wafer']} / {spec['workload']['model']}"
        metrics = result["metrics"]
        rows[key] = {
            "throughput_tflops": metrics.get("throughput", 0.0) / 1e12,
            "seed_throughput_tflops": metrics.get("seed_throughput", 0.0) / 1e12,
        }
        plans.append(f"{key}: {result['plan'] or 'infeasible'}")
        throughput_by_wafer.setdefault(spec["wafer"], []).append(
            metrics.get("throughput", 0.0)
        )

    best_wafer = max(throughput_by_wafer, key=lambda w: geomean(throughput_by_wafer[w]))
    report.add_table("best strategy per (wafer, workload)", rows)
    report.add_text("best plan per point:\n  " + "\n  ".join(plans))
    report.add_text(f"best wafer across the workload mix: {best_wafer}")
    report.add_text(f"result store: {results_path} (try `python -m repro results "
                    f"export {results_path} --csv -`)")
    print(report.render())


if __name__ == "__main__":
    main()
