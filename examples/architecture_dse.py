#!/usr/bin/env python3
"""Architecture design-space exploration: enumerate wafer configurations under the area
constraint and co-explore training strategies for a mix of LLM workloads.

This is the full WATOS flow of Fig. 9: Enumerator → co-exploration engine → reports.

Run with::

    python examples/architecture_dse.py
"""

from repro import TrainingWorkload, get_model
from repro.analysis.reporting import Report
from repro.core.framework import Watos
from repro.core.genetic import GAConfig
from repro.hardware.configs import wafer_config2, wafer_config3, wafer_config4


def main() -> None:
    # Candidate architectures: three of the Table II presets (an enumerator could be
    # used instead — see repro.hardware.enumerator.ArchitectureEnumerator).
    candidates = [wafer_config2(), wafer_config3(), wafer_config4()]

    workloads = [
        TrainingWorkload(get_model("llama2-30b"), 128, 4, 4096),
        TrainingWorkload(get_model("llama3-70b"), 128, 4, 4096),
        TrainingWorkload(get_model("gpt-175b"), 64, 4, 2048),
    ]

    watos = Watos(
        candidates=candidates,
        use_ga=True,
        ga_config=GAConfig(population_size=8, generations=6, seed=0),
    )
    result = watos.explore(workloads)

    report = Report("WATOS architecture / training-strategy co-exploration")
    rows = {}
    for outcome in result.outcomes:
        key = f"{outcome.wafer.name} / {outcome.workload.model.name}"
        rows[key] = {
            "throughput_tflops": outcome.result.throughput / 1e12,
            "tp": outcome.plan.parallelism.tp,
            "pp": outcome.plan.parallelism.pp,
            "recompute_ratio": outcome.result.recompute_ratio,
        }
    report.add_table("best strategy per (wafer, workload)", rows)
    report.add_text(f"best wafer across the workload mix: {result.best_wafer()}")
    print(report.render())


if __name__ == "__main__":
    main()
