#!/usr/bin/env python3
"""Architecture design-space exploration: enumerate wafer configurations under the area
constraint and co-explore training strategies for a mix of LLM workloads.

This is the full WATOS flow of Fig. 9: Enumerator → co-exploration engine → reports,
driven through the unified Session runtime (one ExperimentSpec, one `session.run`).

Run with::

    python examples/architecture_dse.py
"""

from repro.analysis.reporting import Report
from repro.api import ExperimentSpec, Session


def main() -> None:
    # One declarative spec: candidate architectures (three Table II presets — an
    # enumerator could be used instead), the workload mix, and the GA knobs.  The
    # session owns the shared evaluation cache every (wafer, workload) point prices
    # against; add Session(workers=4) to fan the points out over a persistent pool.
    spec = ExperimentSpec(
        kind="watos",
        wafers=["config2", "config3", "config4"],
        workloads=[
            {"model": "llama2-30b", "global_batch_size": 128, "micro_batch_size": 4,
             "sequence_length": 4096},
            {"model": "llama3-70b", "global_batch_size": 128, "micro_batch_size": 4,
             "sequence_length": 4096},
            {"model": "gpt-175b", "global_batch_size": 64, "micro_batch_size": 4,
             "sequence_length": 2048},
        ],
        population=8, generations=6, seed=0,
    )
    with Session() as session:
        run = session.run(spec)
    result = run.details  # the full WatosResult

    report = Report("WATOS architecture / training-strategy co-exploration")
    rows = {}
    for outcome in result.outcomes:
        key = f"{outcome.wafer.name} / {outcome.workload.model.name}"
        rows[key] = {
            "throughput_tflops": outcome.result.throughput / 1e12,
            "tp": outcome.plan.parallelism.tp,
            "pp": outcome.plan.parallelism.pp,
            "recompute_ratio": outcome.result.recompute_ratio,
        }
    report.add_table("best strategy per (wafer, workload)", rows)
    report.add_text(f"best wafer across the workload mix: {result.best_wafer()}")
    print(report.render())


if __name__ == "__main__":
    main()
