#!/usr/bin/env python
"""Local dry-run of .github/workflows/ci.yml (an ``act`` substitute).

Parses the workflow, then executes every ``run`` step of every job in-process on this
machine, with the workflow-level ``env`` applied.  ``uses:`` steps (checkout,
setup-python, artifact upload) are structural on a local checkout and are skipped;
``run`` steps whose executable is not installed locally (e.g. ``ruff`` in a hermetic
container) are reported as SKIP rather than failures.  Matrix jobs run once, on the
interpreter executing this script.

Exit status is non-zero when any *executed* step fails — the same pass/fail signal the
hosted workflow would give for the locally runnable subset::

    python scripts/ci_dryrun.py            # run every job
    python scripts/ci_dryrun.py --job lint # run one job
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import time

import yaml

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WORKFLOW = os.path.join(REPO_ROOT, ".github", "workflows", "ci.yml")


def step_command(step: dict) -> str:
    return step.get("run", "").strip()


_ASSIGNMENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")


def first_executable(command: str) -> str:
    """The executable of a step's first command line (for availability checks).

    Leading ``VAR=value`` words — both whole assignment lines (``T="$TMP"``) and
    per-command environment prefixes — are skipped, so steps that stage paths in a
    shell variable first are still probed on their real executable.
    """
    for line in command.splitlines():
        for token in line.strip().split():
            if _ASSIGNMENT.match(token):
                continue
            return token
    return ""


def run_job(name: str, job: dict, env: dict) -> list:
    results = []
    for step in job.get("steps", []):
        label = step.get("name") or step.get("uses") or "run"
        command = step_command(step)
        if not command:
            results.append((name, label, "SKIP", "uses-step (structural on a local checkout)"))
            continue
        executable = first_executable(command)
        if executable not in ("python",) and shutil.which(executable) is None:
            results.append((name, label, "SKIP", f"'{executable}' not installed locally"))
            continue
        if "pip install" in command:
            results.append((name, label, "SKIP", "no package installs in the dry-run"))
            continue
        start = time.perf_counter()
        proc = subprocess.run(
            ["bash", "-c", command],
            cwd=REPO_ROOT,
            env={**os.environ, **env},
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        if proc.returncode == 0:
            results.append((name, label, "PASS", f"{elapsed:.1f}s"))
        elif step.get("continue-on-error"):
            results.append((name, label, "WARN", f"exit {proc.returncode} (continue-on-error)"))
        else:
            results.append((name, label, "FAIL", f"exit {proc.returncode}"))
            tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-15:])
            print(f"--- output of failed step '{label}' ---\n{tail}\n---", file=sys.stderr)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--job", default=None, help="run only this job id")
    parser.add_argument("--workflow", default=WORKFLOW, help="workflow file to dry-run")
    args = parser.parse_args(argv)

    with open(args.workflow, "r", encoding="utf-8") as handle:
        workflow = yaml.safe_load(handle)

    env = {str(k): str(v) for k, v in (workflow.get("env") or {}).items()}
    jobs = workflow.get("jobs", {})
    if args.job:
        if args.job not in jobs:
            print(f"no job '{args.job}' in {args.workflow} (have: {', '.join(jobs)})")
            return 2
        jobs = {args.job: jobs[args.job]}

    all_results = []
    for name, job in jobs.items():
        all_results.extend(run_job(name, job, env))

    width = max(len(f"{job}: {label}") for job, label, _, _ in all_results)
    failed = 0
    for job, label, status, detail in all_results:
        print(f"  {f'{job}: {label}':<{width}}  {status:<4}  {detail}")
        failed += status == "FAIL"
    executed = sum(1 for r in all_results if r[2] in ("PASS", "FAIL", "WARN"))
    print(
        f"\n{len(all_results)} steps: {executed} executed, "
        f"{len(all_results) - executed} skipped, {failed} failed"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
