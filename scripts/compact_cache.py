#!/usr/bin/env python
"""Compact a persistent evaluation-cache store (JSONL or sqlite).

JSONL stores grow append-only: every re-priced or re-flushed key adds a row, and only
the last row per key wins on load.  Week-long sweeps therefore accumulate dead rows
that slow every warm start.  This tool folds the history into exactly one row per
surviving key (``EvaluationCache.compact``, built on ``CacheStore.replace_all``).
Two eviction knobs compose (age first, then size):

* ``--max-age SECONDS`` expires rows whose ``priced_at`` timestamp is older than
  that (rows written before timestamps existed count as infinitely old);
* ``--max-entries N`` keeps only the newest N entries, oldest first out.

::

    PYTHONPATH=src python scripts/compact_cache.py sweep.jsonl
    PYTHONPATH=src python scripts/compact_cache.py sweep.jsonl --max-entries 50000
    PYTHONPATH=src python scripts/compact_cache.py sweep.jsonl --max-age 604800

``python -m repro cache compact`` is the same tool inside the unified CLI.  Exit
status 0 on success (the report shows rows before/after), 1 when the store cannot
be opened.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api.cli import compact_store  # noqa: E402


def count_jsonl_rows(path: str) -> int:
    """Physical data rows of a JSONL store (header excluded); -1 when not JSONL."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return max(0, sum(1 for line in handle if line.strip()) - 1)
    except (OSError, UnicodeDecodeError):
        return -1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("store", help="path of the cache store (.jsonl, .sqlite, .db)")
    parser.add_argument(
        "--max-entries", type=int, default=None,
        help="also evict down to this many entries (newest kept)",
    )
    parser.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="also evict rows priced longer than this many seconds ago",
    )
    parser.add_argument(
        "--namespace", default=None,
        help="override the fingerprint namespace (default: current schema version)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.store):
        print(f"no store at {args.store}", file=sys.stderr)
        return 1

    rows_before = count_jsonl_rows(args.store)
    report = compact_store(
        args.store,
        max_entries=args.max_entries,
        max_age_s=args.max_age,
        namespace=args.namespace,
    )

    before = f"{rows_before} rows" if rows_before >= 0 else "sqlite"
    print(
        f"compacted {args.store}: {before} / {report['loaded']} live entries "
        f"-> {report['kept']} entries"
        + (f" ({report['evicted']} evicted)" if report["evicted"] > 0 else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
