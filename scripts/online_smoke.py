#!/usr/bin/env python
"""CI smoke test for the online scenario engine (trace replay determinism).

Generates one seeded 50-job trace with a mid-trace fault storm (all-fail faults,
so running jobs really get preempted), serves it three times —

* twice on fresh serial sessions into separate stores,
* once on a ``pool=2`` session (warm worker pool) into a third store —

and asserts:

1. the result store holds exactly one row per job plus the fleet summary row;
2. the storm preempted at least one job (the fault path actually ran);
3. all three stores are **byte-identical** — virtual-clock stamping means replay
   determinism is exact, and pool pricing is pure memoization so a warm pool
   cannot change a single byte either.

Run it the way CI does::

    PYTHONPATH=src python scripts/online_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import Session  # noqa: E402
from repro.api.results import open_result_store  # noqa: E402
from repro.online import StormSpec, generate_trace, write_trace  # noqa: E402

JOBS = 50


def build_trace():
    return generate_trace(
        jobs=JOBS,
        rate=2.0,
        seed=11,
        workloads=["tiny"],
        fleet=["tiny", "tiny"],
        iterations=(20, 60),  # long enough that the storm lands on running jobs
        deadline_s=60.0,
        storms=[
            StormSpec(
                wafer=0, at=4.0, duration=6.0,
                die_fault_rate=0.2, dead_share=1.0, mean_repair_s=3.0,
            )
        ],
        name="online-smoke",
    )


def serve(trace_path: str, store_path: str, pool) -> object:
    with Session(pool=pool) as session:
        return session.serve(trace_path, results=store_path)


def main() -> int:
    tmpdir = tempfile.mkdtemp(prefix="online-smoke-")
    trace_path = os.path.join(tmpdir, "trace.jsonl")
    stores = [os.path.join(tmpdir, f"run{i}.jsonl") for i in range(3)]
    trace = build_trace()
    write_trace(trace, trace_path)

    first = serve(trace_path, stores[0], pool=None)
    serve(trace_path, stores[1], pool=None)
    warm = serve(trace_path, stores[2], pool=2)

    with open_result_store(stores[0]) as store:
        rows = len(store.load())
    expected = JOBS + 1  # one row per job plus the fleet summary
    if rows != expected:
        print(f"FAIL: store holds {rows} rows, expected {expected}")
        return 1
    if first.preemptions < 1:
        print("FAIL: the fault storm preempted nothing — the fault path never ran")
        return 1

    blobs = []
    for path in stores:
        with open(path, "rb") as handle:
            blobs.append(handle.read())
    if blobs[0] != blobs[1]:
        print("FAIL: two serial serves of one trace wrote different stores")
        return 1
    if blobs[0] != blobs[2]:
        print("FAIL: the warm-pool serve wrote a different store than the serial one")
        return 1

    print(
        f"PASS: {JOBS} jobs served 3x ({first.completed} ok, {first.failed} failed, "
        f"{first.preemptions} preemptions, util {first.util:.1%}); "
        f"{rows} rows per store, all byte-identical (serial x2 + pool=2)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
