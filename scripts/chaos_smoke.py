#!/usr/bin/env python
"""CI chaos smoke: a sweep under seeded fault injection must land bit-identical.

Runs one small GA matrix four times:

1. **reference** — fault-free, serial (the ground truth store);
2. **chaotic** — a 2-worker pool with a seeded :class:`ChaosMonkey` killing one
   worker mid-matrix *and* stalling one tagged cell past its
   :class:`RetryPolicy` wall-clock budget (timeout → supervisor kill → retry);
3. **resume** — the chaotic store re-swept, which must run zero cells;
4. **scheduled** — the matrix again under the two-level scheduler (``jobs=2``,
   cells concurrently in flight on one shared pool) with a fresh worker-kill
   injection; the store must still match the reference bit-identically.

The gate: every injection actually fired, every cell still completed with
``status="ok"``, and the chaotic store's deterministic rows are **byte-identical**
to the reference.  Exit status is non-zero on any violation, so the hosted
``chaos_smoke`` job (and ``scripts/ci_dryrun.py``) fail loudly::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import Session, SweepSpec, open_result_store  # noqa: E402
from repro.core.chaos import ChaosMonkey  # noqa: E402
from repro.core.retry import RetryPolicy  # noqa: E402

MATRIX = {
    "base": {"kind": "ga", "wafer": "tiny", "workload": "tiny",
             "population": 4, "generations": 2},
    "seeds": 2,
}


def rows(path: str) -> dict:
    """Deterministic result rows of a store, canonical JSON per cell."""
    with open_result_store(path) as store:
        return {
            cell_id: json.dumps(record["result"], sort_keys=True)
            for cell_id, record in store.load().items()
        }


def fail(message: str) -> "sys.NoReturn":
    print(f"chaos_smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    sweep = SweepSpec.from_payload(MATRIX)
    cells = sweep.expand()
    stalled = cells[1].cell_id
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        reference = os.path.join(tmp, "reference.jsonl")
        with Session() as session:
            ran = list(session.sweep(sweep, results=reference))
        if len(ran) != len(cells):
            fail(f"reference run priced {len(ran)} of {len(cells)} cells")

        chaotic = os.path.join(tmp, "chaotic.jsonl")
        retry = RetryPolicy(max_attempts=3, backoff_s=0.0, timeout_s=5.0, seed=0)
        with ChaosMonkey(os.path.join(tmp, "tokens"), seed=0) as chaos:
            chaos.kill(worker=1, at_task=2, times=1)  # crash mid-generation
            chaos.delay(30.0, tag=stalled, times=1)  # stall one cell past budget
            with Session(pool=2) as session:
                runs = list(session.sweep(sweep, results=chaotic, retry=retry))
                pool = session.pool
                crashes, respawns = pool.crashes, pool.respawns
        if chaos.claimed("kill") != 1:
            fail("the worker-kill injection never fired")
        if chaos.claimed("delay") != 1:
            fail("the delay injection never fired")
        if crashes < 2:  # the chaos kill plus the timed-out straggler's kill
            fail(f"expected >=2 worker crashes (kill + straggler), saw {crashes}")
        if respawns < 2:
            fail(f"expected >=2 respawns, saw {respawns}")
        bad = [run.cell_id for run in runs if run.status != "ok"]
        if bad:
            fail(f"cells quarantined under chaos: {bad}")

        if rows(chaotic) != rows(reference):
            fail("chaotic store is not bit-identical to the fault-free reference")

        with Session() as session:
            leftover = list(session.sweep(sweep, results=chaotic))
        if leftover:
            fail(f"resume re-ran {len(leftover)} cells of a complete store")

        # Pass 4: the same matrix under the two-level scheduler, with its own
        # chaos token dir so the kill budget is fresh while cells overlap.
        scheduled = os.path.join(tmp, "scheduled.jsonl")
        with ChaosMonkey(os.path.join(tmp, "tokens-jobs"), seed=0) as chaos:
            chaos.kill(worker=1, at_task=2, times=1)
            with Session(pool=2) as session:
                runs = list(
                    session.sweep(sweep, results=scheduled, retry=retry, jobs=2)
                )
                sched_crashes = session.pool.crashes
        if chaos.claimed("kill") != 1:
            fail("the jobs=2 worker-kill injection never fired")
        if sched_crashes < 1:
            fail(f"expected >=1 worker crash under jobs=2, saw {sched_crashes}")
        bad = [run.cell_id for run in runs if run.status != "ok"]
        if bad:
            fail(f"cells quarantined under jobs=2 chaos: {bad}")
        if rows(scheduled) != rows(reference):
            fail("jobs=2 store is not bit-identical to the fault-free reference")

    print(
        f"chaos_smoke: OK — {len(cells)} cells bit-identical under "
        f"{crashes} worker crash(es) and {respawns} respawn(s), "
        f"and again with jobs=2 ({sched_crashes} crash(es))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
