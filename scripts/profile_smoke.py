#!/usr/bin/env python
"""CI profile smoke: a traced sweep must produce a useful ``repro profile`` report.

Runs one small GA matrix through the real CLI twice:

1. **traced sweep** — ``repro sweep --trace`` on a 2-worker pool writing a result
   store and a span trace; the trace must contain the pipeline's load-bearing
   stages (pricing, dispatch, store I/O) with worker-merged spans, and
   ``repro profile --json`` must report non-zero time in each;
2. **resumed sweep** — the same matrix against the same store (zero cells re-run)
   writing a second trace; its header fingerprint (sha-256 of the expanded cell
   ids) must equal the first run's, which is what lets traces of one matrix be
   compared across resumes.

Exit status is non-zero on any violation, so the hosted ``profile_smoke`` job
(and ``scripts/ci_dryrun.py``) fail loudly::

    PYTHONPATH=src python scripts/profile_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api.cli import main as cli_main  # noqa: E402
from repro.obs.tracefile import read_trace  # noqa: E402

MATRIX = {
    "base": {"kind": "ga", "wafer": "tiny", "workload": "tiny",
             "population": 4, "generations": 2},
    "seeds": 2,
}

#: Stages the profile of a store-backed pooled sweep must show time in.
REQUIRED_STAGES = ("pricing", "dispatch", "worker.chunk", "cache.sync", "store.put", "cell")


def fail(message: str) -> "sys.NoReturn":
    print(f"profile_smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="profile-smoke-") as tmp:
        spec_path = os.path.join(tmp, "spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(MATRIX, handle)
        results = os.path.join(tmp, "out.jsonl")
        trace_1 = os.path.join(tmp, "trace-1.jsonl")
        trace_2 = os.path.join(tmp, "trace-2.jsonl")

        status = cli_main(
            ["sweep", "--spec", spec_path, "--results", results,
             "--workers", "2", "--trace", trace_1]
        )
        if status != 0:
            fail(f"traced sweep exited {status}")

        profile_json = os.path.join(tmp, "profile.json")
        status = cli_main(["profile", trace_1, "--json", profile_json])
        if status != 0:
            fail(f"repro profile exited {status}")
        with open(profile_json, "r", encoding="utf-8") as handle:
            profile = json.load(handle)
        stages = profile.get("stages") or {}
        missing = [name for name in REQUIRED_STAGES if name not in stages]
        if missing:
            fail(f"profile is missing stages {missing} (has {sorted(stages)})")
        empty = [name for name in REQUIRED_STAGES if stages[name]["total_s"] <= 0.0]
        if empty:
            fail(f"profile reports zero time in {empty}")
        if not any(stage.get("from_workers") for stage in stages.values()):
            fail("no stage contains worker-merged spans (carry shipping broke)")
        hits = (profile.get("counters") or {}).get("cache.hit", {})
        if not hits.get("total"):
            fail("profile reports no cache.hit counter events")

        # A resume of a complete store runs zero cells but must stamp the same
        # matrix fingerprint, so traces of one sweep line up across invocations.
        status = cli_main(
            ["sweep", "--spec", spec_path, "--results", results,
             "--workers", "2", "--trace", trace_2]
        )
        if status != 0:
            fail(f"resumed sweep exited {status}")
        header_1, spans_1 = read_trace(trace_1)
        header_2, _ = read_trace(trace_2)
        if not header_1.get("fingerprint"):
            fail("trace header carries no matrix fingerprint")
        if header_1["fingerprint"] != header_2["fingerprint"]:
            fail(
                "trace fingerprint changed across a resume: "
                f"{header_1['fingerprint']} != {header_2['fingerprint']}"
            )

    print(
        f"profile_smoke: OK — {len(spans_1)} spans across "
        f"{len(stages)} stages, fingerprint {header_1['fingerprint']} "
        "stable across a resume"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
