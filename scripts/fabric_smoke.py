#!/usr/bin/env python
"""CI fabric smoke: a 2-host distributed sweep survives a SIGKILL bit-identically.

The orchestration (default mode):

1. **reference** — the matrix swept fault-free, serial, in-process (ground truth);
2. **coordinator** — a real ``python -m repro serve`` subprocess on a free port
   with a short lease window, its address parsed from the banner line;
3. **host A** — a host subprocess (this script with ``--host``) that starts
   draining the queue and is **SIGKILLed while it provably holds a lease** (the
   orchestrator watches the coordinator's lease journal for an open grant);
4. **hosts B and C** — two more host subprocesses that drain the rest; B is a
   *straggler* whose ChaosMonkey delays one heartbeat (within the lease window);
5. the coordinator is stopped and the gates run: host A's death left a ``requeue``
   in the journal, the coordinator's store is **bit-identical** to the reference,
   and ``repro results merge`` over the three hosts' partial local replicas —
   the offline fallback — reconstructs the reference exactly;
6. **poison phase** — in-process: a workload whose factory always raises is swept
   by two fabric Sessions under a *global* 2-attempt budget; each host burns one
   attempt, the cell quarantines as ``status="failed"``, and the sibling cells
   drain to ``ok`` meanwhile.

Exit status is non-zero on any violation, so the hosted ``fabric_smoke`` job (and
``scripts/ci_dryrun.py``) fail loudly::

    PYTHONPATH=src python scripts/fabric_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import (  # noqa: E402
    RetryPolicy,
    Session,
    SweepSpec,
    open_result_store,
    register_workload,
    tiny_workload,
)
from repro.core.chaos import ChaosMonkey  # noqa: E402

MATRIX = {
    "base": {"kind": "ga", "wafer": "tiny", "workload": "fabric-smoke-slow",
             "population": 4, "generations": 2},
    "seeds": 8,
}

LEASE_S = 1.0


def register_slow_workload() -> None:
    """The smoke matrix's workload: plain tiny, resolved ~0.3s slowly.

    The sleep sits at *resolve* time, so every cell provably takes long enough
    for the orchestrator to SIGKILL host A mid-lease — while pricing itself stays
    pure and the rows stay bit-identical to any other walk of the matrix.
    """

    def slow_tiny():
        time.sleep(0.3)
        return tiny_workload()

    register_workload("fabric-smoke-slow", slow_tiny)


def rows(path: str) -> dict:
    """Deterministic result rows of a store, canonical JSON per cell."""
    with open_result_store(path) as store:
        return {
            cell_id: json.dumps(record["result"], sort_keys=True)
            for cell_id, record in store.load().items()
        }


def fail(message: str) -> "sys.NoReturn":
    print(f"fabric_smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------------- host mode
def run_host(args: argparse.Namespace) -> int:
    """One sweep host: drain the coordinator's queue, optionally as a straggler."""
    register_slow_workload()
    sweep = SweepSpec.from_payload(json.load(open(args.spec, encoding="utf-8")))
    chaos = None
    if args.hb_delay:
        chaos = ChaosMonkey(args.chaos_dir, seed=0).install()
        chaos.delay_heartbeat(args.hb_delay, times=1)
    try:
        with Session(store=args.host) as session:
            runs = list(session.sweep(sweep, results=args.results))
    finally:
        if chaos is not None:
            chaos.uninstall()
    print(f"host: completed {len(runs)} cells")
    return 0


# ----------------------------------------------------------------- orchestration
def journal_events(path: str) -> list:
    """The journal's parseable events (torn tail and header skipped)."""
    events = []
    if not os.path.exists(path):
        return events
    with open(path, "rb") as handle:
        for line in handle:
            if not line.endswith(b"\n"):
                break
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict) and "e" in row:
                events.append(row)
    return events


def open_grants(events: list) -> set:
    """Cells granted but neither settled nor requeued — leases live right now."""
    live = set()
    for event in events:
        if event["e"] == "grant":
            live.add(event["c"])
        elif event["e"] in ("done", "requeue"):
            live.discard(event["c"])
    return live


def spawn_host(script: str, address: str, spec: str, results: str, **extra) -> subprocess.Popen:
    command = [sys.executable, script, "--host", address, "--spec", spec,
               "--results", results]
    for key, value in extra.items():
        command += [f"--{key.replace('_', '-')}", str(value)]
    return subprocess.Popen(
        command,
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def run_orchestrator() -> int:
    script = os.path.abspath(__file__)
    register_slow_workload()
    sweep = SweepSpec.from_payload(MATRIX)
    cells = sweep.expand()
    with tempfile.TemporaryDirectory(prefix="fabric-smoke-") as tmp:
        reference = os.path.join(tmp, "reference.jsonl")
        with Session() as session:
            ran = list(session.sweep(sweep, results=reference))
        if len(ran) != len(cells):
            fail(f"reference run priced {len(ran)} of {len(cells)} cells")

        spec_path = os.path.join(tmp, "matrix.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(MATRIX, handle)

        store_dir = os.path.join(tmp, "coordinator")
        coordinator = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", store_dir,
             "--bind", "127.0.0.1:0", "--lease-s", str(LEASE_S)],
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = coordinator.stdout.readline()
            if " on " not in banner:
                fail(f"unparseable serve banner: {banner!r}")
            address = banner.split(" on ")[1].split()[0]
            journal = os.path.join(store_dir, "leases.jsonl")

            # Host A drains alone until it provably holds a lease, then dies hard.
            replica_a = os.path.join(tmp, "hostA.jsonl")
            host_a = spawn_host(script, address, spec_path, replica_a)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                events = journal_events(journal)
                done = sum(1 for event in events if event["e"] == "done")
                live = open_grants(events)
                if done >= 1 and live:
                    # Double-check the same lease is still open a beat later, so
                    # the SIGKILL lands mid-pricing, not in the claim gap.
                    time.sleep(0.05)
                    if live & open_grants(journal_events(journal)):
                        break
                time.sleep(0.02)
            else:
                fail("host A never held a lease with one cell done")
            host_a.send_signal(signal.SIGKILL)
            host_a.wait(timeout=30)
            print(f"fabric_smoke: SIGKILLed host A holding {sorted(live)}")

            # Hosts B (heartbeat-delayed straggler) and C drain the remainder,
            # including host A's requeued in-flight cell once its lease expires.
            replica_b = os.path.join(tmp, "hostB.jsonl")
            replica_c = os.path.join(tmp, "hostC.jsonl")
            chaos_dir = os.path.join(tmp, "chaos-b")
            host_b = spawn_host(script, address, spec_path, replica_b,
                                hb_delay=0.6, chaos_dir=chaos_dir)
            host_c = spawn_host(script, address, spec_path, replica_c)
            for name, host in (("B", host_b), ("C", host_c)):
                output, _ = host.communicate(timeout=240)
                if host.returncode != 0:
                    fail(f"host {name} exited {host.returncode}:\n{output}")
        finally:
            coordinator.send_signal(signal.SIGINT)
            try:
                coordinator.wait(timeout=15)
            except subprocess.TimeoutExpired:
                coordinator.kill()
                coordinator.wait()

        if not any(name.startswith("hb-delay") for name in os.listdir(chaos_dir)):
            fail("the heartbeat-delay injection never fired on host B")
        events = journal_events(journal)
        requeues = sum(1 for event in events if event["e"] == "requeue")
        if requeues < 1:
            fail("host A's death never requeued its leased cell")

        authoritative = os.path.join(store_dir, "results.jsonl")
        if rows(authoritative) != rows(reference):
            fail("coordinator store is not bit-identical to the serial reference")

        # Offline fallback: the three partial local replicas (A's cut short by
        # the SIGKILL) merge back into exactly the reference.
        merged = os.path.join(tmp, "merged.sqlite")
        merge = subprocess.run(
            [sys.executable, "-m", "repro", "results", "merge",
             replica_a, replica_b, replica_c, "-o", merged],
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
        )
        if merge.returncode != 0:
            fail(f"results merge failed:\n{merge.stdout}{merge.stderr}")
        if rows(merged) != rows(reference):
            fail("merged host replicas are not bit-identical to the reference")

        poison_quarantines = run_poison_phase(os.path.join(tmp, "poison"))

    print(
        f"fabric_smoke: OK — {len(cells)} cells bit-identical to serial through a "
        f"SIGKILLed host ({requeues} requeue(s)) and a heartbeat-delayed straggler; "
        f"replica merge matched; poison cell quarantined "
        f"({poison_quarantines} quarantine(s)) while siblings drained"
    )
    return 0


def run_poison_phase(store_dir: str) -> int:
    """A cell that raises on every host must quarantine under the global budget."""
    from repro.fabric import FabricCoordinator

    def poison_factory():
        raise RuntimeError("poisoned workload factory")

    register_workload("fabric-smoke-poison", poison_factory)
    matrix = {
        "base": {"kind": "ga", "wafer": "tiny", "workload": "tiny",
                 "population": 4, "generations": 1},
        "zip": {"workload": ["fabric-smoke-poison", "tiny", "tiny"],
                "population": [4, 4, 6]},
    }
    sweep = SweepSpec.from_payload(matrix)
    coordinator = FabricCoordinator(store_dir, lease_s=5.0)
    address = coordinator.start("127.0.0.1:0")
    runs, errors = [], []

    def drain() -> None:
        try:
            with Session(store=address) as session:
                runs.extend(
                    session.sweep(sweep, retry=RetryPolicy(max_attempts=2))
                )
        except Exception as exc:  # surfaced after the join
            errors.append(exc)

    threads = [threading.Thread(target=drain) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = coordinator.snapshot()
    coordinator.stop()
    if errors:
        fail(f"poison-phase host raised: {errors[0]}")
    statuses = sorted(run.status for run in runs)
    if statuses != ["failed", "ok", "ok"]:
        fail(f"expected one quarantined cell and two ok, got {statuses}")
    quarantined = next(run for run in runs if run.status == "failed")
    if quarantined.attempts != 2:
        fail(f"quarantine after {quarantined.attempts} attempts, wanted the "
             "global budget of 2")
    if "poisoned workload factory" not in quarantined.error:
        fail("quarantine row lost the captured traceback")
    if stats.get("quarantines") != 1:
        fail(f"coordinator counted {stats.get('quarantines')} quarantines, not 1")
    return int(stats["quarantines"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", metavar="ADDR", default=None,
                        help="run as one sweep host against this coordinator")
    parser.add_argument("--spec", default=None, help="matrix file (host mode)")
    parser.add_argument("--results", default=None,
                        help="local replica store (host mode)")
    parser.add_argument("--hb-delay", type=float, default=0.0,
                        help="stall one heartbeat this long (host mode)")
    parser.add_argument("--chaos-dir", default=None,
                        help="chaos token directory (host mode)")
    args = parser.parse_args(argv)
    if args.host:
        return run_host(args)
    return run_orchestrator()


if __name__ == "__main__":
    sys.exit(main())
