"""Fig. 10b — accuracy of the DNN operator predictor vs the naive analytical model."""

from repro.analysis.reporting import Report
from repro.predictor.dnn import DnnOperatorPredictor
from repro.workloads.models import get_model
from repro.workloads.transformer import build_layer_graph

from conftest import emit, run_once


def test_fig10_predictor_accuracy(benchmark, config3):
    operators = []
    for name in ("llama2-30b", "llama3-70b", "gpt-175b"):
        model = get_model(name)
        for batch in (1, 2, 4):
            for seq in (1024, 2048, 4096):
                operators.extend(build_layer_graph(model, batch, seq))

    def run():
        predictor = DnnOperatorPredictor(config3.die, seed=0)
        return predictor.train(operators, epochs=300)

    accuracy = run_once(benchmark, run)
    report = Report("Fig. 10b — operator latency prediction error")
    report.add_table(
        "mean relative error on held-out operators",
        {
            "dnn": {"error": accuracy.dnn_error},
            "analytical": {"error": accuracy.analytical_error},
        },
    )
    report.add_text(
        "paper: DNN ~2.3% vs analytical ~19.6% for latency; the reproduction's ground "
        "truth is the perturbed analytical model described in DESIGN.md substitution 2."
    )
    emit(report)
    assert accuracy.dnn_error < accuracy.analytical_error
