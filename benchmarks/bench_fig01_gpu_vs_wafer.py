"""Fig. 1 — normalised training latency: NVL72 GB300 GPUs vs a 56-die WSC.

The paper reports that, at equal compute power, the wafer cuts effective (exposed)
communication latency by ~2.62× across D/T/P configurations for Llama3-70B and
DeepSeek-671B-class workloads.
"""

import pytest

from repro.analysis.reporting import Report
from repro.baselines.gpu_system import GpuEvaluator
from repro.core.evaluator import Evaluator
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.hardware.configs import nvl72_gb300
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

#: The D(x)T(y)P(z) points annotated in Fig. 1.
PARALLELISM_POINTS = [
    ParallelismConfig(dp=1, tp=4, pp=14),
    ParallelismConfig(dp=1, tp=8, pp=7),
    ParallelismConfig(dp=2, tp=4, pp=7),
]


def _wafer_result(wafer, workload, parallelism):
    from repro.parallelism.partition import best_mesh_shape

    shape = best_mesh_shape(parallelism.tp, wafer.dies_x, wafer.dies_y)
    plan = TrainingPlan(
        parallelism=parallelism,
        tp_shape=shape,
        recompute=RecomputeConfig.none(parallelism.pp),
    )
    return Evaluator(wafer).evaluate(workload, plan)


@pytest.mark.parametrize("model_name", ["llama3-70b"])
def test_fig01_gpu_vs_wafer_latency(benchmark, config3, model_name):
    workload = TrainingWorkload(get_model(model_name), 112, 2, 4096)
    gpu_system = nvl72_gb300(56)

    def run():
        rows = {}
        for parallelism in PARALLELISM_POINTS:
            gpu = GpuEvaluator(gpu_system).evaluate(workload, parallelism)
            wafer = _wafer_result(config3, workload, parallelism)
            rows[parallelism.label()] = {
                "gpu_iter_s": gpu.iteration_time,
                "wafer_iter_s": wafer.iteration_time,
                "gpu_exposed_comm_s": gpu.tp_comm_time + gpu.pp_comm_time,
                "wafer_exposed_comm_s": wafer.tp_comm_time + wafer.pp_comm_time,
            }
        return rows

    rows = run_once(benchmark, run)

    report = Report(f"Fig. 1 — {model_name}: NVL72 GB300 vs 56-die WSC (Config 3)")
    report.add_table("iteration time and exposed communication (seconds)", rows)
    comm_ratios = [
        row["gpu_exposed_comm_s"] / row["wafer_exposed_comm_s"]
        for row in rows.values()
        if row["wafer_exposed_comm_s"] > 0
    ]
    if comm_ratios:
        report.add_text(
            f"mean exposed-communication reduction on the wafer: "
            f"{sum(comm_ratios) / len(comm_ratios):.2f}x (paper: ~2.62x)"
        )
    emit(report)

    # With this reproduction's per-link mesh model the wafer does not win at every
    # parallelism point (see EXPERIMENTS.md); it must win for at least one and on average
    # stay within 2x of the GPU system.
    assert any(
        row["wafer_exposed_comm_s"] <= row["gpu_exposed_comm_s"] for row in rows.values()
    )
