"""Fig. 22 — robustness: throughput vs link / die fault rate, robust WATOS vs baseline."""

from repro.analysis.reporting import Report
from repro.core.central_scheduler import CentralScheduler
from repro.core.robustness import RobustnessEvaluator
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

LINK_RATES = [0.0, 0.15, 0.3, 0.45, 0.6]
DIE_RATES = [0.0, 0.2, 0.4, 0.6]


def test_fig22_fault_tolerance(benchmark, config3):
    workload = TrainingWorkload(get_model("llama2-30b"), 128, 4, 4096)
    plan = CentralScheduler(config3).best(workload).plan
    evaluator = RobustnessEvaluator(config3, workload, plan, seed=7)

    def run():
        return (
            evaluator.sweep_link_faults(LINK_RATES),
            evaluator.sweep_die_faults(DIE_RATES),
        )

    link_sweep, die_sweep = run_once(benchmark, run)

    report = Report("Fig. 22 — throughput under injected faults (normalised to fault-free)")
    base_link = link_sweep[0].robust_throughput or 1.0
    base_die = die_sweep[0].robust_throughput or 1.0
    report.add_table(
        "link faults",
        {
            f"rate={p.fault_rate:.2f}": {
                "watos_robust": p.robust_throughput / base_link,
                "baseline": p.baseline_throughput / base_link,
            }
            for p in link_sweep
        },
    )
    report.add_table(
        "die faults",
        {
            f"rate={p.fault_rate:.2f}": {
                "watos_robust": p.robust_throughput / base_die,
                "baseline": p.baseline_throughput / base_die,
            }
            for p in die_sweep
        },
    )
    emit(report)

    # The robust mode never does worse than the static baseline, and at the paper's 20%
    # fault point it shows a visible advantage for die faults.
    for point in link_sweep + die_sweep:
        assert point.robust_throughput >= point.baseline_throughput * 0.999
    assert die_sweep[1].robust_throughput >= die_sweep[1].baseline_throughput
