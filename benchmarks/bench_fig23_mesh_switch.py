"""Fig. 23 — topology compatibility: WATOS on the mesh-switch topology of PD [158].

The mesh-switch wafer arranges 48 dies as twelve 2×2 local meshes hanging off a
1.6 TB/s switch.  WATOS keeps TP inside a local mesh and routes the lighter inter-stage
traffic through the switch; Megatron's oversized TP and Cerebras's weight streaming both
become switch-bound.
"""

from repro.analysis.metrics import normalize
from repro.analysis.reporting import Report
from repro.baselines.wafer_strategies import cerebras_wafer_result, megatron_wafer_plan
from repro.core.central_scheduler import CentralScheduler
from repro.hardware.configs import wafer_config3
from repro.hardware.template import WaferConfig
from repro.interconnect.topology import MeshSwitchTopology
from repro.units import tbps
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = {
    "llama2-30b": (128, 4, 4096),
    "llama3-70b": (128, 4, 4096),
    "gshard-137b": (128, 4, 2048),
    "gpt-175b": (64, 4, 2048),
}


def mesh_switch_wafer() -> WaferConfig:
    """Config 3 reshaped to the 48-die mesh-switch arrangement.

    The switch constrains inter-group bandwidth: each die's share of the 1.6 TB/s switch
    replaces part of its D2D budget, which we model by capping the per-die D2D bandwidth
    at the local-mesh links plus its switch share.
    """
    topo = MeshSwitchTopology(
        num_groups=12, group_shape=(2, 2),
        link_bandwidth=wafer_config3().die.d2d_link_bandwidth,
        switch_bandwidth=tbps(1.6),
    )
    base = wafer_config3()
    from dataclasses import replace

    switch_share = topo.switch_bandwidth / topo.num_dies
    die = replace(base.die, d2d_bandwidth=2 * base.die.d2d_link_bandwidth + 2 * switch_share)
    return replace(base, name="mesh-switch-48", dies_x=6, dies_y=8, die=die)


def test_fig23_mesh_switch_topology(benchmark):
    wafer = mesh_switch_wafer()

    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            _, mg_wafer = megatron_wafer_plan(wafer, workload)
            cerebras = cerebras_wafer_result(wafer, workload)
            watos = CentralScheduler(wafer).best(workload)
            rows[model_name] = {
                "MG-wafer": mg_wafer.throughput / 1e12 if mg_wafer else 0.0,
                "Cerebras": cerebras.throughput / 1e12,
                "WATOS": watos.result.throughput / 1e12 if watos else 0.0,
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 23 — mesh-switch topology (12 groups of 2x2 dies + 1.6 TB/s switch)")
    report.add_table("throughput (TFLOPS)", rows)
    for model_name, row in rows.items():
        report.add_table(f"{model_name}: normalised", {k: {"norm": v} for k, v in normalize(row).items()})
    emit(report)

    for model_name, row in rows.items():
        assert row["WATOS"] >= row["Cerebras"] * 0.999, model_name
        assert row["WATOS"] >= row["MG-wafer"] * 0.999, model_name
