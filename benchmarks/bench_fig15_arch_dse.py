"""Fig. 15 — architectural DSE over Table II Configs 1–4, with and without recomputation,
plus the first-order analytic model the paper shows is misleading."""

import pytest

from repro.analysis.metrics import normalize
from repro.analysis.reporting import Report
from repro.core.central_scheduler import CentralScheduler
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = {
    "llama2-30b": (128, 2, 4096),
    "llama3-70b": (128, 2, 4096),
    "gshard-137b": (128, 2, 2048),
    "gpt-175b": (64, 2, 2048),
}


def _analytic_model_score(wafer, workload):
    """The first-order analytic model annotated under Fig. 15 (favours big DRAM)."""
    compute = workload.iteration_flops() / wafer.total_flops
    access = workload.model_state_bytes / wafer.total_dram_bandwidth
    comm = workload.model.param_bytes / (wafer.die.d2d_bandwidth * wafer.num_dies)
    mem_short = max(0.0, workload.model_state_bytes * 1.5 - wafer.total_dram_capacity)
    recompute_penalty = mem_short * 2.0e-13
    return 1.0 / (max(compute + recompute_penalty, access) + comm)


@pytest.mark.parametrize("use_heavy_microbatch", [False, True],
                         ids=["without-recompute", "with-recompute"])
def test_fig15_table_ii_dse(benchmark, table_ii_configs, use_heavy_microbatch):
    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS.items():
            micro_batch = micro * (4 if use_heavy_microbatch else 1)
            workload = TrainingWorkload(get_model(model_name), batch, micro_batch, seq)
            for config_name, wafer in table_ii_configs.items():
                best = CentralScheduler(wafer, optimize_placement=False).best(workload)
                key = f"{model_name}/{config_name}"
                if best is None:
                    rows[key] = {"throughput_tflops": 0.0, "recompute_ratio": 0.0, "analytic": 0.0}
                    continue
                rows[key] = {
                    "throughput_tflops": best.result.throughput / 1e12,
                    "recompute_ratio": best.result.recompute_ratio,
                    "analytic": _analytic_model_score(wafer, workload),
                }
        return rows

    rows = run_once(benchmark, run)
    mode = "with recomputation pressure" if use_heavy_microbatch else "without recomputation"
    report = Report(f"Fig. 15 — Table II configs 1-4, {mode}")
    report.add_table("absolute results", rows)

    for model_name in MODELS:
        per_model = {k.split("/")[1]: v["throughput_tflops"] for k, v in rows.items()
                     if k.startswith(model_name)}
        report.add_table(f"{model_name}: normalised throughput",
                         {k: {"norm": v} for k, v in normalize(per_model).items()})
    emit(report)

    # Config 3 (the paper's universal optimum) should never be the worst configuration.
    for model_name in MODELS:
        per_model = {k.split("/")[1]: v["throughput_tflops"] for k, v in rows.items()
                     if k.startswith(model_name) and v["throughput_tflops"] > 0}
        if "config3" in per_model and len(per_model) > 1:
            assert per_model["config3"] > min(per_model.values()) * 0.999
