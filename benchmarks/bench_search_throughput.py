#!/usr/bin/env python
"""Search-throughput benchmark for the fast evaluation subsystem.

Runs the same GA plan search (population 16 × 30 generations by default) twice on one
wafer/workload pair:

* **baseline** — the raw evaluation path: no plan-level result cache, no stage-pricing
  memo (``Evaluator(use_cache=False, memoize_stages=False)``);
* **fast** — the default evaluation path: content-addressed ``EvaluationCache`` plus
  TP-engine stage memoization.

Both runs use the same RNG seed, so they must converge to the *identical*
``best_fitness`` — the fast path is pure memoization, not approximation.  The report
(and ``--json``) tracks evaluations/sec, the cache hit rate and the speedup so the
perf trajectory of the search stack is measured from this PR on.

Usage::

    PYTHONPATH=src python benchmarks/bench_search_throughput.py --json out.json
    PYTHONPATH=src python benchmarks/bench_search_throughput.py --parallel 4
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.central_scheduler import CentralScheduler
from repro.core.evaluator import Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.parallel_map import WorkerPool
from repro.hardware.template import (
    ComputeDieConfig,
    CoreConfig,
    DieConfig,
    DramChipletConfig,
    WaferConfig,
)
from repro.units import GB, tbps, tflops
from repro.workloads.models import ModelConfig, ModelFamily
from repro.workloads.workload import TrainingWorkload


def bench_wafer(dram_gb: float = 1.0) -> WaferConfig:
    """A small 4×4 wafer whose tight per-die DRAM forces recomputation/balancing."""
    compute = ComputeDieConfig(
        core_rows=8,
        core_cols=8,
        core=CoreConfig(flops_fp16=tflops(1.0)),
        width_mm=12.0,
        height_mm=12.0,
        edge_io_bandwidth=tbps(6.0),
    )
    chiplet = DramChipletConfig(
        capacity_bytes=dram_gb * GB / 4,
        bandwidth=tbps(1.0) / 4,
        interface_bandwidth=tbps(1.0) / 4,
        width_mm=3.0,
        height_mm=6.0,
    )
    die = DieConfig(
        compute=compute,
        dram_chiplet=chiplet,
        num_dram_chiplets=4,
        d2d_bandwidth=tbps(2.0),
    )
    return WaferConfig(name="bench-wafer", dies_x=4, dies_y=4, die=die,
                       wafer_width_mm=100.0, wafer_height_mm=100.0)


def bench_workload() -> TrainingWorkload:
    """A toy transformer with a heavy micro-batch so checkpoints dominate memory."""
    model = ModelConfig(
        name="bench-transformer",
        family=ModelFamily.TRANSFORMER,
        num_layers=8,
        hidden_size=512,
        num_heads=8,
        num_kv_heads=8,
        ffn_hidden=1408,
        vocab_size=8000,
        default_seq_len=512,
        gated_mlp=True,
    )
    return TrainingWorkload(
        model, global_batch_size=32, micro_batch_size=8, sequence_length=2048
    )


def run_ga(
    wafer: WaferConfig,
    workload: TrainingWorkload,
    config: GAConfig,
    fast: bool,
    parallel=None,
    evaluator=None,
):
    """One timed GA run; returns (elapsed seconds, GAResult, evaluator).

    ``parallel`` is forwarded to :meth:`GeneticOptimizer.optimize` — an integer spins
    an ephemeral pool per generation (the pre-pool behaviour), a :class:`WorkerPool`
    keeps one set of forked workers and their resident cache shards for the whole run.
    Pass ``evaluator`` to rerun against an existing warm cache (pool-reuse timing).
    """
    if evaluator is None:
        evaluator = Evaluator(wafer, use_cache=fast, memoize_stages=fast)
    seed_plan = CentralScheduler(wafer, evaluator=evaluator).best(workload).plan
    ga = GeneticOptimizer(evaluator, workload, config)
    start = time.perf_counter()
    outcome = ga.optimize(seed_plan, parallel=parallel)
    elapsed = time.perf_counter() - start
    return elapsed, outcome, evaluator


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--population", type=int, default=16, help="GA population size")
    parser.add_argument("--generations", type=int, default=30, help="GA generations")
    parser.add_argument("--seed", type=int, default=0, help="GA RNG seed")
    parser.add_argument(
        "--parallel", type=int, default=None,
        help="also time a process-pool GA run with this many workers (-1 = all CPUs)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the metrics as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    config = GAConfig(
        population_size=args.population, generations=args.generations, seed=args.seed
    )
    wafer, workload = bench_wafer(), bench_workload()
    # One GA fitness call per individual per generation, plus the seed evaluation.
    logical_evals = args.population * args.generations + 1

    base_time, base_outcome, _ = run_ga(wafer, workload, config, fast=False)
    fast_time, fast_outcome, fast_eval = run_ga(wafer, workload, config, fast=True)

    if fast_outcome.best_fitness != base_outcome.best_fitness:
        print(
            "ERROR: cached best_fitness "
            f"{fast_outcome.best_fitness!r} != uncached {base_outcome.best_fitness!r}",
            file=sys.stderr,
        )
        return 1

    stats = fast_eval.cache.stats
    metrics = {
        "population": args.population,
        "generations": args.generations,
        "logical_evaluations": logical_evals,
        "evals_per_sec": logical_evals / fast_time,
        "baseline_evals_per_sec": logical_evals / base_time,
        "cache_hit_rate": stats.hit_rate,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "raw_evaluations": fast_eval.raw_evaluations,
        "baseline_seconds": base_time,
        "fast_seconds": fast_time,
        "speedup": base_time / fast_time,
        "best_fitness": fast_outcome.best_fitness,
        "best_fitness_match": True,
    }

    if args.parallel is not None:
        # Headline parallel number: ONE persistent WorkerPool for the whole GA run.
        # The same pool, evaluator and cache are then reused for a second, warm run:
        # its per-generation cost is pure dispatch (every plan is a cache hit),
        # which is what "near-constant dispatch cost as the cache grows" means
        # operationally.
        with WorkerPool(args.parallel) as pool:
            par_time, par_outcome, par_eval = run_ga(
                wafer, workload, config, fast=True, parallel=pool
            )
            reuse_time, reuse_outcome, _ = run_ga(
                wafer, workload, config, fast=True, parallel=pool, evaluator=par_eval
            )
        # The pre-pool comparison path: an ephemeral pool per generation.
        eph_time, eph_outcome, _ = run_ga(
            wafer, workload, config, fast=True, parallel=args.parallel
        )
        for label, outcome in (
            ("parallel", par_outcome),
            ("pool-reuse", reuse_outcome),
            ("ephemeral", eph_outcome),
        ):
            if outcome.best_fitness != base_outcome.best_fitness:
                print(
                    f"ERROR: {label} best_fitness diverged from serial", file=sys.stderr
                )
                return 1
        metrics["parallel_workers"] = args.parallel
        metrics["parallel_seconds"] = par_time
        metrics["parallel_evals_per_sec"] = logical_evals / par_time
        metrics["parallel_per_generation_seconds"] = par_time / args.generations
        metrics["pool_reuse_seconds"] = reuse_time
        metrics["pool_reuse_evals_per_sec"] = logical_evals / reuse_time
        metrics["pool_reuse_per_generation_seconds"] = reuse_time / args.generations
        metrics["ephemeral_parallel_seconds"] = eph_time
        metrics["ephemeral_parallel_evals_per_sec"] = logical_evals / eph_time
        metrics["pool_speedup"] = eph_time / par_time
        metrics["cache_shipped_entries"] = par_eval.cache.stats.shipped
        print(
            f"parallel x{args.parallel}: persistent pool {par_time:.3f}s "
            f"({metrics['parallel_evals_per_sec']:.0f} evals/s, "
            f"{metrics['cache_shipped_entries']} entries delta-shipped) vs "
            f"ephemeral pools {eph_time:.3f}s ({metrics['pool_speedup']:.1f}x); "
            f"warm pool reuse {reuse_time:.3f}s"
        )

    print(
        f"GA {args.population}x{args.generations}: "
        f"baseline {base_time:.2f}s -> fast {fast_time:.2f}s "
        f"({metrics['speedup']:.1f}x, {metrics['evals_per_sec']:.0f} evals/s, "
        f"hit rate {stats.hit_rate:.1%}, {fast_eval.raw_evaluations} raw evals)"
    )
    if args.json == "-":
        json.dump(metrics, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
        print(f"metrics written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
