#!/usr/bin/env python
"""Search-throughput benchmark for the fast evaluation subsystem.

Runs the same GA plan search (population 16 × 30 generations by default) twice on one
wafer/workload pair:

* **baseline** — the raw evaluation path: no plan-level result cache, no stage-pricing
  memo (``Evaluator(use_cache=False, memoize_stages=False)``);
* **fast** — the default evaluation path: content-addressed ``EvaluationCache`` plus
  TP-engine stage memoization.

Both runs use the same RNG seed, so they must converge to the *identical*
``best_fitness`` — the fast path is pure memoization, not approximation.  The report
(and ``--json``) tracks evaluations/sec, the cache hit rate and the speedup so the
perf trajectory of the search stack is measured from this PR on.

Usage::

    PYTHONPATH=src python benchmarks/bench_search_throughput.py --json out.json
    PYTHONPATH=src python benchmarks/bench_search_throughput.py --parallel 4
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import Session
from repro.api.registry import tiny_wafer, tiny_workload
from repro.obs import tracer as obs_tracer
from repro.core.central_scheduler import CentralScheduler
from repro.core.evaluator import Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.runtime import SessionHandle
from repro.hardware.template import WaferConfig
from repro.workloads.workload import TrainingWorkload

# The bench shapes moved into the Session registry (spec name "tiny") so every CLI
# and the smoke specs share them; the names and dataclasses are unchanged, which
# keeps evaluation fingerprints (and persisted stores) compatible.
bench_wafer = tiny_wafer
bench_workload = tiny_workload


def run_ga(
    wafer: WaferConfig,
    workload: TrainingWorkload,
    config: GAConfig,
    fast: bool,
    session=None,
    evaluator=None,
):
    """One timed GA run; returns (elapsed seconds, GAResult, evaluator).

    ``session`` supplies the worker pool :meth:`GeneticOptimizer.optimize` prices
    generations on (a :class:`repro.api.Session` or a bare session handle); ``None``
    runs serial.  Pass ``evaluator`` to rerun against an existing warm cache
    (pool-reuse timing).
    """
    if evaluator is None:
        evaluator = Evaluator(wafer, use_cache=fast, memoize_stages=fast)
    seed_plan = CentralScheduler(wafer, evaluator=evaluator).best(workload).plan
    ga = GeneticOptimizer(evaluator, workload, config)
    start = time.perf_counter()
    outcome = ga.optimize(seed_plan, session=session or SessionHandle())
    elapsed = time.perf_counter() - start
    return elapsed, outcome, evaluator


def _trace_record_cost(batches: int = 300, batch: int = 1000) -> float:
    """Median per-record cost of the enabled tracing hot path, in seconds.

    Times sub-millisecond batches of the manual ``add()``/``count()`` form (the
    innermost tracepoints; context-manager spans are a per-generation minority)
    and takes the median batch.  Sub-millisecond samples fit inside the quiet
    windows of a busy CI machine, so the median is immune to scheduler spikes —
    yet it still includes amortized costs such as GC pressure from the ring's
    writes, which is exactly the regression class the gate must catch.
    """
    tracer = obs_tracer.enable()
    stamp = time.perf_counter()
    samples = []
    for _ in range(batches):
        t0 = time.perf_counter()
        for _ in range(batch // 2):
            obs_tracer.add("bench.op", stamp, stamp, "")
            obs_tracer.count("bench.op", 1.0, "")
        samples.append((time.perf_counter() - t0) / batch)
    obs_tracer.disable()
    tracer.drain()  # discard the synthetic records
    samples.sort()
    return samples[len(samples) // 2]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--population", type=int, default=16, help="GA population size")
    parser.add_argument("--generations", type=int, default=30, help="GA generations")
    parser.add_argument("--seed", type=int, default=0, help="GA RNG seed")
    parser.add_argument(
        "--parallel", type=int, default=None,
        help="also time a process-pool GA run with this many workers (-1 = all CPUs)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the metrics as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    config = GAConfig(
        population_size=args.population, generations=args.generations, seed=args.seed
    )
    wafer, workload = bench_wafer(), bench_workload()
    # One GA fitness call per individual per generation, plus the seed evaluation.
    logical_evals = args.population * args.generations + 1

    base_time, base_outcome, _ = run_ga(wafer, workload, config, fast=False)
    fast_time, fast_outcome, fast_eval = run_ga(wafer, workload, config, fast=True)

    if fast_outcome.best_fitness != base_outcome.best_fitness:
        print(
            "ERROR: cached best_fitness "
            f"{fast_outcome.best_fitness!r} != uncached {base_outcome.best_fitness!r}",
            file=sys.stderr,
        )
        return 1

    # Tracing overhead: the observability tracepoints must be near-free.  A/B
    # wall-clock timing cannot resolve a few-percent delta on a ~17 ms run when
    # a busy CI machine's noise windows are longer than the run itself, so the
    # enabled-path cost is computed analytically instead:
    #
    #     records one traced run writes x median per-record cost / plain run time
    #
    # The record count is deterministic (same seed, same plan stream) and the
    # per-record cost comes from sub-millisecond microbench batches (see
    # _trace_record_cost), so the metric is reproducible on a loaded machine.
    # The traced end-to-end runs below re-assert bit-identical results under
    # tracing and feed the report; they are not what the gate keys on.
    plain_times, traced_times = [], []
    records_per_run = 0
    for _ in range(3):
        t, outcome, _ = run_ga(wafer, workload, config, fast=True)
        if outcome.best_fitness != base_outcome.best_fitness:
            print("ERROR: untraced rerun best_fitness diverged", file=sys.stderr)
            return 1
        plain_times.append(t)
        tracer = obs_tracer.enable()
        watermark = tracer.mark()
        try:
            t, outcome, _ = run_ga(wafer, workload, config, fast=True)
        finally:
            obs_tracer.disable()
        if outcome.best_fitness != base_outcome.best_fitness:
            print("ERROR: traced run best_fitness diverged", file=sys.stderr)
            return 1
        traced_times.append(t)
        records_per_run = tracer.mark() - watermark
    record_cost_s = _trace_record_cost()
    plain_best = min([fast_time, *plain_times])
    trace_overhead_pct = 100.0 * records_per_run * record_cost_s / plain_best

    stats = fast_eval.cache.stats
    metrics = {
        "population": args.population,
        "generations": args.generations,
        "logical_evaluations": logical_evals,
        "evals_per_sec": logical_evals / fast_time,
        "baseline_evals_per_sec": logical_evals / base_time,
        "cache_hit_rate": stats.hit_rate,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "raw_evaluations": fast_eval.raw_evaluations,
        "baseline_seconds": base_time,
        "fast_seconds": fast_time,
        "speedup": base_time / fast_time,
        "best_fitness": fast_outcome.best_fitness,
        "best_fitness_match": True,
        "traced_seconds": min(traced_times),
        "traced_evals_per_sec": logical_evals / min(traced_times),
        "trace_records_per_run": records_per_run,
        "trace_record_cost_ns": record_cost_s * 1e9,
        "trace_overhead_pct": trace_overhead_pct,
    }

    if args.parallel is not None:
        # Headline parallel number: ONE Session (persistent WorkerPool) for the whole
        # GA run.  The same session, evaluator and cache are then reused for a
        # second, warm run: its per-generation cost is pure dispatch (every plan is
        # a cache hit), which is what "near-constant dispatch cost as the cache
        # grows" means operationally.
        with Session(pool=args.parallel) as session:
            par_time, par_outcome, par_eval = run_ga(
                wafer, workload, config, fast=True, session=session
            )
            reuse_time, reuse_outcome, _ = run_ga(
                wafer, workload, config, fast=True, session=session, evaluator=par_eval
            )
        # The pre-pool comparison path: an ephemeral pool per generation (an integer
        # on the session handle keeps the legacy semantics without the deprecated
        # kwarg spelling).
        eph_time, eph_outcome, _ = run_ga(
            wafer, workload, config, fast=True,
            session=SessionHandle(parallel=args.parallel),
        )
        for label, outcome in (
            ("parallel", par_outcome),
            ("pool-reuse", reuse_outcome),
            ("ephemeral", eph_outcome),
        ):
            if outcome.best_fitness != base_outcome.best_fitness:
                print(
                    f"ERROR: {label} best_fitness diverged from serial", file=sys.stderr
                )
                return 1
        metrics["parallel_workers"] = args.parallel
        metrics["parallel_seconds"] = par_time
        metrics["parallel_evals_per_sec"] = logical_evals / par_time
        metrics["parallel_per_generation_seconds"] = par_time / args.generations
        metrics["pool_reuse_seconds"] = reuse_time
        metrics["pool_reuse_evals_per_sec"] = logical_evals / reuse_time
        metrics["pool_reuse_per_generation_seconds"] = reuse_time / args.generations
        metrics["ephemeral_parallel_seconds"] = eph_time
        metrics["ephemeral_parallel_evals_per_sec"] = logical_evals / eph_time
        metrics["pool_speedup"] = eph_time / par_time
        metrics["cache_shipped_entries"] = par_eval.cache.stats.shipped
        print(
            f"parallel x{args.parallel}: persistent pool {par_time:.3f}s "
            f"({metrics['parallel_evals_per_sec']:.0f} evals/s, "
            f"{metrics['cache_shipped_entries']} entries delta-shipped) vs "
            f"ephemeral pools {eph_time:.3f}s ({metrics['pool_speedup']:.1f}x); "
            f"warm pool reuse {reuse_time:.3f}s"
        )

    print(
        f"GA {args.population}x{args.generations}: "
        f"baseline {base_time:.2f}s -> fast {fast_time:.2f}s "
        f"({metrics['speedup']:.1f}x, {metrics['evals_per_sec']:.0f} evals/s, "
        f"hit rate {stats.hit_rate:.1%}, {fast_eval.raw_evaluations} raw evals)"
    )
    print(
        f"tracing: {records_per_run} records/run x {record_cost_s * 1e9:.0f}ns "
        f"= {trace_overhead_pct:.2f}% of a {plain_best * 1e3:.1f}ms run "
        "(enabled-path cost; results bit-identical traced vs untraced)"
    )
    if args.json == "-":
        json.dump(metrics, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
        print(f"metrics written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
