"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark regenerates the rows/series of one figure or table of the paper and
prints them in normalised form (lowest-performing entry = 1.0, as the paper plots).
Workload sizes are scaled down from the paper's full training runs so the whole harness
completes in minutes on a laptop; the *shape* of each comparison is what matters.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import Report
from repro.hardware.configs import wafer_config1, wafer_config2, wafer_config3, wafer_config4
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload


#: The evaluation workloads used throughout §V, scaled down for benchmark runtime.
def paper_workloads(micro_batch: int = 4, global_batch: int = 128) -> dict:
    return {
        "llama2-30b": TrainingWorkload(get_model("llama2-30b"), global_batch, micro_batch, 4096),
        "llama3-70b": TrainingWorkload(get_model("llama3-70b"), global_batch, micro_batch, 4096),
        "gshard-137b": TrainingWorkload(get_model("gshard-137b"), global_batch, micro_batch, 2048),
        "gpt-175b": TrainingWorkload(get_model("gpt-175b"), global_batch, micro_batch, 2048),
    }


@pytest.fixture(scope="session")
def config3():
    return wafer_config3()


@pytest.fixture(scope="session")
def table_ii_configs():
    return {
        "config1": wafer_config1(),
        "config2": wafer_config2(),
        "config3": wafer_config3(),
        "config4": wafer_config4(),
    }


@pytest.fixture(scope="session")
def workloads():
    return paper_workloads()


def emit(report: Report) -> None:
    """Print a report so ``pytest --benchmark-only -s`` shows the figure's rows."""
    print()
    print(report.render())


def run_once(benchmark, func, *args, **kwargs):
    """Time one execution of ``func`` (DSE runs are deterministic; one round suffices)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
