"""Fig. 24 — (a) multi-wafer scaling vs multi-node Megatron; (b) GA ω trade-off."""

from dataclasses import replace

from repro.analysis.reporting import Report
from repro.baselines.gpu_system import GpuEvaluator
from repro.core.central_scheduler import CentralScheduler
from repro.core.evaluator import Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.hardware.configs import GpuSystemConfig, dgx_b300_equalized
from repro.interconnect.topology import MultiWaferTopology
from repro.units import FP16_BYTES, tbps
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS_24A = {
    "gpt-175b": (64, 4, 2048),
    "llama3-405b": (64, 2, 4096),
    "deepseek-v3-671b": (64, 2, 4096),
}


def multi_wafer_throughput(wafer, workload, num_wafers, w2w_bandwidth):
    """Pipeline the model across ``num_wafers`` wafers and price the W2W boundary.

    Each wafer hosts a contiguous slice of the layers and is scheduled by WATOS
    independently; the wafer-to-wafer activation transfer overlaps with compute except
    for the pipeline-fill portion and any excess of the transfer over one micro-batch's
    per-wafer time.
    """
    node = MultiWaferTopology(num_wafers=num_wafers, wafer=wafer, w2w_bandwidth=w2w_bandwidth)
    sub_model = replace(workload.model, name=f"{workload.model.name}-slice",
                        num_layers=max(1, workload.model.num_layers // num_wafers))
    sub_workload = TrainingWorkload(
        sub_model, workload.global_batch_size, workload.micro_batch_size,
        workload.seq_len,
    )
    best = CentralScheduler(wafer).best(sub_workload)
    if best is None:
        return 0.0
    sub_iteration = best.result.iteration_time
    n = sub_workload.num_microbatches(1)
    per_micro = sub_iteration / n
    transfer = (
        workload.micro_batch_size * workload.seq_len * workload.model.hidden_size * FP16_BYTES
        / node.w2w_link().bandwidth
    )
    exposed = (num_wafers - 1) * transfer + n * max(0.0, transfer - per_micro)
    total_time = sub_iteration + exposed
    total_flops = best.result.useful_flops * num_wafers
    return total_flops / total_time


def test_fig24a_multi_wafer_scaling(benchmark, config3):
    gpu_cluster = GpuSystemConfig(
        name="4-node-dgx", num_gpus=32, gpus_per_node=8, gpu=dgx_b300_equalized().gpu,
    )

    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS_24A.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            gpu = GpuEvaluator(gpu_cluster).evaluate(workload)
            rows[model_name] = {
                "Megatron-4node": gpu.throughput / 1e12,
                "WATOS-4 (0.4 TB/s W2W)": multi_wafer_throughput(config3, workload, 4, 400e9) / 1e12,
                "WATOS-18 (1.8 TB/s W2W)": multi_wafer_throughput(config3, workload, 4, tbps(1.8)) / 1e12,
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 24a — four Config-3 wafers vs four 8-GPU nodes")
    report.add_table("throughput (TFLOPS)", rows)
    emit(report)

    for model_name, row in rows.items():
        assert row["WATOS-18 (1.8 TB/s W2W)"] >= row["WATOS-4 (0.4 TB/s W2W)"] * 0.999
        assert row["WATOS-4 (0.4 TB/s W2W)"] >= row["Megatron-4node"] * 0.999, model_name


def test_fig24b_ga_omega_tradeoff(benchmark, config3):
    workload = TrainingWorkload(get_model("llama2-30b"), 64, 8, 4096)
    seed_plan = CentralScheduler(config3).best(workload).plan
    evaluator = Evaluator(config3)

    def run():
        curves = {}
        for omega in (0.0, 0.25, 0.5, 0.75, 1.0):
            ga = GeneticOptimizer(
                evaluator, workload,
                GAConfig(population_size=6, generations=5, omega=omega, seed=11),
            )
            outcome = ga.optimize(seed_plan)
            start = outcome.history[0]
            curves[f"omega={omega}"] = [start / value if value else 0.0 for value in outcome.history]
        return curves

    curves = run_once(benchmark, run)
    report = Report("Fig. 24b — GA convergence for different elitism shares (ω)")
    report.add_series("normalised fitness improvement per generation (higher is better)", curves)
    emit(report)

    for curve in curves.values():
        assert all(curve[i + 1] >= curve[i] - 1e-9 for i in range(len(curve) - 1))
