#!/usr/bin/env python
"""Fig. 24 — (a) multi-wafer scaling vs multi-node Megatron; (b) GA ω trade-off.

Besides the figure reproductions (pytest), this module is the scale-out driver for the
multi-wafer GA experiment: one GA per wafer slice, all wafers pricing against **one
shared (optionally persistent) evaluation cache**, fanned out over a process pool with
per-wafer seeded RNG streams.  The fan-out is pure memoization + decorrelated streams,
so the parallel run is bit-identical to the serial one, and a second invocation against
the same ``--cache`` path starts warm from disk.

The per-wafer matrix is data — one :class:`~repro.api.SweepSpec` with the wafer
slices and their RNG streams as a zipped axis — streamed through ``Session.sweep``;
``--results`` attaches a result store so an interrupted matrix resumes.

Usage::

    PYTHONPATH=src python benchmarks/bench_fig24_multiwafer_ga.py \
        --wafers 4 --parallel 4 --cache /tmp/fig24.jsonl --results /tmp/fig24-results.jsonl --json -
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import Dict, List

from repro.analysis.reporting import Report
from repro.api import Session, SweepSpec, open_result_store
from repro.baselines.gpu_system import GpuEvaluator
from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import EvaluationCache
from repro.core.evaluator import Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.parallel_map import parallel_map_merge, task_cache
from repro.hardware.configs import GpuSystemConfig, dgx_b300_equalized
from repro.hardware.template import WaferConfig
from repro.interconnect.topology import MultiWaferTopology
from repro.units import FP16_BYTES, tbps
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

MODELS_24A = {
    "gpt-175b": (64, 4, 2048),
    "llama3-405b": (64, 2, 4096),
    "deepseek-v3-671b": (64, 2, 4096),
}


def multi_wafer_throughput(wafer, workload, num_wafers, w2w_bandwidth, cache=None):
    """Pipeline the model across ``num_wafers`` wafers and price the W2W boundary.

    Each wafer hosts a contiguous slice of the layers and is scheduled by WATOS
    independently; the wafer-to-wafer activation transfer overlaps with compute except
    for the pipeline-fill portion and any excess of the transfer over one micro-batch's
    per-wafer time.  ``cache`` routes every per-wafer schedule through one shared
    evaluation cache, so repeated calls (e.g. the same slice under several W2W
    bandwidths) are priced once.
    """
    node = MultiWaferTopology(num_wafers=num_wafers, wafer=wafer, w2w_bandwidth=w2w_bandwidth)
    sub_model = replace(workload.model, name=f"{workload.model.name}-slice",
                        num_layers=max(1, workload.model.num_layers // num_wafers))
    sub_workload = TrainingWorkload(
        sub_model, workload.global_batch_size, workload.micro_batch_size,
        workload.seq_len,
    )
    best = CentralScheduler(wafer, evaluator=Evaluator(wafer, cache=cache)).best(sub_workload)
    if best is None:
        return 0.0
    sub_iteration = best.result.iteration_time
    n = sub_workload.num_microbatches(1)
    per_micro = sub_iteration / n
    transfer = (
        workload.micro_batch_size * workload.seq_len * workload.model.hidden_size * FP16_BYTES
        / node.w2w_link().bandwidth
    )
    exposed = (num_wafers - 1) * transfer + n * max(0.0, transfer - per_micro)
    total_time = sub_iteration + exposed
    total_flops = best.result.useful_flops * num_wafers
    return total_flops / total_time


# ---------------------------------------------------------------- multi-wafer GA sweep
def wafer_slice_workloads(
    workload: TrainingWorkload, num_wafers: int
) -> List[TrainingWorkload]:
    """The per-wafer layer slices of a model pipelined across ``num_wafers`` wafers.

    Remainder layers go to the front wafers.  Slices with equal layer counts share one
    model name (and therefore one evaluation fingerprint), which is exactly what lets
    the shared cache price the uniform middle wafers once.
    """
    if num_wafers < 1:
        raise ValueError("need at least one wafer")
    if num_wafers > workload.model.num_layers:
        raise ValueError(
            f"cannot pipeline {workload.model.num_layers} layers across "
            f"{num_wafers} wafers (each wafer needs at least one layer)"
        )
    base, remainder = divmod(workload.model.num_layers, num_wafers)
    slices = []
    for index in range(num_wafers):
        layers = base + (1 if index < remainder else 0)
        sub_model = replace(
            workload.model,
            name=f"{workload.model.name}-slice{layers}L",
            num_layers=layers,
        )
        slices.append(
            TrainingWorkload(
                sub_model,
                workload.global_batch_size,
                workload.micro_batch_size,
                workload.seq_len,
            )
        )
    return slices


class _WaferGaTask:
    """Picklable task running one wafer's GA against the runtime-provided cache.

    The cache comes from :func:`task_cache` — the shared parent cache on the serial
    path, the worker's resident shard inside a :class:`WorkerPool` — so the task no
    longer pickles a warm snapshot of every entry with every wafer item.
    """

    def __init__(self, wafer: WaferConfig, ga_config: GAConfig) -> None:
        self.wafer = wafer
        self.ga_config = ga_config

    def __call__(self, item):
        index, workload, seed_plan = item
        cache = task_cache()
        evaluator = (
            Evaluator(self.wafer, cache=cache) if cache is not None else Evaluator(self.wafer)
        )
        ga = GeneticOptimizer(evaluator, workload, self.ga_config.stream(index))
        outcome = ga.optimize(seed_plan)
        return {
            "wafer": index,
            "layers": workload.model.num_layers,
            "best_fitness": outcome.best_fitness,
            "throughput": outcome.best_result.throughput,
        }


def run_multiwafer_ga(
    wafer: WaferConfig,
    workload: TrainingWorkload,
    num_wafers: int,
    ga_config: GAConfig,
    cache: EvaluationCache,
    parallel=None,
) -> List[Dict]:
    """One GA per wafer slice, all pricing against ``cache``; returns per-wafer rows.

    Wafer ``i`` runs on RNG stream ``ga_config.stream(i)``, so the per-wafer
    trajectories are independent of execution order and worker count: the parallel
    fan-out is bit-identical to the serial loop.  ``parallel`` takes a persistent
    :class:`WorkerPool` (share one across the whole experiment matrix) or an integer;
    worker cache deltas are merged back in worker order and flushed to the cache's
    store when one is attached.
    """
    slices = wafer_slice_workloads(workload, num_wafers)
    items = []
    for index, sub_workload in enumerate(slices):
        best = CentralScheduler(wafer, evaluator=Evaluator(wafer, cache=cache)).best(
            sub_workload
        )
        if best is None:
            raise ValueError(f"no feasible plan for wafer slice {index}")
        items.append((index, sub_workload, best.plan))

    rows = parallel_map_merge(
        _WaferGaTask(wafer, ga_config), items, parallel=parallel, cache=cache
    )
    cache.flush()
    return rows


def multiwafer_sweep(
    wafer: WaferConfig, workload: TrainingWorkload, num_wafers: int, config: GAConfig
) -> SweepSpec:
    """The Fig. 24 multi-wafer GA matrix as data: one zipped axis per wafer slice.

    Each cell is a ``kind="ga"`` experiment on (slice workload, per-wafer RNG
    stream) — ``zip`` locks the two axes together exactly like the old hand-rolled
    fan-out loop did, and ``Session.sweep`` prices every cell against the session's
    one shared (optionally persistent) cache.  Equal-sized middle slices share an
    evaluation fingerprint, so uniform wafers are still priced once.
    """
    slices = wafer_slice_workloads(workload, num_wafers)
    return SweepSpec(
        name="fig24-multiwafer-ga",
        base={
            "kind": "ga",
            "wafer": wafer,
            "population": config.population_size,
            "generations": config.generations,
            "omega": config.omega,
            "mutation_rate": config.mutation_rate,
            "crossover_rate": config.crossover_rate,
        },
        zip={
            "workload": slices,
            "ga.seed": [config.stream(index).seed for index in range(num_wafers)],
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Multi-wafer GA with a shared persistent evaluation cache"
    )
    parser.add_argument("--wafers", type=int, default=4, help="number of wafer slices")
    parser.add_argument("--population", type=int, default=8, help="GA population size")
    parser.add_argument("--generations", type=int, default=8, help="GA generations")
    parser.add_argument("--seed", type=int, default=0, help="base GA RNG seed")
    parser.add_argument(
        "--parallel", type=int, default=None,
        help="process-pool workers for the per-wafer GA fan-out (-1 = all CPUs)",
    )
    parser.add_argument(
        "--cache", metavar="PATH", default=None,
        help="persistent cache store (.jsonl or .sqlite); warm-starts when it exists",
    )
    parser.add_argument(
        "--results", metavar="PATH", default=None,
        help="result store (.jsonl or .sqlite): stream per-wafer RunResults through "
             "it and resume an interrupted matrix on re-invocation",
    )
    parser.add_argument(
        "--skip-verify", action="store_true",
        help="skip the serial verification run (bit-identity check)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the metrics as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    # Same toy wafer/workload pair as bench_search_throughput, so the whole experiment
    # matrix completes in seconds while still forcing recomputation and balancing.
    from bench_search_throughput import bench_wafer, bench_workload

    wafer, workload = bench_wafer(), bench_workload()
    config = GAConfig(
        population_size=args.population, generations=args.generations, seed=args.seed
    )

    # The whole matrix is data — one SweepSpec — and one Session runs it: the
    # session owns the persistent worker pool (reused by every cell) and the shared
    # — optionally persistent — cache; with --results, each per-wafer RunResult is
    # written through to a result store as it completes.
    sweep_spec = multiwafer_sweep(wafer, workload, args.wafers, config)
    cells = sweep_spec.expand()
    session = Session(pool=args.parallel, store=args.cache)
    shared = session.cache
    loaded = shared.stats.loaded
    try:
        start = time.perf_counter()
        ran = {
            run.cell_id: run
            for run in session.sweep(sweep_spec, results=args.results)
        }
        elapsed = time.perf_counter() - start
        stats = shared.stats

        if args.results:
            # Resumed invocations only ran the missing cells; the store has all.
            with open_result_store(args.results) as result_store:
                records = result_store.load()
            metrics_per_cell = [dict(records[c.cell_id]["result"]["metrics"]) for c in cells]
        else:
            metrics_per_cell = [ran[c.cell_id].metrics for c in cells]
        rows = []
        for index, (cell, metrics) in enumerate(zip(cells, metrics_per_cell)):
            if "best_fitness" not in metrics:
                # Same contract as the legacy run_multiwafer_ga fan-out.
                raise ValueError(f"no feasible plan for wafer slice {index}")
            rows.append(
                {
                    "wafer": index,
                    "layers": cell.spec.workload.model.num_layers,
                    "best_fitness": metrics["best_fitness"],
                    "throughput": metrics["throughput"],
                }
            )

        fitness_match = None
        if not args.skip_verify:
            with Session() as serial_session:
                serial_rows = [
                    run.metrics for run in serial_session.sweep(sweep_spec)
                ]
            fitness_match = [r["best_fitness"] for r in rows] == [
                m["best_fitness"] for m in serial_rows
            ]
            if not fitness_match:
                print(
                    "ERROR: parallel/warm best_fitness diverged from serial",
                    file=sys.stderr,
                )
                return 1
    finally:
        session.close()
    metrics = {
        "wafers": args.wafers,
        "parallel_workers": args.parallel,
        "seconds": elapsed,
        "per_wafer": rows,
        "best_fitness": [r["best_fitness"] for r in rows],
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_hit_rate": stats.hit_rate,
        "cache_shipped_entries": stats.shipped,
        "loaded_entries": loaded,
        "warm_start": loaded > 0,
        "flushed_entries": stats.flushed,
        "store": args.cache,
        "results": args.results,
        "best_fitness_match": fitness_match,
    }
    print(
        f"multi-wafer GA {args.wafers}x({args.population}x{args.generations}): "
        f"{elapsed:.2f}s, hit rate {stats.hit_rate:.1%} "
        f"({stats.hits} hits / {stats.misses} misses, {loaded} loaded from store)"
    )
    if args.json == "-":
        json.dump(metrics, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
        print(f"metrics written to {args.json}")
    return 0


# ------------------------------------------------------------------------ pytest part
def test_fig24a_multi_wafer_scaling(benchmark, config3):
    from conftest import emit, run_once

    gpu_cluster = GpuSystemConfig(
        name="4-node-dgx", num_gpus=32, gpus_per_node=8, gpu=dgx_b300_equalized().gpu,
    )

    def run():
        # One shared cache across every (model, W2W bandwidth) cell: the same wafer
        # slice under two bandwidths is scheduled once and re-priced from the cache.
        cache = EvaluationCache()
        rows = {}
        for model_name, (batch, micro, seq) in MODELS_24A.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            gpu = GpuEvaluator(gpu_cluster).evaluate(workload)
            rows[model_name] = {
                "Megatron-4node": gpu.throughput / 1e12,
                "WATOS-4 (0.4 TB/s W2W)": multi_wafer_throughput(
                    config3, workload, 4, 400e9, cache=cache
                ) / 1e12,
                "WATOS-18 (1.8 TB/s W2W)": multi_wafer_throughput(
                    config3, workload, 4, tbps(1.8), cache=cache
                ) / 1e12,
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 24a — four Config-3 wafers vs four 8-GPU nodes")
    report.add_table("throughput (TFLOPS)", rows)
    emit(report)

    for model_name, row in rows.items():
        assert row["WATOS-18 (1.8 TB/s W2W)"] >= row["WATOS-4 (0.4 TB/s W2W)"] * 0.999
        assert row["WATOS-4 (0.4 TB/s W2W)"] >= row["Megatron-4node"] * 0.999, model_name


def test_fig24b_ga_omega_tradeoff(benchmark, config3):
    from conftest import emit, run_once

    workload = TrainingWorkload(get_model("llama2-30b"), 64, 8, 4096)
    seed_plan = CentralScheduler(config3).best(workload).plan
    evaluator = Evaluator(config3)

    def run():
        curves = {}
        for omega in (0.0, 0.25, 0.5, 0.75, 1.0):
            ga = GeneticOptimizer(
                evaluator, workload,
                GAConfig(population_size=6, generations=5, omega=omega, seed=11),
            )
            outcome = ga.optimize(seed_plan)
            start = outcome.history[0]
            curves[f"omega={omega}"] = [start / value if value else 0.0 for value in outcome.history]
        return curves

    curves = run_once(benchmark, run)
    report = Report("Fig. 24b — GA convergence for different elitism shares (ω)")
    report.add_series("normalised fitness improvement per generation (higher is better)", curves)
    emit(report)

    for curve in curves.values():
        assert all(curve[i + 1] >= curve[i] - 1e-9 for i in range(len(curve) - 1))


if __name__ == "__main__":
    raise SystemExit(main())
