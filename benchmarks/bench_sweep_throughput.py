#!/usr/bin/env python
"""Sweep-throughput benchmark for the elastic two-level scheduler.

Runs the same GA sweep (``--cells`` seed replicates of a tiny GA search) twice on
one session:

* **serial** — the pre-elastic walk: one cell at a time (``jobs=1``);
* **scheduled** — the two-level scheduler: up to ``--jobs`` whole cells in flight,
  each fanning its generations out over the shared worker pool.

Both runs resolve the identical cell set from the same spec, so their result
stores must agree **bit-identically** on every deterministic row (``rows_match``)
— the scheduler is pure reordering, not approximation.  The report (and
``--json``) tracks ``cells_per_sec``, the serial reference and the speedup so the
perf trajectory of the sweep runtime is measured from this PR on.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py --json out.json
    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py --jobs 4 --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.api import Session, SweepSpec, open_result_store


def sweep_spec(cells: int, population: int, generations: int) -> SweepSpec:
    return SweepSpec.from_payload(
        {
            "base": {
                "kind": "ga",
                "wafer": "tiny",
                "workload": "tiny",
                "population": population,
                "generations": generations,
            },
            "seeds": cells,
        }
    )


def run_sweep(spec: SweepSpec, path: str, jobs: int, workers) -> float:
    """One timed sweep into ``path``; returns elapsed seconds."""
    with Session(pool=workers) as session:
        start = time.perf_counter()
        runs = list(session.sweep(spec, results=path, jobs=jobs))
    elapsed = time.perf_counter() - start
    if any(run.failed for run in runs):
        raise RuntimeError("benchmark sweep had failed cells")
    return elapsed


def deterministic_rows(path: str) -> dict:
    """The store's deterministic rows (volatile timing fields stripped)."""
    with open_result_store(path) as store:
        return {
            cell_id: json.dumps(record["result"], sort_keys=True)
            for cell_id, record in store.load().items()
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=8, help="sweep cells (GA seeds)")
    parser.add_argument("--population", type=int, default=6, help="GA population size")
    parser.add_argument("--generations", type=int, default=3, help="GA generations")
    parser.add_argument(
        "--jobs", type=int, default=2, help="cells in flight for the scheduled run"
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shared pool size for intra-cell fan-out (default: no process pool)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the metrics as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    spec = sweep_spec(args.cells, args.population, args.generations)
    tmpdir = tempfile.mkdtemp(prefix="bench-sweep-")
    serial_store = os.path.join(tmpdir, "serial.jsonl")
    scheduled_store = os.path.join(tmpdir, "scheduled.jsonl")
    try:
        serial_time = run_sweep(spec, serial_store, jobs=1, workers=args.workers)
        scheduled_time = run_sweep(
            spec, scheduled_store, jobs=args.jobs, workers=args.workers
        )
        rows_match = deterministic_rows(scheduled_store) == deterministic_rows(
            serial_store
        )
    finally:
        for path in (serial_store, scheduled_store):
            if os.path.exists(path):
                os.unlink(path)
        os.rmdir(tmpdir)

    if not rows_match:
        print(
            "ERROR: scheduled sweep rows diverged from the serial walk",
            file=sys.stderr,
        )

    metrics = {
        "cells": args.cells,
        "population": args.population,
        "generations": args.generations,
        "jobs": args.jobs,
        "workers": args.workers,
        "serial_seconds": serial_time,
        "scheduled_seconds": scheduled_time,
        "serial_cells_per_sec": args.cells / serial_time,
        "cells_per_sec": args.cells / scheduled_time,
        "sweep_speedup": serial_time / scheduled_time,
        "rows_match": rows_match,
    }
    print(
        f"sweep {args.cells} cells: serial {serial_time:.2f}s -> "
        f"jobs={args.jobs} {scheduled_time:.2f}s "
        f"({metrics['sweep_speedup']:.1f}x, {metrics['cells_per_sec']:.2f} cells/s, "
        f"rows {'identical' if rows_match else 'DIVERGED'})"
    )
    if args.json == "-":
        json.dump(metrics, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
        print(f"metrics written to {args.json}")
    return 0 if rows_match else 1


if __name__ == "__main__":
    raise SystemExit(main())
