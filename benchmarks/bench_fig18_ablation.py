"""Fig. 18 — ablation of WATOS's components: Baseline, +Recomputation scheduler,
+Memory scheduler (placement + DRAM allocation), +GA global optimizer."""

from repro.analysis.reporting import Report
from repro.core.central_scheduler import CentralScheduler
from repro.core.dram_allocation import DramAllocator
from repro.core.evaluator import Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.placement import PlacementOptimizer, serpentine_placement
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.core.recomputation import GcmrScheduler
from repro.interconnect.topology import MeshTopology
from repro.parallelism.partition import best_mesh_shape
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = {
    "llama2-30b": (64, 8, 4096),
    "llama3-70b": (64, 8, 4096),
    "gshard-137b": (64, 8, 2048),
    "gpt-175b": (32, 8, 2048),
}


def _ablation_for(workload, wafer):
    """Throughput of the four cumulative configurations (B, +R, +M, +GA)."""
    evaluator = Evaluator(wafer)
    tp, pp = 8, 7
    shape = best_mesh_shape(tp, wafer.dies_x, wafer.dies_y)
    ops = workload.layer_operators()

    # Baseline: fixed TP=8, PP=7, naive recomputation choice, serpentine placement.
    baseline_recompute = RecomputeConfig.full(pp, ops)
    baseline = TrainingPlan(
        parallelism=ParallelismConfig(dp=1, tp=tp, pp=pp), tp_shape=shape,
        recompute=baseline_recompute,
        placement=serpentine_placement(wafer.dies_x, wafer.dies_y, shape, pp),
    )
    results = {"B": evaluator.evaluate(workload, baseline)}

    # +R: GCMR recomputation scheduling (still naive placement, no balancing traffic).
    gcmr = GcmrScheduler(wafer).schedule(workload, tp, pp)
    plus_r = baseline.with_recompute(gcmr.recompute)
    results["+R"] = evaluator.evaluate(workload, plus_r)
    if results["+R"].oom:
        results["+R"] = results["B"]

    # +M: location-aware placement and DRAM allocation of the Sender/Helper pairs.
    capacity = wafer.die.dram_capacity
    overflow = {s: m - capacity for s, m in enumerate(gcmr.stage_memory_bytes) if m > capacity}
    spare = {s: capacity - m for s, m in enumerate(gcmr.stage_memory_bytes) if m < capacity}
    placement = PlacementOptimizer(MeshTopology.from_wafer(wafer)).optimize(shape, pp, gcmr.mem_pairs)
    allocation = DramAllocator(placement).allocate(overflow, spare)
    plus_m = plus_r.with_placement(placement).with_mem_pairs(allocation.pairs)
    results["+M"] = evaluator.evaluate(workload, plus_m)
    if results["+M"].oom:
        results["+M"] = results["+R"]

    # +GA: genetic refinement of recompute / placement / pairs (and the full TP,PP search).
    best = CentralScheduler(wafer).best(workload)
    seed_plan = best.plan if best else plus_m
    ga = GeneticOptimizer(evaluator, workload, GAConfig(population_size=6, generations=3, seed=0))
    ga_result = ga.optimize(seed_plan)
    results["+GA"] = max(
        (ga_result.best_result, results["+M"], best.result if best else results["+M"]),
        key=lambda r: r.throughput,
    )
    return results


def test_fig18_component_ablation(benchmark, config3):
    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            results = _ablation_for(workload, config3)
            for step, result in results.items():
                rows[f"{model_name} {step}"] = {
                    "throughput_tflops": result.throughput / 1e12,
                    "recompute_ratio": result.recompute_ratio,
                }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 18 — ablation: B / +R / +M / +GA on Config 3")
    report.add_table("absolute results", rows)
    for model_name in MODELS:
        steps = {k.split()[-1]: v["throughput_tflops"] for k, v in rows.items()
                 if k.startswith(model_name)}
        report.add_table(f"{model_name}: normalised to baseline",
                         {k: {"norm": v / steps["B"] if steps["B"] else 0.0} for k, v in steps.items()})
    emit(report)

    for model_name in MODELS:
        steps = {k.split()[-1]: v["throughput_tflops"] for k, v in rows.items()
                 if k.startswith(model_name)}
        assert steps["+GA"] >= steps["B"] * 0.999
        assert steps["+R"] >= steps["B"] * 0.999
