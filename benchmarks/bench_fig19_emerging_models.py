"""Fig. 19 — generality: emerging models (recommender, diffusion, Mamba, Qwen3-Next MoE)."""

from repro.analysis.metrics import normalize
from repro.analysis.reporting import Report
from repro.baselines.gpu_system import GpuEvaluator
from repro.baselines.wafer_strategies import cerebras_wafer_result, megatron_wafer_plan
from repro.core.central_scheduler import CentralScheduler
from repro.hardware.configs import dgx_b300_equalized
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = {
    "gr-24": (64, 4, 2048),
    "sd-3.5-large": (64, 4, 4096),
    "mamba-2.8b": (128, 4, 8192),
    "qwen3-next-80b-a3b": (64, 2, 4096),
}


def test_fig19_emerging_models(benchmark, config3):
    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            gpu = GpuEvaluator(dgx_b300_equalized()).evaluate(workload)
            _, mg_wafer = megatron_wafer_plan(config3, workload)
            cerebras = cerebras_wafer_result(config3, workload)
            watos = CentralScheduler(config3).best(workload)
            rows[model_name] = {
                "MG-GPU": gpu.throughput / 1e12,
                "MG-wafer": mg_wafer.throughput / 1e12 if mg_wafer else 0.0,
                "Cerebras": cerebras.throughput / 1e12,
                "WATOS": watos.result.throughput / 1e12 if watos else 0.0,
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 19 — WATOS on emerging model families (Config 3)")
    report.add_table("throughput (TFLOPS)", rows)
    for model_name, row in rows.items():
        report.add_table(f"{model_name}: normalised", {k: {"norm": v} for k, v in normalize(row).items()})
    emit(report)

    for model_name, row in rows.items():
        assert row["WATOS"] > 0.0
        # The flat-efficiency Cerebras model overestimates throughput on small or
        # attention-light models (see EXPERIMENTS.md); WATOS must stay within ~0.65x of
        # it and ahead of MG-wafer.
        assert row["WATOS"] >= row["Cerebras"] * 0.65, model_name
        assert row["WATOS"] >= row["MG-wafer"] * 0.9, model_name
