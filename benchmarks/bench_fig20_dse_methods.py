"""Fig. 20 — comparison against seven prior DSE frameworks reproduced on the wafer."""

from repro.analysis.metrics import normalize
from repro.analysis.reporting import Report
from repro.baselines.dse_frameworks import evaluate_dse_framework
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = {
    "llama2-30b": (128, 4, 4096),
    "llama3-70b": (128, 4, 4096),
    "gshard-137b": (128, 4, 2048),
    "gpt-175b": (64, 4, 2048),
}

ORDER = ["timeloop", "dfmodel", "calculon", "hecaton", "gemini", "pd", "wsc-llm", "watos"]


def test_fig20_dse_framework_comparison(benchmark, config3):
    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            rows[model_name] = {
                name: evaluate_dse_framework(name, config3, workload).throughput / 1e12
                for name in ORDER
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 20 — prior DSE frameworks vs WATOS (throughput, TFLOPS)")
    report.add_table("absolute throughput", rows, columns=ORDER)
    for model_name, row in rows.items():
        report.add_table(f"{model_name}: normalised", {k: {"norm": v} for k, v in normalize(row).items()})
    emit(report)

    for model_name, row in rows.items():
        others = {name: value for name, value in row.items() if name != "watos"}
        assert row["watos"] >= max(others.values()) * 0.999, model_name
        # Timeloop, which only explores die-level mappings, trails the wafer-aware entries.
        assert row["watos"] > row["timeloop"], model_name
