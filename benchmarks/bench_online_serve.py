#!/usr/bin/env python
"""Online-serving throughput benchmark for the trace engine.

Generates one seeded trace (``--jobs`` Poisson arrivals of the tiny workload on a
two-wafer tiny fleet, with one mid-trace fault storm) and serves it twice on two
fresh sessions.  The measured number is ``jobs_per_sec`` — scheduled jobs per
wall-clock second for the *second* serve (both serves run the full engine; timing
the second keeps one-time interpreter/import warmup out of the gate while still
paying the real per-run pricing search, which the engine memoizes per
``(wafer, workload)`` pair).

The two serves write separate result stores which must agree **byte-identically**
(``rows_match``) — all stored timestamps are virtual, so replay determinism is a
hard property, not a statistical one.  ``--json`` emits the metrics dict that
``benchmarks/perf_gate.py --online`` gates (floor: ≥1k jobs/s on the default
tiny preset).

Usage::

    PYTHONPATH=src python benchmarks/bench_online_serve.py --json -
    PYTHONPATH=src python benchmarks/bench_online_serve.py --jobs 10000 --policy edf
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.api import Session
from repro.online import StormSpec, generate_trace


def build_trace(jobs: int, seed: int):
    return generate_trace(
        jobs=jobs,
        rate=50.0,
        seed=seed,
        workloads=["tiny"],
        fleet=["tiny", "tiny"],
        deadline_s=30.0,
        storms=[
            StormSpec(
                wafer=0, at=jobs / 100.0, duration=5.0,
                die_fault_rate=0.25, mean_repair_s=2.0,
            )
        ],
        name="bench-online",
    )


def run_serve(trace, path: str, policy: str, flush_every: int) -> float:
    """One timed serve into ``path``; returns elapsed seconds."""
    with Session() as session:
        start = time.perf_counter()
        report = session.serve(
            trace, policy=policy, results=path, flush_every=flush_every
        )
    elapsed = time.perf_counter() - start
    if report.failed:
        raise RuntimeError(f"benchmark serve had {report.failed} failed jobs")
    return elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=5000, help="trace arrival count")
    parser.add_argument("--seed", type=int, default=0, help="trace generator seed")
    parser.add_argument(
        "--policy", choices=("fcfs", "edf", "affinity"), default="fcfs",
        help="placement policy under test (default fcfs)",
    )
    parser.add_argument(
        "--flush-every", type=int, default=256,
        help="store write batch size (1 = write-through; batching is I/O-only "
             "and never changes row content)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="write the metrics as JSON to this path ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    trace = build_trace(args.jobs, args.seed)
    tmpdir = tempfile.mkdtemp(prefix="bench-online-")
    first_store = os.path.join(tmpdir, "first.jsonl")
    second_store = os.path.join(tmpdir, "second.jsonl")
    try:
        first_time = run_serve(trace, first_store, args.policy, args.flush_every)
        second_time = run_serve(trace, second_store, args.policy, args.flush_every)
        with open(first_store, "rb") as handle:
            first_bytes = handle.read()
        with open(second_store, "rb") as handle:
            second_bytes = handle.read()
        rows_match = first_bytes == second_bytes
    finally:
        for path in (first_store, second_store):
            if os.path.exists(path):
                os.unlink(path)
        os.rmdir(tmpdir)

    if not rows_match:
        print(
            "ERROR: two serves of the same trace wrote different stores",
            file=sys.stderr,
        )

    metrics = {
        "jobs": args.jobs,
        "policy": args.policy,
        "flush_every": args.flush_every,
        "first_seconds": first_time,
        "seconds": second_time,
        "jobs_per_sec": args.jobs / second_time,
        "rows_match": rows_match,
    }
    print(
        f"online serve {args.jobs} jobs [{args.policy}]: "
        f"{second_time:.2f}s ({metrics['jobs_per_sec']:.0f} jobs/s, "
        f"stores {'byte-identical' if rows_match else 'DIVERGED'})"
    )
    if args.json == "-":
        json.dump(metrics, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
        print(f"metrics written to {args.json}")
    return 0 if rows_match else 1


if __name__ == "__main__":
    raise SystemExit(main())
