"""Fig. 6 — (a) TP vs FSDP traffic/bandwidth utilisation, (b) recomputation vs offloading."""

from dataclasses import replace


from repro.analysis.reporting import Report
from repro.core.evaluator import Evaluator
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.interconnect.alphabeta import AlphaBetaLink
from repro.parallelism.fsdp import fsdp_cost
from repro.parallelism.partition import best_mesh_shape
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = ["llama2-30b", "llama3-70b", "gpt-175b"]


def test_fig06a_tp_vs_fsdp(benchmark, config3):
    link = AlphaBetaLink(config3.die.d2d_link_bandwidth, config3.die.d2d_latency)

    def run():
        rows = {}
        for name in MODELS:
            model = get_model(name)
            workload = TrainingWorkload(model, 16, 1, 4096)
            # TP traffic: activation all-reduces only.
            tp_bytes = (
                2 * 2 * workload.micro_batch_size * workload.seq_len * model.hidden_size
                * model.num_layers * workload.num_microbatches(1)
            )
            fsdp = fsdp_cost(model, config3.num_dies, link)
            rows[name] = {
                "tp_traffic_gb": tp_bytes / 1e9,
                "fsdp_traffic_gb": fsdp.total_bytes / 1e9,
                "fsdp_comm_s": fsdp.comm_time,
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 6a — TP vs FSDP traffic on the wafer mesh")
    report.add_table("per-iteration communication volume", rows)
    emit(report)
    for name in MODELS:
        assert rows[name]["fsdp_traffic_gb"] > rows[name]["tp_traffic_gb"]


def test_fig06b_recompute_vs_offload(benchmark, config3):
    def run():
        rows = {}
        for name in MODELS:
            workload = TrainingWorkload(get_model(name), 128, 8, 4096)
            evaluator = Evaluator(config3)
            pp = 14
            plan = TrainingPlan(
                parallelism=ParallelismConfig(dp=1, tp=4, pp=pp),
                tp_shape=best_mesh_shape(4, config3.dies_x, config3.dies_y),
                recompute=RecomputeConfig.none(pp),
            )
            recompute_plan = plan.with_recompute(
                RecomputeConfig.full(pp, workload.layer_operators())
            )
            offload_plan = replace(plan, offload_to_host=True)
            recompute = evaluator.evaluate(workload, recompute_plan)
            offload = evaluator.evaluate(workload, offload_plan)
            rows[name] = {
                "recompute_iter_s": recompute.iteration_time,
                "offload_iter_s": offload.iteration_time,
                "offload_over_recompute": (
                    offload.iteration_time / recompute.iteration_time
                    if recompute.iteration_time > 0 else float("inf")
                ),
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 6b — recomputation vs host offloading (paper: offloading ~2.2x slower)")
    report.add_table("iteration time", rows)
    emit(report)
    for name in MODELS:
        assert rows[name]["offload_over_recompute"] >= 0.95
