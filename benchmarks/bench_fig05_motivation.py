"""Fig. 5 — motivation: (a) iteration time across (TP, PP); (b) TP link utilisation;
(c) per-stage memory usage for TP=4, PP=8 (the 1F1B memory imbalance)."""


from repro.analysis.metrics import normalize
from repro.analysis.reporting import Report
from repro.core.central_scheduler import CentralScheduler
from repro.core.evaluator import Evaluator
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.collectives import CollectiveModel
from repro.parallelism.partition import best_mesh_shape
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once


def test_fig05a_iteration_time_over_tp_pp(benchmark, config3):
    """Fig. 5a: (TP, PP) sweep on 32 and 64 model-parallel dies for Llama-30B/70B."""
    cases = {
        "llama2-30b/32dies": (get_model("llama2-30b"), 32, [(16, 2), (8, 4), (4, 8), (2, 16)]),
        "llama3-70b/56dies": (get_model("llama3-70b"), 56, [(28, 2), (8, 7), (4, 14), (2, 28)]),
    }

    def run():
        rows = {}
        for label, (model, dies, points) in cases.items():
            workload = TrainingWorkload(model, 128, 4, 4096)
            scheduler = CentralScheduler(config3)
            for tp, pp in points:
                plan = scheduler.build_plan(workload, tp, pp)
                if plan is None:
                    rows[f"{label} T{tp}P{pp}"] = {"iteration_s": float("inf")}
                    continue
                result = scheduler.evaluator.evaluate(workload, plan)
                rows[f"{label} T{tp}P{pp}"] = {
                    "iteration_s": result.iteration_time,
                    "recompute_ratio": result.recompute_ratio,
                }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 5a — iteration time across (TP, PP) on the wafer")
    report.add_table("iteration time (s)", rows)
    times = normalize({k: 1.0 / v["iteration_s"] for k, v in rows.items() if v["iteration_s"] > 0})
    report.add_table("normalised throughput (min = 1)", {k: {"norm": v} for k, v in times.items()})
    emit(report)
    # The paper's claim: the Megatron default TP=8 is not the best point on the wafer —
    # a smaller-or-equal TP configuration must match or beat TP=16/TP=28.
    assert rows["llama2-30b/32dies T8P4"]["iteration_s"] <= rows["llama2-30b/32dies T16P2"]["iteration_s"]


def test_fig05b_link_utilization(benchmark, config3):
    """Fig. 5b: ring all-reduce link utilisation, TP=8 strip vs TP=4 block."""
    link = AlphaBetaLink(config3.die.d2d_link_bandwidth, config3.die.d2d_latency)

    def run():
        return {
            "TP=8 (2x4)": {"link_utilization": CollectiveModel(link, 8).ring_link_utilization((2, 4))},
            "TP=4 (2x2)": {"link_utilization": CollectiveModel(link, 4).ring_link_utilization((2, 2))},
            "TP=4 (1x4)": {"link_utilization": CollectiveModel(link, 4).ring_link_utilization((1, 4))},
        }

    rows = run_once(benchmark, run)
    report = Report("Fig. 5b — mesh link utilisation of ring all-reduce")
    report.add_table("fraction of block links used by the TP ring", rows)
    emit(report)
    assert rows["TP=4 (2x2)"]["link_utilization"] >= rows["TP=8 (2x4)"]["link_utilization"]


def test_fig05c_memory_imbalance(benchmark, config3):
    """Fig. 5c: per-stage peak DRAM usage for Llama-30B with TP=4, PP=8."""
    workload = TrainingWorkload(get_model("llama2-30b"), 128, 4, 4096)
    plan = TrainingPlan(
        parallelism=ParallelismConfig(dp=1, tp=4, pp=8),
        tp_shape=best_mesh_shape(4, config3.dies_x, config3.dies_y),
        recompute=RecomputeConfig.none(8),
    )

    def run():
        evaluator = Evaluator(config3)
        return evaluator.stage_memory(workload, plan, workload.num_microbatches(1))

    footprints = run_once(benchmark, run)
    capacity = config3.die.dram_capacity
    rows = {
        f"stage {s}": {
            "memory_gb": footprint / 1e9,
            "utilization": min(1.0, footprint / capacity),
        }
        for s, footprint in enumerate(footprints)
    }
    report = Report("Fig. 5c — per-stage memory usage, Llama-30B, TP=4 PP=8 (96→70 GB dies)")
    report.add_table("per-die footprint", rows)
    emit(report)
    # Early pipeline stages retain more in-flight activations than late ones.
    assert footprints[0] > footprints[-1]
