"""Fig. 16 — overall comparison: Megatron-GPU, Megatron-wafer, Cerebras and WATOS.

Paper headline: WATOS reaches 2.74× / 1.92× / 1.53× the throughput of MG-wafer, MG-GPU
and Cerebras respectively (averaged over the four models).
"""

from repro.analysis.metrics import geomean, normalize
from repro.analysis.reporting import Report
from repro.baselines.gpu_system import GpuEvaluator
from repro.baselines.wafer_strategies import cerebras_wafer_result, megatron_wafer_plan
from repro.core.central_scheduler import CentralScheduler
from repro.hardware.configs import dgx_b300_equalized
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = {
    "llama2-30b": (128, 4, 4096),
    "llama3-70b": (128, 4, 4096),
    "gshard-137b": (128, 4, 2048),
    "gpt-175b": (64, 4, 2048),
}


def test_fig16_overall_comparison(benchmark, config3):
    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            gpu = GpuEvaluator(dgx_b300_equalized()).evaluate(workload)
            _, mg_wafer = megatron_wafer_plan(config3, workload)
            cerebras = cerebras_wafer_result(config3, workload)
            watos = CentralScheduler(config3).best(workload)
            rows[model_name] = {
                "MG-GPU": gpu.throughput / 1e12,
                "MG-wafer": (mg_wafer.throughput / 1e12) if mg_wafer else 0.0,
                "Cerebras": cerebras.throughput / 1e12,
                "WATOS": watos.result.throughput / 1e12 if watos else 0.0,
                "WATOS_recompute_ratio": watos.result.recompute_ratio if watos else 0.0,
                "MG-wafer_recompute_ratio": mg_wafer.recompute_ratio if mg_wafer else 0.0,
            }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 16 — overall throughput comparison (TFLOPS, higher is better)")
    report.add_table("absolute throughput", rows)
    for model_name, row in rows.items():
        systems = {k: v for k, v in row.items() if k in ("MG-GPU", "MG-wafer", "Cerebras", "WATOS")}
        report.add_table(f"{model_name}: normalised", {k: {"norm": v} for k, v in normalize(systems).items()})

    def gain(system):
        ratios = [row["WATOS"] / row[system] for row in rows.values() if row[system] > 0]
        return geomean(ratios)

    report.add_text(
        f"WATOS vs MG-wafer: {gain('MG-wafer'):.2f}x (paper 2.74x) | "
        f"vs MG-GPU: {gain('MG-GPU'):.2f}x (paper 1.92x) | "
        f"vs Cerebras: {gain('Cerebras'):.2f}x (paper 1.53x)"
    )
    emit(report)

    for model_name, row in rows.items():
        assert row["WATOS"] >= row["MG-wafer"] * 0.999, model_name
        assert row["WATOS"] >= row["MG-GPU"], model_name
        assert row["WATOS"] >= row["Cerebras"] * 0.75, model_name
