"""Fig. 21 — expanded parallelism search space: 1D TP, 2D TP (GSPMD) and TACOS collectives."""

from repro.analysis.metrics import normalize
from repro.analysis.reporting import Report
from repro.core.central_scheduler import CentralScheduler
from repro.interconnect.collectives import CollectiveAlgorithm
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

MODELS = {"llama2-30b": (128, 4, 4096), "gpt-175b": (64, 4, 2048)}

VARIANTS = {
    "1D TP": CollectiveAlgorithm.BIDIRECTIONAL_RING,
    "2D TP": CollectiveAlgorithm.TP_2D,
    "TACOS": CollectiveAlgorithm.TACOS,
    "RingBiOdd": CollectiveAlgorithm.RING_BI_ODD,
}


def test_fig21_expanded_parallelism_space(benchmark, config3):
    def run():
        rows = {}
        for model_name, (batch, micro, seq) in MODELS.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            for label, collective in VARIANTS.items():
                scheduler = CentralScheduler(
                    config3, collective=collective, search_collectives=(collective,),
                )
                best = scheduler.best(workload)
                rows[f"{model_name} {label}"] = {
                    "throughput_tflops": best.result.throughput / 1e12 if best else 0.0,
                    "best_tp": best.plan.parallelism.tp if best else 0,
                    "best_pp": best.plan.parallelism.pp if best else 0,
                }
        return rows

    rows = run_once(benchmark, run)
    report = Report("Fig. 21 — expanded parallelism search space on Config 3")
    report.add_table("best point per collective variant", rows)
    for model_name in MODELS:
        subset = {k.split(" ", 1)[1]: v["throughput_tflops"] for k, v in rows.items()
                  if k.startswith(model_name)}
        report.add_table(f"{model_name}: normalised",
                         {k: {"norm": v} for k, v in normalize(subset).items()})
    emit(report)

    for model_name in MODELS:
        one_d = rows[f"{model_name} 1D TP"]["throughput_tflops"]
        two_d = rows[f"{model_name} 2D TP"]["throughput_tflops"]
        tacos = rows[f"{model_name} TACOS"]["throughput_tflops"]
        # Paper insight 2: 2D TP is the weakest variant on a 2D mesh.
        assert two_d <= max(one_d, tacos) * 1.001
        # Paper insight 1: the expanded space does not change the optimum materially.
        assert abs(tacos - one_d) / max(one_d, tacos) < 0.25
