#!/usr/bin/env python
"""CI perf-regression gate for the search-throughput benchmark.

Two modes:

* **check** (default) — compare a fresh ``bench_search_throughput.py --json`` result
  against the committed ``benchmarks/baseline.json`` and fail (exit 1) when
  ``evals_per_sec`` drops more than ``--max-drop`` (30 % by default) below the
  baseline::

      PYTHONPATH=src python benchmarks/bench_search_throughput.py --json out.json
      python benchmarks/perf_gate.py --current out.json

* **refresh** — re-measure on the current machine and rewrite the baseline.  The
  committed baseline is written with ``--headroom`` (default 0.5): the gate value is
  ``measured × (1 − headroom)``, so a CI runner up to ~2× slower than the refresh
  machine still passes while a real regression of the search stack does not::

      PYTHONPATH=src python benchmarks/perf_gate.py --refresh

The gate also fails when the benchmark itself reports a correctness problem
(``best_fitness_match`` false): speed without serial-identical results is a bug, not
a win.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline.json")
GATE_METRIC = "evals_per_sec"


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(current_path: str, baseline_path: str, max_drop: float) -> int:
    current = load_json(current_path)
    baseline = load_json(baseline_path)
    gate_value = baseline[GATE_METRIC]
    measured = current[GATE_METRIC]
    floor = gate_value * (1.0 - max_drop)

    if current.get("best_fitness_match") is False:
        print("FAIL: benchmark reports best_fitness mismatch (cached != uncached)")
        return 1

    verdict = "PASS" if measured >= floor else "FAIL"
    print(
        f"{verdict}: {GATE_METRIC} {measured:,.0f} vs baseline {gate_value:,.0f} "
        f"(floor {floor:,.0f} at max drop {max_drop:.0%})"
    )
    if "speedup" in current:
        print(f"      cache speedup {current['speedup']:.1f}x, "
              f"hit rate {current.get('cache_hit_rate', 0.0):.1%}")
    if verdict == "FAIL":
        print("      refresh the baseline with: "
              "PYTHONPATH=src python benchmarks/perf_gate.py --refresh")
        return 1
    return 0


def refresh(out_path: str, headroom: float, population: int, generations: int) -> int:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import tempfile

    from bench_search_throughput import main as bench_main

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        tmp = handle.name
    try:
        status = bench_main(
            ["--json", tmp, "--population", str(population),
             "--generations", str(generations)]
        )
        if status != 0:
            print("FAIL: benchmark run failed; baseline not refreshed")
            return status
        measured = load_json(tmp)
    finally:
        os.unlink(tmp)

    baseline = {
        GATE_METRIC: measured[GATE_METRIC] * (1.0 - headroom),
        "measured_evals_per_sec": measured[GATE_METRIC],
        "headroom": headroom,
        "population": measured["population"],
        "generations": measured["generations"],
        "speedup_at_refresh": measured.get("speedup"),
        "cache_hit_rate_at_refresh": measured.get("cache_hit_rate"),
        "refresh_command": "PYTHONPATH=src python benchmarks/perf_gate.py --refresh",
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(
        f"baseline refreshed: gate {baseline[GATE_METRIC]:,.0f} {GATE_METRIC} "
        f"({measured[GATE_METRIC]:,.0f} measured, {headroom:.0%} headroom) -> {out_path}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", metavar="JSON",
                        help="metrics from bench_search_throughput.py --json")
    parser.add_argument("--baseline", metavar="JSON", default=DEFAULT_BASELINE,
                        help="committed baseline (default: benchmarks/baseline.json)")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="maximum tolerated fractional drop below the baseline")
    parser.add_argument("--refresh", action="store_true",
                        help="re-measure and rewrite the baseline instead of checking")
    parser.add_argument("--headroom", type=float, default=0.5,
                        help="refresh: fraction shaved off the measured value")
    parser.add_argument("--population", type=int, default=16,
                        help="refresh: GA population for the measurement run")
    parser.add_argument("--generations", type=int, default=30,
                        help="refresh: GA generations for the measurement run")
    args = parser.parse_args(argv)

    if args.refresh:
        return refresh(args.baseline, args.headroom, args.population, args.generations)
    if not args.current:
        parser.error("--current is required unless --refresh is given")
    return check(args.current, args.baseline, args.max_drop)


if __name__ == "__main__":
    raise SystemExit(main())
