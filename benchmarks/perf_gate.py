#!/usr/bin/env python
"""CI perf-regression gate for the search stack (throughput + parallel + persistence).

Two modes:

* **check** (default) — compare fresh benchmark JSON against the committed
  ``benchmarks/baseline.json`` and fail (exit 1) on a regression.  Three metrics are
  gated (each skipped when absent from the baseline, so older baselines still work):

  - ``evals_per_sec`` — serial fast-path search throughput;
  - ``parallel_evals_per_sec`` — persistent-``WorkerPool`` search throughput;
  - ``multiwafer_warm_hit_rate`` — warm-start hit rate of a second multi-wafer GA
    run against a persisted store (read from the ``--multiwafer`` metrics file);
  - ``sweep_cells_per_sec`` — two-level scheduler sweep throughput (read from the
    ``--sweep`` metrics file written by ``bench_sweep_throughput.py``);
  - ``online_jobs_per_sec`` — trace-serving throughput of the online engine (read
    from the ``--online`` metrics file written by ``bench_online_serve.py``);
  - ``trace_overhead_pct`` — cost of the *enabled* ``repro.obs`` tracepoints as
    a percentage of a fast search run (records written per run x measured
    per-record cost / plain run time; see ``bench_search_throughput.py``), gated
    against a fixed ceiling (``trace_overhead_max_pct``, 5 %) instead of a
    machine-scaled floor — it is a same-machine ratio.  The *disabled*
    tracepoints have no gate of their own: any cost they grow lands on
    ``evals_per_sec`` directly.

  The throughput metrics fail when they drop more than ``--max-drop`` (30 % by
  default) below the baseline value; the hit rate is machine-independent and is
  gated with a fixed 5 % tolerance instead::

      PYTHONPATH=src python benchmarks/bench_search_throughput.py --parallel 2 --json out.json
      PYTHONPATH=src python benchmarks/bench_fig24_multiwafer_ga.py --cache store.jsonl --json /dev/null ...
      PYTHONPATH=src python benchmarks/bench_fig24_multiwafer_ga.py --cache store.jsonl --json warm.json ...
      PYTHONPATH=src python benchmarks/bench_sweep_throughput.py --json sweep.json
      python benchmarks/perf_gate.py --current out.json --multiwafer warm.json --sweep sweep.json

* **refresh** — re-measure on the current machine and rewrite the baseline.  The
  committed baseline is written with ``--headroom`` (default 0.5) on the throughput
  metrics: the gate value is ``measured × (1 − headroom)``, so a CI runner up to ~2×
  slower than the refresh machine still passes while a real regression of the search
  stack does not.  The hit-rate gate gets a fixed 5 % headroom — it does not depend
  on machine speed::

      PYTHONPATH=src python benchmarks/perf_gate.py --refresh

The gate also fails when a benchmark reports a correctness problem
(``best_fitness_match`` false): speed without serial-identical results is a bug, not
a win.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline.json")
HIT_RATE_HEADROOM = 0.05
#: Ceiling on the enabled-tracer slowdown of the fast search path, in percent.
#: Machine-independent (it is a ratio of two runs on one machine), so refresh
#: writes the fixed budget rather than a measured-times-headroom value.
TRACE_OVERHEAD_MAX_PCT = 5.0
#: The multi-wafer measurement run used by both --refresh and the CI workflow
#: (keep .github/workflows/ci.yml in sync when changing this).
MULTIWAFER_ARGS = [
    "--wafers", "3", "--population", "6", "--generations", "6",
    "--parallel", "2", "--skip-verify",
]
#: The sweep-throughput measurement run used by both --refresh and the CI workflow
#: (keep .github/workflows/ci.yml in sync when changing this).
SWEEP_ARGS = [
    "--cells", "8", "--population", "6", "--generations", "3", "--jobs", "2",
]
#: The online-serving measurement run used by both --refresh and the CI workflow
#: (keep .github/workflows/ci.yml in sync when changing this).
ONLINE_ARGS = ["--jobs", "5000"]


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _gate_one(name: str, measured, gate_value, max_drop: float) -> bool:
    floor = gate_value * (1.0 - max_drop)
    ok = measured >= floor
    verdict = "PASS" if ok else "FAIL"
    print(
        f"{verdict}: {name} {measured:,.2f} vs baseline {gate_value:,.2f} "
        f"(floor {floor:,.2f} at max drop {max_drop:.0%})"
    )
    return ok


def _gate_ceiling(name: str, measured, ceiling) -> bool:
    """Gate a cost metric: fail when it rises *above* the baseline ceiling."""
    ok = measured <= ceiling
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict}: {name} {measured:,.2f} vs ceiling {ceiling:,.2f}")
    return ok


def _gate_metric(name: str, current: dict, baseline: dict, max_drop: float,
                 current_path: str) -> bool:
    """Gate one metric, tolerating files that predate it.

    A baseline without the metric skips the gate (older baselines keep working); a
    *metrics* file without it fails with a clear re-run message instead of the raw
    ``KeyError`` a stale bench JSON used to raise.
    """
    if name not in baseline:
        print(f"SKIP: baseline has no '{name}' gate (predates it); "
              "refresh the baseline to start gating it")
        return True
    if name not in current:
        print(f"FAIL: metric '{name}' missing from {current_path} — the JSON predates "
              "this gate; re-run the benchmark to regenerate it")
        return False
    return _gate_one(name, current[name], baseline[name], max_drop)


def check(
    current_path: str,
    baseline_path: str,
    max_drop: float,
    multiwafer_path: str = None,
    sweep_path: str = None,
    online_path: str = None,
) -> int:
    current = load_json(current_path)
    baseline = load_json(baseline_path)
    failed = False

    if current.get("best_fitness_match") is False:
        print("FAIL: benchmark reports best_fitness mismatch (cached != uncached)")
        return 1

    failed |= not _gate_metric(
        "evals_per_sec", current, baseline, max_drop, current_path
    )
    failed |= not _gate_metric(
        "parallel_evals_per_sec", current, baseline, max_drop, current_path
    )
    if "trace_overhead_max_pct" in baseline:
        # Cost ceiling, not a throughput floor: the enabled tracer may slow the
        # fast search path by at most this many percent.  The disabled path has
        # no gate of its own — any cost it grows shows up as an evals_per_sec
        # regression above.
        if "trace_overhead_pct" not in current:
            print(f"FAIL: metric 'trace_overhead_pct' missing from {current_path} — "
                  "the JSON predates this gate; re-run the benchmark")
            failed = True
        else:
            failed |= not _gate_ceiling(
                "trace_overhead_pct",
                current["trace_overhead_pct"],
                baseline["trace_overhead_max_pct"],
            )
    else:
        print("SKIP: baseline has no 'trace_overhead_max_pct' gate (predates it); "
              "refresh the baseline to start gating it")
    if "multiwafer_warm_hit_rate" in baseline:
        if multiwafer_path is None:
            print("FAIL: baseline gates multiwafer_warm_hit_rate but no --multiwafer "
                  "metrics file was given")
            failed = True
        else:
            multiwafer = load_json(multiwafer_path)
            if multiwafer.get("best_fitness_match") is False:
                print("FAIL: multi-wafer benchmark reports best_fitness mismatch")
                return 1
            if not multiwafer.get("warm_start"):
                print("FAIL: multi-wafer metrics come from a cold run (warm_start "
                      "false) — run the benchmark twice against one --cache store")
                failed = True
            elif "cache_hit_rate" not in multiwafer:
                print(f"FAIL: metric 'cache_hit_rate' missing from {multiwafer_path} "
                      "— the JSON predates this gate; re-run the benchmark")
                failed = True
            else:
                # The hit rate is machine-independent, so it gets only its own small
                # tolerance, never the machine-speed --max-drop allowance.
                failed |= not _gate_one(
                    "multiwafer_warm_hit_rate",
                    multiwafer["cache_hit_rate"],
                    baseline["multiwafer_warm_hit_rate"],
                    HIT_RATE_HEADROOM,
                )

    if "sweep_cells_per_sec" in baseline:
        if sweep_path is None:
            print("FAIL: baseline gates sweep_cells_per_sec but no --sweep "
                  "metrics file was given")
            failed = True
        else:
            sweep = load_json(sweep_path)
            if not sweep.get("rows_match", False):
                print("FAIL: sweep benchmark reports rows_match false — the "
                      "scheduled sweep diverged from the serial walk")
                return 1
            if "cells_per_sec" not in sweep:
                print(f"FAIL: metric 'cells_per_sec' missing from {sweep_path} — "
                      "the JSON predates this gate; re-run the benchmark")
                failed = True
            else:
                failed |= not _gate_one(
                    "sweep_cells_per_sec",
                    sweep["cells_per_sec"],
                    baseline["sweep_cells_per_sec"],
                    max_drop,
                )

    if "online_jobs_per_sec" in baseline:
        if online_path is None:
            print("FAIL: baseline gates online_jobs_per_sec but no --online "
                  "metrics file was given")
            failed = True
        else:
            online = load_json(online_path)
            if not online.get("rows_match", False):
                print("FAIL: online benchmark reports rows_match false — two "
                      "serves of one trace wrote different stores")
                return 1
            if "jobs_per_sec" not in online:
                print(f"FAIL: metric 'jobs_per_sec' missing from {online_path} — "
                      "the JSON predates this gate; re-run the benchmark")
                failed = True
            else:
                failed |= not _gate_one(
                    "online_jobs_per_sec",
                    online["jobs_per_sec"],
                    baseline["online_jobs_per_sec"],
                    max_drop,
                )

    if "speedup" in current:
        print(f"      cache speedup {current['speedup']:.1f}x, "
              f"hit rate {current.get('cache_hit_rate', 0.0):.1%}")
    if "pool_speedup" in current:
        print(f"      persistent pool vs ephemeral pools {current['pool_speedup']:.1f}x, "
              f"{current.get('cache_shipped_entries', 0)} entries delta-shipped")
    if failed:
        print("      refresh the baseline with: "
              "PYTHONPATH=src python benchmarks/perf_gate.py --refresh")
        return 1
    return 0


def refresh(out_path: str, headroom: float, population: int, generations: int) -> int:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

    from bench_fig24_multiwafer_ga import main as multiwafer_main
    from bench_online_serve import main as online_main
    from bench_search_throughput import main as bench_main
    from bench_sweep_throughput import main as sweep_main

    tmpdir = tempfile.mkdtemp(prefix="perf-gate-")
    search_json = os.path.join(tmpdir, "search.json")
    warm_json = os.path.join(tmpdir, "multiwafer.json")
    sweep_json = os.path.join(tmpdir, "sweep.json")
    online_json = os.path.join(tmpdir, "online.json")
    store = os.path.join(tmpdir, "multiwafer.jsonl")
    try:
        status = bench_main(
            ["--json", search_json, "--population", str(population),
             "--generations", str(generations), "--parallel", "2"]
        )
        if status == 0:
            # Cold run populates the store, warm run measures the hit rate.
            status = multiwafer_main(
                [*MULTIWAFER_ARGS, "--cache", store, "--json", os.devnull]
            ) or multiwafer_main(
                [*MULTIWAFER_ARGS, "--cache", store, "--json", warm_json]
            )
        if status == 0:
            status = sweep_main([*SWEEP_ARGS, "--json", sweep_json])
        if status == 0:
            status = online_main([*ONLINE_ARGS, "--json", online_json])
        if status != 0:
            print("FAIL: benchmark run failed; baseline not refreshed")
            return status
        measured = load_json(search_json)
        warm = load_json(warm_json)
        sweep = load_json(sweep_json)
        online = load_json(online_json)
    finally:
        for path in (search_json, warm_json, sweep_json, online_json, store):
            if os.path.exists(path):
                os.unlink(path)
        os.rmdir(tmpdir)

    baseline = {
        "evals_per_sec": measured["evals_per_sec"] * (1.0 - headroom),
        "parallel_evals_per_sec": measured["parallel_evals_per_sec"] * (1.0 - headroom),
        "multiwafer_warm_hit_rate": warm["cache_hit_rate"] * (1.0 - HIT_RATE_HEADROOM),
        "trace_overhead_max_pct": TRACE_OVERHEAD_MAX_PCT,
        "sweep_cells_per_sec": sweep["cells_per_sec"] * (1.0 - headroom),
        "online_jobs_per_sec": online["jobs_per_sec"] * (1.0 - headroom),
        "measured_evals_per_sec": measured["evals_per_sec"],
        "measured_parallel_evals_per_sec": measured["parallel_evals_per_sec"],
        "measured_multiwafer_warm_hit_rate": warm["cache_hit_rate"],
        "measured_trace_overhead_pct": measured.get("trace_overhead_pct"),
        "measured_sweep_cells_per_sec": sweep["cells_per_sec"],
        "measured_online_jobs_per_sec": online["jobs_per_sec"],
        "sweep_speedup_at_refresh": sweep.get("sweep_speedup"),
        "headroom": headroom,
        "hit_rate_headroom": HIT_RATE_HEADROOM,
        "population": measured["population"],
        "generations": measured["generations"],
        "parallel_workers": measured.get("parallel_workers"),
        "speedup_at_refresh": measured.get("speedup"),
        "pool_speedup_at_refresh": measured.get("pool_speedup"),
        "cache_hit_rate_at_refresh": measured.get("cache_hit_rate"),
        "refresh_command": "PYTHONPATH=src python benchmarks/perf_gate.py --refresh",
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(
        f"baseline refreshed: evals_per_sec gate {baseline['evals_per_sec']:,.0f}, "
        f"parallel gate {baseline['parallel_evals_per_sec']:,.0f}, "
        f"warm hit-rate gate {baseline['multiwafer_warm_hit_rate']:.3f}, "
        f"sweep gate {baseline['sweep_cells_per_sec']:,.1f} cells/s, "
        f"online gate {baseline['online_jobs_per_sec']:,.0f} jobs/s -> {out_path}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", metavar="JSON",
                        help="metrics from bench_search_throughput.py --json")
    parser.add_argument("--multiwafer", metavar="JSON", default=None,
                        help="metrics from a warm bench_fig24_multiwafer_ga.py run")
    parser.add_argument("--sweep", metavar="JSON", default=None,
                        help="metrics from a bench_sweep_throughput.py run")
    parser.add_argument("--online", metavar="JSON", default=None,
                        help="metrics from a bench_online_serve.py run")
    parser.add_argument("--baseline", metavar="JSON", default=DEFAULT_BASELINE,
                        help="committed baseline (default: benchmarks/baseline.json)")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="maximum tolerated fractional drop below the baseline")
    parser.add_argument("--refresh", action="store_true",
                        help="re-measure and rewrite the baseline instead of checking")
    parser.add_argument("--headroom", type=float, default=0.5,
                        help="refresh: fraction shaved off the measured throughputs")
    parser.add_argument("--population", type=int, default=16,
                        help="refresh: GA population for the measurement run")
    parser.add_argument("--generations", type=int, default=30,
                        help="refresh: GA generations for the measurement run")
    args = parser.parse_args(argv)

    if args.refresh:
        return refresh(args.baseline, args.headroom, args.population, args.generations)
    if not args.current:
        parser.error("--current is required unless --refresh is given")
    return check(
        args.current, args.baseline, args.max_drop, args.multiwafer, args.sweep,
        args.online,
    )


if __name__ == "__main__":
    raise SystemExit(main())
