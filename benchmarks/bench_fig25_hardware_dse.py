"""Fig. 25 — hardware DSE at die granularity: Small/Large × Square/Rectangle designs."""

from repro.analysis.reporting import Report
from repro.core.hardware_dse import DieGranularityDse
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once

WORKLOADS = {
    "llama2-30b": (64, 2, 2048),
    "llama3-70b": (64, 2, 2048),
}


def test_fig25_die_granularity_dse(benchmark):
    def run():
        all_points = {}
        for model_name, (batch, micro, seq) in WORKLOADS.items():
            workload = TrainingWorkload(get_model(model_name), batch, micro, seq)
            dse = DieGranularityDse(
                workload,
                areas_mm2=(200.0, 300.0, 450.0, 600.0),
                aspect_ratios=(1.0, 1.7),
            )
            all_points[model_name] = dse.sweep(max_tp=8)
        return all_points

    all_points = run_once(benchmark, run)

    report = Report("Fig. 25 — die-granularity DSE (memory capacity x throughput objective)")
    for model_name, points in all_points.items():
        rows = {
            f"{p.category} {p.area_mm2:.0f}mm2": {
                "norm_throughput": p.throughput,
                "norm_memory": p.memory_capacity,
                "objective": p.objective,
            }
            for p in points
        }
        report.add_table(model_name, rows)
        best = max(points, key=lambda p: p.objective)
        report.add_text(f"{model_name}: best design point is {best.category} ({best.area_mm2:.0f} mm²)")
    emit(report)

    for model_name, points in all_points.items():
        by_category = {}
        for p in points:
            by_category.setdefault(p.category, []).append(p.objective)
        # The paper's conclusion: Small Square dominates Large Rectangle on the objective.
        # Our area/IO model reproduces this within a tolerance (see EXPERIMENTS.md).
        assert max(by_category["small-square"]) >= 0.6 * max(by_category["large-rectangle"]), model_name
