"""Fig. 17 — DRAM / D2D / compute-die utilisation: WATOS (TP=4) vs MG-wafer (TP=8) on GPT-175B."""

from repro.analysis.metrics import utilization_heatmap
from repro.analysis.reporting import Report
from repro.baselines.wafer_strategies import megatron_wafer_plan
from repro.core.central_scheduler import CentralScheduler
from repro.workloads.models import get_model
from repro.workloads.workload import TrainingWorkload

from conftest import emit, run_once


def test_fig17_resource_utilization(benchmark, config3):
    workload = TrainingWorkload(get_model("gpt-175b"), 64, 4, 2048)

    def run():
        scheduler = CentralScheduler(config3)
        watos = scheduler.best(workload)
        mg_plan, mg_result = megatron_wafer_plan(config3, workload)
        return watos, mg_plan, mg_result

    watos, mg_plan, mg_result = run_once(benchmark, run)

    rows = {
        "WATOS": {
            "dram_utilization": watos.result.dram_utilization,
            "d2d_link_utilization": watos.result.d2d_utilization,
            "compute_utilization": watos.result.compute_utilization,
        },
        "MG-wafer (TP=8)": {
            "dram_utilization": mg_result.dram_utilization,
            "d2d_link_utilization": mg_result.d2d_utilization,
            "compute_utilization": mg_result.compute_utilization,
        },
    }
    report = Report("Fig. 17 — resource utilisation, GPT-175B on Config 3")
    report.add_table("utilisation (fraction of peak)", rows)

    heatmap = utilization_heatmap(
        watos.plan.placement,
        watos.result.stage_memory_bytes,
        config3.die.dram_capacity,
        config3.dies_x,
        config3.dies_y,
    )
    report.add_text(
        "WATOS per-die DRAM utilisation heatmap (rows = mesh Y):\n"
        + "\n".join("  " + " ".join(f"{v:4.2f}" for v in row) for row in heatmap)
    )
    emit(report)

    assert watos.result.compute_utilization >= mg_result.compute_utilization * 0.999
    assert watos.result.dram_utilization > 0.0
