"""Table II — the four representative wafer configurations produced by the enumerator.

This bench regenerates the table's rows from the hardware template and checks that the
architecture enumerator, run under the wafer area/IO constraints, produces candidates
spanning the same DRAM-capacity / D2D-bandwidth trade-off.
"""

from repro.analysis.reporting import Report
from repro.hardware.enumerator import ArchitectureEnumerator

from conftest import emit, run_once


def test_table2_configuration_space(benchmark, table_ii_configs):
    def run():
        rows = {
            name: wafer.describe() for name, wafer in table_ii_configs.items()
        }
        enumerator = ArchitectureEnumerator()
        candidates = enumerator.enumerate()
        return rows, candidates

    rows, candidates = run_once(benchmark, run)
    report = Report("Table II — representative wafer-scale configurations")
    report.add_table("Table II presets", rows)
    report.add_table(
        "enumerator candidates (area/IO feasible)",
        {wafer.name: wafer.describe() for wafer in candidates[:12]},
    )
    emit(report)

    assert len(candidates) > 0
    # The candidate set spans the capacity-vs-bandwidth trade-off of Fig. 4.
    capacities = [w.die.dram_capacity for w in candidates]
    bandwidths = [w.die.d2d_bandwidth for w in candidates]
    assert max(capacities) > min(capacities)
    assert max(bandwidths) > min(bandwidths)
