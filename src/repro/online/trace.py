"""The JSONL trace format: replayable request streams for the online engine.

A trace is one header line plus one event line per arrival or fault, in
non-decreasing time order::

    {"format": "watos-trace", "version": 1, "name": "...", "seed": 0, "fleet": ["tiny", "tiny"]}
    {"t": 0.31, "event": "arrival", "job": {"id": "job-00000", "workload": "tiny", "iterations": 4, "deadline_s": 60.0}}
    {"t": 10.02, "event": "fault", "wafer": 0, "fault": {"kind": "die_fail", "die": [1, 2], "value": 0.0}}

The fault vocabulary is :class:`repro.hardware.faults.FaultEvent` verbatim — the
paper's §VI-D fault model with a time axis — so traces and the static robustness
study share one model.  :func:`read_trace` validates the header (actionable errors,
never a bare ``KeyError``) and the time ordering; :func:`generate_trace` builds
seeded synthetic streams: Poisson or diurnal arrivals, mixed model fleets drawn
from the workload registry, and fault storms scheduled through
:class:`~repro.hardware.faults.FaultInjector`.  Generation is pure given the seed,
which is what the golden-file tests pin down.

A trace's identity is its :attr:`Trace.fingerprint` — a content digest over the
fleet and the events, *excluding* the display name — and per-job result rows key
off it, so renaming a trace file never invalidates a result store.
"""

from __future__ import annotations

import json
import math
import os
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.evalcache import fingerprint
from repro.hardware.faults import FaultEvent, FaultInjector

__all__ = [
    "JobRequest",
    "StormSpec",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceEvent",
    "as_trace",
    "generate_trace",
    "read_trace",
    "write_trace",
]

TRACE_FORMAT = "watos-trace"
TRACE_VERSION = 1


@dataclass(frozen=True)
class JobRequest:
    """One arriving job: a workload to train for ``iterations`` iterations.

    ``workload`` is any reference the registry resolves — a registered name, a
    model-zoo name, or a batching mapping.  ``deadline_s`` is the SLO, relative to
    the arrival instant (``None`` = no deadline, never an SLO miss).
    """

    id: str
    workload: Union[str, Dict[str, Any]]
    iterations: int = 1
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("job id must be non-empty")
        if self.iterations < 1:
            raise ValueError(f"job {self.id}: iterations must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError(f"job {self.id}: deadline_s must be positive (or null)")

    def workload_key(self) -> str:
        """The content key of this job's workload (what pricing memoizes on)."""
        return fingerprint(self.workload)[:16]

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"id": self.id, "workload": self.workload}
        if self.iterations != 1:
            data["iterations"] = self.iterations
        if self.deadline_s is not None:
            data["deadline_s"] = self.deadline_s
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRequest":
        workload = data.get("workload")
        if workload is None:
            raise ValueError(f"job {data.get('id', '?')!r} names no workload")
        deadline = data.get("deadline_s")
        return cls(
            id=str(data.get("id", "")),
            workload=workload if isinstance(workload, dict) else str(workload),
            iterations=int(data.get("iterations", 1)),
            deadline_s=float(deadline) if deadline is not None else None,
        )


@dataclass(frozen=True)
class TraceEvent:
    """One trace line: a job arrival or a fault on one fleet wafer."""

    time: float
    kind: str  # "arrival" | "fault"
    job: Optional[JobRequest] = None
    wafer: Optional[int] = None
    fault: Optional[FaultEvent] = None

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError(f"event time must be non-negative, not {self.time:g}")
        if self.kind == "arrival":
            if self.job is None:
                raise ValueError("arrival events carry a job")
        elif self.kind == "fault":
            if self.fault is None or self.wafer is None:
                raise ValueError("fault events carry a wafer index and a fault")
            if self.wafer < 0:
                raise ValueError("fault wafer index must be non-negative")
        else:
            raise ValueError(f"event kind must be 'arrival' or 'fault', not {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"t": self.time, "event": self.kind}
        if self.kind == "arrival":
            data["job"] = self.job.to_dict()
        else:
            data["wafer"] = self.wafer
            data["fault"] = self.fault.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        time = float(data.get("t", -1.0))
        kind = str(data.get("event", ""))
        if kind == "arrival":
            return cls(time=time, kind=kind, job=JobRequest.from_dict(data.get("job") or {}))
        if kind == "fault":
            return cls(
                time=time,
                kind=kind,
                wafer=int(data.get("wafer", -1)),
                fault=FaultEvent.from_dict(time, data.get("fault") or {}),
            )
        raise ValueError(f"event kind must be 'arrival' or 'fault', not {kind!r}")


@dataclass
class Trace:
    """A parsed (or generated) trace: the fleet, the seed and the event stream."""

    events: List[TraceEvent] = field(default_factory=list)
    fleet: List[str] = field(default_factory=list)
    seed: int = 0
    name: str = ""
    #: Generator provenance (rates, storm specs…), carried for reporting only.
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        last = 0.0
        for event in self.events:
            if event.time < last:
                raise ValueError(
                    f"trace events must be in non-decreasing time order "
                    f"({event.time:g} after {last:g})"
                )
            last = event.time
        for event in self.events:
            if event.kind == "fault" and self.fleet and event.wafer >= len(self.fleet):
                raise ValueError(
                    f"fault event at t={event.time:g} targets wafer {event.wafer} "
                    f"but the fleet has only {len(self.fleet)} wafers"
                )

    @property
    def jobs(self) -> List[JobRequest]:
        return [event.job for event in self.events if event.kind == "arrival"]

    @property
    def horizon(self) -> float:
        """The time of the last event (0 for an empty trace)."""
        return self.events[-1].time if self.events else 0.0

    @property
    def fingerprint(self) -> str:
        """Content digest over fleet + events (name-blind, like sweep cell ids)."""
        return fingerprint(
            {
                "fleet": list(self.fleet),
                "events": [event.to_dict() for event in self.events],
            }
        )[:16]

    def header(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "name": self.name,
            "seed": self.seed,
            "fleet": list(self.fleet),
        }
        if self.meta:
            data["meta"] = self.meta
        return data


def write_trace(trace: Trace, path: Union[str, os.PathLike]) -> int:
    """Serialize a trace to a JSONL file; returns the event count."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(trace.header()) + "\n")
        for event in trace.events:
            handle.write(json.dumps(event.to_dict()) + "\n")
    return len(trace.events)


def read_trace(path: Union[str, os.PathLike]) -> Trace:
    """Parse a JSONL trace file (actionable errors, never a bare ``KeyError``)."""
    path = str(path)
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except ValueError:
            header = None
        if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"{path} is not a {TRACE_FORMAT} file (generate one with "
                "`repro trace gen` or repro.online.generate_trace)"
            )
        version = header.get("version")
        if version != TRACE_VERSION:
            raise ValueError(
                f"{path} is trace format version {version!r}; this build reads "
                f"version {TRACE_VERSION} — regenerate the trace"
            )
        events: List[TraceEvent] = []
        for number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: bad trace event: {exc}") from exc
    return Trace(
        events=events,
        fleet=[str(name) for name in header.get("fleet") or []],
        seed=int(header.get("seed", 0)),
        name=str(header.get("name", "")),
        meta=dict(header.get("meta") or {}),
    )


def as_trace(trace: Union[Trace, str, os.PathLike]) -> Trace:
    """Coerce a ``Session.serve`` trace argument (path or object) to a :class:`Trace`."""
    if isinstance(trace, Trace):
        return trace
    return read_trace(trace)


# ------------------------------------------------------------------ generators
@dataclass(frozen=True)
class StormSpec:
    """One seeded fault storm: a burst of §VI-D fault events on one fleet wafer.

    ``die_fault_rate`` / ``link_fault_rate`` etc. configure the underlying
    :class:`~repro.hardware.faults.FaultInjector`; the storm's events land inside
    ``[at, at + duration)``, with repairs (when ``mean_repair_s`` > 0) possibly
    trailing inside the same window.
    """

    wafer: int = 0
    at: float = 0.0
    duration: float = 10.0
    die_fault_rate: float = 0.2
    link_fault_rate: float = 0.0
    degraded_fraction: float = 0.5
    dead_share: float = 0.2
    mean_repair_s: float = 0.0

    def __post_init__(self) -> None:
        if self.wafer < 0:
            raise ValueError("storm wafer index must be non-negative")
        if self.at < 0.0 or self.duration <= 0.0:
            raise ValueError("storm needs at >= 0 and duration > 0")


def _arrival_times(
    rng: random.Random,
    jobs: int,
    rate: float,
    arrival: str,
    period_s: float,
    amplitude: float,
) -> List[float]:
    """``jobs`` seeded arrival instants under the named process.

    ``poisson`` — homogeneous, exponential inter-arrivals at ``rate`` jobs/s.
    ``diurnal`` — inhomogeneous Poisson with intensity
    ``rate * (1 + amplitude * sin(2πt / period_s))``, drawn by thinning, so load
    swells and ebbs like a day/night cycle compressed to ``period_s``.
    """
    times: List[float] = []
    t = 0.0
    if arrival == "poisson":
        for _ in range(jobs):
            t += rng.expovariate(rate)
            times.append(t)
        return times
    if arrival == "diurnal":
        peak = rate * (1.0 + amplitude)
        while len(times) < jobs:
            t += rng.expovariate(peak)
            intensity = rate * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period_s))
            if rng.random() * peak < intensity:
                times.append(t)
        return times
    raise ValueError(f"arrival must be 'poisson' or 'diurnal', not {arrival!r}")


def generate_trace(
    *,
    jobs: int,
    rate: float = 1.0,
    seed: int = 0,
    arrival: str = "poisson",
    workloads: Sequence[Union[str, Dict[str, Any]]] = ("tiny",),
    iterations: Union[int, Tuple[int, int]] = 1,
    deadline_s: Optional[float] = None,
    deadline_jitter: float = 0.25,
    fleet: Sequence[str] = ("tiny",),
    storms: Sequence[StormSpec] = (),
    period_s: float = 60.0,
    amplitude: float = 0.8,
    name: str = "",
) -> Trace:
    """A seeded synthetic trace (pure: same arguments ⇒ the same trace, bit for bit).

    Each job draws its workload uniformly from ``workloads`` (mixed model fleets),
    its iteration count from ``iterations`` (an int, or an inclusive ``(lo, hi)``
    range), and — when ``deadline_s`` is set — an SLO jittered by
    ``±deadline_jitter`` around it.  Fault storms are scheduled per
    :class:`StormSpec` through :class:`~repro.hardware.faults.FaultInjector`, each
    on its own derived seed, against the named fleet wafer's real die grid.
    """
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if rate <= 0.0:
        raise ValueError("rate must be positive (jobs per second)")
    if not fleet:
        raise ValueError("fleet must name at least one wafer")
    if not workloads:
        raise ValueError("workloads must name at least one workload")
    # A string seed hashes through SHA-512 (stable across processes); tuples would
    # go through hash(), which PYTHONHASHSEED randomises between runs.
    rng = random.Random(f"{int(seed)}:trace-arrivals")
    events: List[TraceEvent] = []
    for index, t in enumerate(
        _arrival_times(rng, jobs, rate, arrival, period_s, amplitude)
    ):
        workload = workloads[rng.randrange(len(workloads))]
        if isinstance(iterations, tuple):
            count = rng.randint(iterations[0], iterations[1])
        else:
            count = int(iterations)
        deadline = None
        if deadline_s is not None:
            deadline = deadline_s * rng.uniform(1.0 - deadline_jitter, 1.0 + deadline_jitter)
        events.append(
            TraceEvent(
                time=round(t, 6),
                kind="arrival",
                job=JobRequest(
                    id=f"job-{index:05d}",
                    workload=workload,
                    iterations=count,
                    deadline_s=round(deadline, 6) if deadline is not None else None,
                ),
            )
        )

    from repro.api.registry import resolve_wafer  # late: avoids import cycles

    for storm_index, storm in enumerate(storms):
        if storm.wafer >= len(fleet):
            raise ValueError(
                f"storm {storm_index} targets wafer {storm.wafer} but the fleet "
                f"has only {len(fleet)} wafers"
            )
        config = resolve_wafer(fleet[storm.wafer])
        injector = FaultInjector(
            dies_x=config.dies_x,
            dies_y=config.dies_y,
            die_fault_rate=storm.die_fault_rate,
            link_fault_rate=storm.link_fault_rate,
            degraded_fraction=storm.degraded_fraction,
            dead_share=storm.dead_share,
            mean_repair_s=storm.mean_repair_s,
        )
        storm_seed = zlib.crc32(f"{int(seed)}:storm:{storm_index}".encode("ascii"))
        for fault in injector.schedule(
            seed=storm_seed,
            horizon=storm.duration,
            start=storm.at,
        ):
            rounded = FaultEvent(
                time=round(fault.time, 6),
                kind=fault.kind,
                die=fault.die,
                link=fault.link,
                value=fault.value,
            )
            events.append(
                TraceEvent(
                    time=rounded.time, kind="fault", wafer=storm.wafer, fault=rounded
                )
            )

    events.sort(key=lambda event: event.time)  # stable: equal instants keep order
    return Trace(
        events=events,
        fleet=[str(wafer) for wafer in fleet],
        seed=int(seed),
        name=name,
        meta={
            "generator": {
                "jobs": jobs,
                "rate": rate,
                "arrival": arrival,
                "workloads": list(workloads),
                "storms": len(storms),
            }
        },
    )
