"""Queueing metrics for online runs, shaped as ordinary result-store rows.

One :class:`JobMetrics` per job becomes one ``kind="trace"`` row — wait, service
and latency in virtual seconds, the SLO verdict, preemption count — and one
``kind="trace_fleet"`` summary row closes the run with fleet-level aggregates
(utilization, SLO-miss rate, wait percentiles).  Rows are plain
:class:`~repro.api.result.RunResult` objects keyed by :func:`trace_cell_id`, so
they stream write-through into the same :class:`~repro.api.results.ResultStore`
as sweep cells, export through the same CSV union, and tail with
``repro results tail --kind trace``.

Everything here is stamped with *virtual* time (the engine's clock), never the
wall clock — the invariant that makes two replays of one trace byte-identical on
disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.api.result import RunResult
from repro.core.evalcache import fingerprint

__all__ = ["JobMetrics", "fleet_summary", "trace_cell_id"]

#: The pseudo-job id of the per-run fleet summary row.
FLEET_SUMMARY_JOB = "__fleet__"


def trace_cell_id(trace_fingerprint: str, job_id: str) -> str:
    """The stable store key of one job's row in one trace.

    Content-derived like :func:`repro.api.sweep.cell_key`: the trace's name-blind
    fingerprint plus the job id, so re-serving the same trace resumes by skipping
    ids already present, and renaming the trace file changes nothing.
    """
    return fingerprint({"trace": trace_fingerprint, "job": job_id})[:16]


@dataclass
class JobMetrics:
    """One job's life in virtual time (all instants in trace seconds)."""

    job_id: str
    workload_key: str
    arrival: float
    iterations: int = 1
    deadline_abs: Optional[float] = None
    wafer: int = -1
    wafer_name: str = ""
    start: Optional[float] = None
    finish: Optional[float] = None
    #: Priced seconds per iteration on a healthy wafer (the scheduler's answer).
    iteration_time: float = 0.0
    preemptions: int = 0
    status: str = "ok"
    error: str = ""

    @property
    def wait_s(self) -> Optional[float]:
        """Arrival → first dispatch (``None`` while never dispatched)."""
        return self.start - self.arrival if self.start is not None else None

    @property
    def service_s(self) -> Optional[float]:
        """First dispatch → completion, preemptions and slowdowns included."""
        if self.start is None or self.finish is None:
            return None
        return self.finish - self.start

    @property
    def latency_s(self) -> Optional[float]:
        """Arrival → completion (what the SLO is judged against)."""
        return self.finish - self.arrival if self.finish is not None else None

    @property
    def slo_miss(self) -> bool:
        """Whether the deadline was blown (a job with no deadline never misses;
        a deadlined job that never finished always does)."""
        if self.deadline_abs is None:
            return False
        return self.finish is None or self.finish > self.deadline_abs

    def to_run_result(self, trace_fingerprint: str) -> RunResult:
        """This job as a ``kind="trace"`` result row."""
        metrics: Dict[str, object] = {
            "arrival_s": self.arrival,
            "iterations": self.iterations,
            "preemptions": self.preemptions,
            "slo_miss": int(self.slo_miss),
            "wafer": self.wafer,
        }
        if self.iteration_time:
            metrics["iteration_time"] = self.iteration_time
        if self.deadline_abs is not None:
            metrics["deadline_s"] = self.deadline_abs
        for key, value in (
            ("wait_s", self.wait_s),
            ("service_s", self.service_s),
            ("latency_s", self.latency_s),
        ):
            if value is not None:
                metrics[key] = value
        return RunResult(
            kind="trace",
            metrics=metrics,
            seconds=self.service_s or 0.0,
            label=self.job_id,
            cell_id=trace_cell_id(trace_fingerprint, self.job_id),
            status=self.status,
            error=self.error,
            attempts=1 + self.preemptions,
        )


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted non-empty sequence."""
    rank = min(len(sorted_values) - 1, max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def fleet_summary(
    jobs: Sequence[JobMetrics],
    *,
    fleet_size: int,
    busy_s: Sequence[float],
    makespan: float,
    policy: str,
    trace_fingerprint: str,
) -> RunResult:
    """The run-closing ``kind="trace_fleet"`` row: fleet-level aggregates.

    ``busy_s`` is per-wafer busy time in virtual seconds; utilization is total
    busy time over ``fleet_size * makespan`` (0 for an empty run).  Wait and
    latency aggregates cover completed jobs only; the SLO-miss rate covers every
    deadlined job, unfinished ones counting as misses.
    """
    completed = [job for job in jobs if job.status == "ok" and job.finish is not None]
    failed = len(jobs) - len(completed)
    waits = sorted(job.wait_s for job in completed if job.wait_s is not None)
    latencies = sorted(job.latency_s for job in completed if job.latency_s is not None)
    deadlined = [job for job in jobs if job.deadline_abs is not None]
    misses = sum(1 for job in deadlined if job.slo_miss)
    capacity = fleet_size * makespan
    metrics: Dict[str, object] = {
        "jobs": len(jobs),
        "completed": len(completed),
        "failed": failed,
        "preemptions": sum(job.preemptions for job in jobs),
        "makespan_s": makespan,
        "util": (sum(busy_s) / capacity) if capacity > 0 else 0.0,
        "slo_miss": misses,
        "slo_miss_rate": (misses / len(deadlined)) if deadlined else 0.0,
    }
    if waits:
        metrics["wait_s"] = sum(waits) / len(waits)
        metrics["wait_p50_s"] = _quantile(waits, 0.50)
        metrics["wait_p95_s"] = _quantile(waits, 0.95)
    if latencies:
        metrics["latency_s"] = sum(latencies) / len(latencies)
        metrics["latency_p95_s"] = _quantile(latencies, 0.95)
    return RunResult(
        kind="trace_fleet",
        metrics=metrics,
        seconds=makespan,
        label=f"fleet[{policy}]",
        cell_id=trace_cell_id(trace_fingerprint, FLEET_SUMMARY_JOB),
        status="ok",
    )


def ordered_metrics(jobs: Dict[str, JobMetrics]) -> List[JobMetrics]:
    """Jobs in admission order (insertion order of the engine's dict)."""
    return list(jobs.values())
