"""The deterministic event queue under the online engine.

A heap of ``(time, seq, payload)`` triples.  ``seq`` is a monotonically increasing
insertion counter, which gives the queue a *total* order: two events at the same
instant pop in push order, never by comparing payloads (payloads are engine-internal
objects with no meaningful ordering).  Total ordering is the whole determinism
story — same trace + same seed means the same push sequence, hence the same pop
sequence, hence a bit-identical run (the ``ReplaySchedulerDatabase`` discipline
from the ray-scheduler prototype).

The engine pushes every trace event up front (arrivals and faults, in trace order)
and schedules completions as it runs; completions therefore always carry later
``seq`` values, so at an equal instant the trace's events are handled first — a
fixed, documented tiebreak rather than an accident of heap layout.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """A ``(time, seq)``-totally-ordered discrete-event queue."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> int:
        """Schedule ``payload`` at ``time``; returns the assigned sequence number."""
        if time < 0.0:
            raise ValueError(f"event time must be non-negative, not {time:g}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (float(time), seq, payload))
        return seq

    def pop(self) -> Tuple[float, int, Any]:
        """The earliest event as ``(time, seq, payload)`` (ties pop in push order)."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """The time of the next event (the queue must be non-empty)."""
        if not self._heap:
            raise IndexError("peek into an empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
