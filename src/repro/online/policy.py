"""Pluggable online placement policies: which pending job goes on which idle wafer.

The engine keeps the mechanism (event loop, preemption, pricing) and delegates the
*choice* to an :class:`OnlinePolicy`.  A policy sees immutable views of the pending
queue and of the currently idle wafers, and names one ``(job, wafer)`` pairing per
call; the engine re-asks while both lists are non-empty, so a policy never has to
plan more than one placement ahead.

Three policies ship (the registry is :data:`POLICIES`):

* ``fcfs`` — first-come, first-served: oldest arrival onto the lowest-numbered
  idle wafer.  The baseline every queueing comparison starts from.
* ``edf`` — earliest-deadline-first: the pending job with the soonest absolute
  deadline goes first (jobs without a deadline sort last, then by arrival).
* ``affinity`` — cache-warmed affinity: FCFS job order, but prefer an idle wafer
  that last served the same workload, so repeat workloads land where the pricing
  memo (and the evaluation cache under it) is already warm.

Policies must be deterministic — same views in, same choice out — or replay
bit-identity is forfeited; none of the built-ins holds state across calls.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

__all__ = [
    "CacheAffinityPolicy",
    "EdfPolicy",
    "FcfsPolicy",
    "OnlinePolicy",
    "POLICIES",
    "resolve_policy",
]


class OnlinePolicy:
    """Base class: override :meth:`select` (and optionally :attr:`name`).

    ``pending`` entries expose ``.job`` (:class:`~repro.online.trace.JobRequest`),
    ``.arrival``, ``.seq`` (admission order) and ``.deadline_abs`` (absolute SLO
    instant, or ``None``); ``idle`` entries expose ``.index``, ``.name``,
    ``.speed`` and ``.last_workload_key``.  Return ``(pending_index, idle_index)``
    to place, or ``None`` to deliberately leave the queue waiting.
    """

    name = "base"

    def select(
        self, pending: Sequence, idle: Sequence
    ) -> Optional[Tuple[int, int]]:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FcfsPolicy(OnlinePolicy):
    """Oldest arrival first, lowest-numbered idle wafer."""

    name = "fcfs"

    def select(self, pending: Sequence, idle: Sequence) -> Optional[Tuple[int, int]]:
        if not pending or not idle:
            return None
        job_index = min(range(len(pending)), key=lambda i: pending[i].seq)
        wafer_index = min(range(len(idle)), key=lambda i: idle[i].index)
        return job_index, wafer_index


class EdfPolicy(OnlinePolicy):
    """Earliest absolute deadline first; deadline-free jobs last, then FCFS."""

    name = "edf"

    def select(self, pending: Sequence, idle: Sequence) -> Optional[Tuple[int, int]]:
        if not pending or not idle:
            return None
        job_index = min(
            range(len(pending)),
            key=lambda i: (
                pending[i].deadline_abs
                if pending[i].deadline_abs is not None
                else float("inf"),
                pending[i].seq,
            ),
        )
        wafer_index = min(range(len(idle)), key=lambda i: idle[i].index)
        return job_index, wafer_index


class CacheAffinityPolicy(OnlinePolicy):
    """FCFS job order, but steer repeat workloads onto the wafer that last ran them.

    A wafer that just served workload *W* holds the warm pricing memo (and the
    evaluation-cache entries under it) for *W*; landing the next *W* job there
    turns its placement into a dictionary hit.  Falls back to the lowest-numbered
    idle wafer when no idle wafer has matching history.
    """

    name = "affinity"

    def select(self, pending: Sequence, idle: Sequence) -> Optional[Tuple[int, int]]:
        if not pending or not idle:
            return None
        job_index = min(range(len(pending)), key=lambda i: pending[i].seq)
        key = pending[job_index].job.workload_key()
        matches = [i for i in range(len(idle)) if idle[i].last_workload_key == key]
        pool = matches if matches else range(len(idle))
        wafer_index = min(pool, key=lambda i: idle[i].index)
        return job_index, wafer_index


POLICIES: Dict[str, Callable[[], OnlinePolicy]] = {
    "fcfs": FcfsPolicy,
    "edf": EdfPolicy,
    "affinity": CacheAffinityPolicy,
}


def resolve_policy(policy: Union[str, OnlinePolicy]) -> OnlinePolicy:
    """Coerce a policy name or instance to an :class:`OnlinePolicy`."""
    if isinstance(policy, OnlinePolicy):
        return policy
    factory = POLICIES.get(policy)
    if factory is None:
        from repro.api.spec import did_you_mean  # late: avoids import cycles

        close = did_you_mean(str(policy), sorted(POLICIES))
        hint = f"; did you mean {close!r}?" if close else ""
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown online policy {policy!r} (known: {known}){hint}")
    return factory()
