"""Online scenario engine: trace-driven request streams under a virtual clock.

Every other entrypoint in the repo prices a *fixed* matrix; this package runs the
paper's scheduler the way a serving system would — a stream of arriving jobs
(workload, arrival time, deadline, fault events) placed *online* onto a fleet of
wafers, priced through the same :class:`~repro.core.evaluator.Evaluator` +
:class:`~repro.core.evalcache.EvaluationCache` stack as every offline search loop.

The four pieces (see the module docstrings):

* :mod:`repro.online.clock` / :mod:`repro.online.events` — the deterministic
  discrete-event substrate: a virtual clock and a ``(time, seq)``-ordered event
  queue, so the same trace and seed replay bit-identically;
* :mod:`repro.online.trace` — the JSONL trace format, :func:`read_trace` /
  :func:`write_trace`, and seeded synthetic generators (Poisson/diurnal arrivals,
  :class:`~repro.hardware.faults.FaultInjector` fault storms, mixed model fleets);
* :mod:`repro.online.engine` — the serving loop (:class:`OnlineEngine`): admit,
  queue, place via a pluggable :class:`~repro.online.policy.OnlinePolicy`,
  preempt/reschedule on fault events, complete;
* :mod:`repro.online.metrics` — per-job wait/service/SLO-miss rows and fleet
  utilization, streamed write-through into the existing
  :class:`~repro.api.results.ResultStore`.

The front door is :meth:`repro.api.Session.serve` (and the ``repro serve-trace`` /
``repro trace gen`` CLI verbs); import from here for the building blocks.
"""

from repro.online.clock import VirtualClock
from repro.online.engine import OnlineEngine, ServeReport
from repro.online.events import EventQueue
from repro.online.metrics import JobMetrics, fleet_summary, trace_cell_id
from repro.online.policy import OnlinePolicy, POLICIES, resolve_policy
from repro.online.trace import (
    JobRequest,
    StormSpec,
    Trace,
    TraceEvent,
    as_trace,
    generate_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "EventQueue",
    "JobMetrics",
    "JobRequest",
    "OnlineEngine",
    "OnlinePolicy",
    "POLICIES",
    "ServeReport",
    "StormSpec",
    "Trace",
    "TraceEvent",
    "VirtualClock",
    "as_trace",
    "fleet_summary",
    "generate_trace",
    "read_trace",
    "resolve_policy",
    "trace_cell_id",
    "write_trace",
]
