"""The virtual clock every online run ticks on.

Simulated time is just a float that only ever moves forward; wrapping it in a tiny
object keeps the monotonicity invariant in one place (an event popped out of order
is a bug in the queue, not something to silently absorb) and gives the engine one
``now`` to stamp records with — which is why replayed stores can be byte-identical:
nothing in an online run ever reads the wall clock.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic simulated time (seconds since trace start)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, time: float) -> float:
        """Move to ``time`` (which must not be in the past); returns the new now."""
        if time < self._now:
            raise ValueError(
                f"virtual clock cannot run backwards ({time:g} < {self._now:g}); "
                "events must be popped in (time, seq) order"
            )
        self._now = float(time)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"VirtualClock(now={self._now:g})"
