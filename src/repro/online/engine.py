"""The online serving loop: a trace of arriving jobs onto a fleet of wafers.

:class:`OnlineEngine` is a deterministic discrete-event simulation.  Every trace
event (arrivals and faults) is pushed into the ``(time, seq)``-ordered
:class:`~repro.online.events.EventQueue` up front; the loop then pops events,
advances the :class:`~repro.online.clock.VirtualClock`, and reacts:

* **arrival** — the job joins the pending queue and the
  :class:`~repro.online.policy.OnlinePolicy` is asked to place work on idle
  wafers;
* **fault** — the wafer's :class:`~repro.hardware.faults.FaultModel` folds the
  event in.  A hard fail (``die_fail``/``link_fail``) *preempts* the running job
  back into the queue (it restarts from scratch — wafer-scale training state is
  gone); a degrade or repair re-times the running job's completion from its
  accrued remaining work at the wafer's new effective speed; a wafer at speed 0
  stalls until repaired;
* **completion** — validated against a per-wafer epoch counter (bumped on every
  preempt/re-time, so stale completions are dropped), then the job's metrics row
  streams into the result store and the wafer picks up the next placement.

Placements are priced through the paper's own scheduler —
:meth:`CentralScheduler.best` on the session's shared evaluation cache — and the
engine memoizes one price per distinct ``(wafer, workload)`` pair, which is what
lets thousands of scheduled jobs amortize a handful of real searches (the
``jobs_per_sec`` bench gate).  All timestamps in stored rows are *virtual*, so
serving the same trace twice writes byte-identical stores; a warm or cold worker
pool cannot change rows either, because pool pricing is pure memoization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import fingerprint
from repro.hardware.faults import FaultEvent, FaultModel
from repro.obs import tracer as _obs
from repro.online.clock import VirtualClock
from repro.online.events import EventQueue
from repro.online.metrics import JobMetrics, fleet_summary
from repro.online.policy import OnlinePolicy, resolve_policy
from repro.online.trace import JobRequest, Trace, as_trace

__all__ = ["OnlineEngine", "ServeReport"]

#: Hard fault kinds: the running job is preempted, not merely slowed.
_PREEMPTING = ("die_fail", "link_fail")


@dataclass
class _Pending:
    """A job admitted but not currently running (the policy's pending view)."""

    job: JobRequest
    arrival: float
    seq: int
    deadline_abs: Optional[float]


@dataclass
class _Wafer:
    """One fleet wafer's live state (the policy's idle view exposes a subset)."""

    index: int
    name: str
    config: Any  # resolved WaferConfig
    faults: FaultModel = field(default_factory=FaultModel)
    speed: float = 1.0
    #: Bumped on every preemption/re-time; completions carry the epoch they were
    #: scheduled under and are dropped when it no longer matches.
    epoch: int = 0
    running: Optional[_Pending] = None
    #: Nominal seconds of work left on the running job (accrued at speed changes).
    work_remaining: float = 0.0
    #: Virtual instant ``work_remaining`` was last accrued at.
    last_update: float = 0.0
    busy_since: float = 0.0
    busy_s: float = 0.0
    last_workload_key: Optional[str] = None

    def accrue(self, now: float) -> None:
        """Fold elapsed progress at the current speed into ``work_remaining``."""
        if self.running is not None:
            elapsed = max(0.0, now - self.last_update)
            self.work_remaining = max(0.0, self.work_remaining - elapsed * self.speed)
        self.last_update = now


@dataclass
class ServeReport:
    """What one :meth:`OnlineEngine.serve` run produced (all times virtual)."""

    trace: str
    fingerprint: str
    policy: str
    fleet: List[str]
    jobs: int
    completed: int
    failed: int
    slo_misses: int
    preemptions: int
    makespan_s: float
    util: float
    rows_written: int
    rows_skipped: int
    prices: int
    price_hits: int
    job_metrics: List[JobMetrics]
    summary: Any  # the kind="trace_fleet" RunResult

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready summary (per-job detail lives in the result store)."""
        return {
            "trace": self.trace,
            "fingerprint": self.fingerprint,
            "policy": self.policy,
            "fleet": list(self.fleet),
            "jobs": self.jobs,
            "completed": self.completed,
            "failed": self.failed,
            "slo_misses": self.slo_misses,
            "preemptions": self.preemptions,
            "makespan_s": self.makespan_s,
            "util": self.util,
            "rows_written": self.rows_written,
            "rows_skipped": self.rows_skipped,
            "prices": self.prices,
            "price_hits": self.price_hits,
            "metrics": dict(self.summary.metrics),
        }

    def summary_line(self) -> str:
        """One human line for CLI output."""
        return (
            f"{self.trace or self.fingerprint}  policy={self.policy}  "
            f"jobs={self.jobs} ok={self.completed} failed={self.failed} "
            f"slo_miss={self.slo_misses} preempt={self.preemptions}  "
            f"makespan={self.makespan_s:.1f}s util={self.util:.1%}  "
            f"rows={self.rows_written}(+{self.rows_skipped} resumed)"
        )


class OnlineEngine:
    """Serve traces against a fleet on one session's cache and pool.

    ``fleet`` overrides the trace's own fleet (wafer registry names); ``store``
    receives one row per job plus a closing fleet-summary row, keyed by
    :func:`~repro.online.metrics.trace_cell_id` under a run key that covers the
    trace content, the fleet and the policy — so re-serving the same scenario
    resumes (``resume=True`` skips ids already stored) while a different policy
    or fleet writes fresh rows.  ``flush_every`` batches store writes (1 = true
    write-through); batching only affects I/O, never row content or order.
    """

    def __init__(
        self,
        session,
        *,
        fleet: Optional[List[str]] = None,
        policy: Union[str, OnlinePolicy] = "fcfs",
        store=None,
        resume: bool = True,
        flush_every: int = 1,
        max_tp: int = 0,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.session = session
        self.fleet_override = list(fleet) if fleet is not None else None
        self.policy = resolve_policy(policy)
        self.store = store
        self.resume = resume
        self.flush_every = flush_every
        self.max_tp = max_tp
        # Pricing memo: (wafer name, workload key) -> iteration_time | None.
        self._prices: Dict[Tuple[str, str], Optional[float]] = {}
        self._price_hits = 0
        self._schedulers: Dict[str, CentralScheduler] = {}
        self._workloads: Dict[str, Any] = {}

    # ------------------------------------------------------------------ pricing
    def _workload(self, job: JobRequest):
        key = job.workload_key()
        if key not in self._workloads:
            from repro.api import registry  # late: avoids import cycles

            self._workloads[key] = registry.resolve_workload(job.workload)
        return self._workloads[key]

    def _price(self, wafer: _Wafer, job: JobRequest) -> Optional[float]:
        """Healthy-wafer seconds per iteration for this workload (``None`` = infeasible).

        One real :meth:`CentralScheduler.best` search per distinct
        ``(wafer, workload)`` pair; every further job is a dictionary hit.
        """
        key = (wafer.name, job.workload_key())
        cached = self._prices.get(key, _MISSING)
        if cached is not _MISSING:
            self._price_hits += 1
            return cached
        scheduler = self._schedulers.get(wafer.name)
        if scheduler is None:
            scheduler = CentralScheduler(
                wafer.config, session=self.session, max_tp=self.max_tp
            )
            self._schedulers[wafer.name] = scheduler
        record = scheduler.best(self._workload(job), session=self.session)
        price = record.result.iteration_time if record is not None else None
        self._prices[key] = price
        return price

    # ------------------------------------------------------------------ serving
    def serve(self, trace: Union[Trace, str]) -> ServeReport:
        """Run one trace to completion and return the :class:`ServeReport`."""
        trace = as_trace(trace)
        fleet = self.fleet_override if self.fleet_override is not None else list(trace.fleet)
        if not fleet:
            raise ValueError(
                "the trace names no fleet and no fleet= override was given"
            )
        for event in trace.events:
            if event.kind == "fault" and event.wafer >= len(fleet):
                raise ValueError(
                    f"fault event at t={event.time:g} targets wafer {event.wafer} "
                    f"but the serving fleet has only {len(fleet)} wafers"
                )
        from repro.api import registry  # late: avoids import cycles

        self._run_key = fingerprint(
            {"trace": trace.fingerprint, "fleet": fleet, "policy": self.policy.name}
        )[:16]
        self._wafers = [
            _Wafer(index=index, name=str(name), config=registry.resolve_wafer(name))
            for index, name in enumerate(fleet)
        ]
        self._pending: List[_Pending] = []
        self._metrics: Dict[str, JobMetrics] = {}
        self._queue = EventQueue()
        self._clock = VirtualClock()
        self._buffer: List[Tuple[str, Dict[str, Any]]] = []
        self._rows_written = 0
        self._rows_skipped = 0
        self._completed_ids = (
            self.store.completed_ids(include_failed=True)
            if self.resume and self.store is not None
            else set()
        )

        # Trace events first: pushed up front they hold the lowest seqs, so at an
        # equal instant they are handled before any engine-scheduled completion.
        admit_seq = 0
        for event in trace.events:
            if event.kind == "arrival":
                deadline = (
                    event.time + event.job.deadline_s
                    if event.job.deadline_s is not None
                    else None
                )
                self._queue.push(
                    event.time,
                    (
                        "arrival",
                        _Pending(
                            job=event.job,
                            arrival=event.time,
                            seq=admit_seq,
                            deadline_abs=deadline,
                        ),
                    ),
                )
                admit_seq += 1
            else:
                self._queue.push(event.time, ("fault", event.wafer, event.fault))

        while self._queue:
            time, _seq, payload = self._queue.pop()
            self._clock.advance(time)
            kind = payload[0]
            if kind == "arrival":
                self._on_arrival(payload[1])
            elif kind == "fault":
                self._on_fault(payload[1], payload[2])
            else:  # "complete"
                self._on_complete(payload[1], payload[2])

        self._drain_leftovers(trace)
        makespan = self._clock.now
        for wafer in self._wafers:  # close busy accounting for stalled runners
            if wafer.running is not None:
                wafer.busy_s += makespan - wafer.busy_since
                wafer.running = None
        jobs = list(self._metrics.values())
        summary = fleet_summary(
            jobs,
            fleet_size=len(self._wafers),
            busy_s=[wafer.busy_s for wafer in self._wafers],
            makespan=makespan,
            policy=self.policy.name,
            trace_fingerprint=self._run_key,
        )
        self._record(summary, spec={"trace": trace.fingerprint, "policy": self.policy.name})
        self._flush(force=True)
        return ServeReport(
            trace=trace.name,
            fingerprint=trace.fingerprint,
            policy=self.policy.name,
            fleet=[wafer.name for wafer in self._wafers],
            jobs=len(jobs),
            completed=sum(1 for job in jobs if job.status == "ok" and job.finish is not None),
            failed=sum(1 for job in jobs if job.status == "failed"),
            slo_misses=sum(1 for job in jobs if job.slo_miss),
            preemptions=sum(job.preemptions for job in jobs),
            makespan_s=makespan,
            util=float(summary.metrics["util"]),
            rows_written=self._rows_written,
            rows_skipped=self._rows_skipped,
            prices=len(self._prices),
            price_hits=self._price_hits,
            job_metrics=jobs,
            summary=summary,
        )

    # ------------------------------------------------------------------ handlers
    def _on_arrival(self, pending: _Pending) -> None:
        job = pending.job
        if job.id in self._metrics:
            raise ValueError(f"duplicate job id {job.id!r} in trace")
        self._metrics[job.id] = JobMetrics(
            job_id=job.id,
            workload_key=job.workload_key(),
            arrival=pending.arrival,
            iterations=job.iterations,
            deadline_abs=pending.deadline_abs,
        )
        self._pending.append(pending)
        self._dispatch()

    def _on_fault(self, wafer_index: int, event: FaultEvent) -> None:
        wafer = self._wafers[wafer_index]
        now = self._clock.now
        wafer.accrue(now)
        wafer.faults.apply_event(event)
        wafer.speed = wafer.faults.effective_speed(
            wafer.config.dies_x, wafer.config.dies_y
        )
        if wafer.running is not None:
            wafer.epoch += 1  # whatever was scheduled is now mistimed
            if event.kind in _PREEMPTING:
                pending = wafer.running
                metrics = self._metrics[pending.job.id]
                metrics.preemptions += 1
                _obs.count("online.preempt", tag=pending.job.id)
                wafer.busy_s += now - wafer.busy_since
                wafer.running = None
                # Restart from scratch: training state died with the die/link.
                self._pending.append(pending)
            elif wafer.speed > 0.0:
                self._queue.push(
                    now + wafer.work_remaining / wafer.speed,
                    ("complete", wafer.index, wafer.epoch),
                )
            # else: stalled at speed 0 — wait for a repair to re-time it.
        self._dispatch()

    def _on_complete(self, wafer_index: int, epoch: int) -> None:
        wafer = self._wafers[wafer_index]
        if wafer.epoch != epoch or wafer.running is None:
            return  # stale: the job was preempted or re-timed after scheduling
        now = self._clock.now
        pending = wafer.running
        metrics = self._metrics[pending.job.id]
        metrics.finish = now
        wafer.busy_s += now - wafer.busy_since
        wafer.last_workload_key = pending.job.workload_key()
        wafer.running = None
        wafer.work_remaining = 0.0
        self._record(metrics.to_run_result(self._run_key), job=pending.job)
        self._dispatch()

    # ------------------------------------------------------------------ placement
    def _dispatch(self) -> None:
        """Ask the policy to fill idle wafers until it declines (or nothing fits)."""
        while self._pending:
            idle = [
                wafer
                for wafer in self._wafers
                if wafer.running is None and wafer.speed > 0.0
            ]
            if not idle:
                return
            choice = self.policy.select(tuple(self._pending), tuple(idle))
            if choice is None:
                return
            job_index, wafer_index = choice
            if not (0 <= job_index < len(self._pending) and 0 <= wafer_index < len(idle)):
                raise ValueError(
                    f"policy {self.policy.name!r} selected out-of-range indices "
                    f"({job_index}, {wafer_index}) for {len(self._pending)} pending "
                    f"jobs and {len(idle)} idle wafers"
                )
            pending = self._pending.pop(job_index)
            self._place(pending, idle[wafer_index])

    def _place(self, pending: _Pending, wafer: _Wafer) -> None:
        now = self._clock.now
        metrics = self._metrics[pending.job.id]
        metrics.wafer = wafer.index
        metrics.wafer_name = wafer.name
        with _obs.span("online.place", tag=pending.job.id):
            price = self._price(wafer, pending.job)
        if price is None:
            # Every candidate pruned or OOM on this wafer: the job cannot run
            # there, and retrying elsewhere would make completion order depend on
            # policy internals — fail it deterministically instead.
            metrics.status = "failed"
            metrics.error = (
                f"workload is infeasible on wafer {wafer.name!r} "
                "(every (TP, PP) candidate pruned or OOM)"
            )
            self._record(metrics.to_run_result(self._run_key), job=pending.job)
            return
        metrics.iteration_time = price
        if metrics.start is None:
            metrics.start = now
        wafer.running = pending
        wafer.work_remaining = price * pending.job.iterations
        wafer.last_update = now
        wafer.busy_since = now
        self._queue.push(
            now + wafer.work_remaining / wafer.speed,
            ("complete", wafer.index, wafer.epoch),
        )

    def _drain_leftovers(self, trace: Trace) -> None:
        """Fail jobs the trace left stranded: never dispatched, or stalled forever."""
        now = self._clock.now
        for wafer in self._wafers:
            if wafer.running is not None and wafer.speed <= 0.0:
                metrics = self._metrics[wafer.running.job.id]
                metrics.status = "failed"
                metrics.error = (
                    f"wafer {wafer.name!r} was down (effective speed 0) when the "
                    "trace ended; the job never completed"
                )
                self._record(metrics.to_run_result(self._run_key), job=wafer.running.job)
        for pending in self._pending:
            metrics = self._metrics[pending.job.id]
            if metrics.status == "ok" and metrics.finish is None:
                metrics.status = "failed"
                metrics.error = (
                    "the trace ended with this job still queued "
                    f"(arrived t={pending.arrival:g}, never completed)"
                )
                self._record(metrics.to_run_result(self._run_key), job=pending.job)

    # ------------------------------------------------------------------ recording
    def _record(self, run, job: Optional[JobRequest] = None, spec=None) -> None:
        """Queue one row for the store (virtual ``written_at``; resume-aware skip)."""
        if self.store is None:
            return
        from repro.api.results import make_record

        if run.cell_id in self._completed_ids:
            self._rows_skipped += 1
            return
        record = make_record(run, None, now=self._clock.now)
        record["spec"] = (
            spec
            if spec is not None
            else {"trace": self._run_key, "job": job.to_dict() if job else None}
        )
        self._buffer.append((run.cell_id, record))
        self._rows_written += 1
        if len(self._buffer) >= self.flush_every:
            self._flush()

    def _flush(self, force: bool = False) -> None:
        if self.store is None or not self._buffer:
            return
        if force or len(self._buffer) >= self.flush_every:
            self.store.put_many(self._buffer)
            self._buffer = []


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
