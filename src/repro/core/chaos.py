"""Deterministic chaos harness for the fault-tolerant sweep runtime.

The paper's robustness study (§VI-D) injects die/link faults through a *seeded*
:class:`~repro.hardware.faults.FaultModel` so every degradation experiment replays
bit-for-bit.  This module applies the same discipline to the execution runtime
itself: :class:`ChaosMonkey` injects worker kills, task delays, spawn denials and
torn store appends at **deterministic points** (the Nth task of a worker, a specific
sweep cell, a bounded number of firings) instead of racey wall-clock timing, so
every recovery path in :class:`~repro.core.parallel_map.WorkerPool` and
:meth:`Session.sweep <repro.api.Session.sweep>` can be exercised under test::

    with ChaosMonkey(tmp_path) as chaos:
        chaos.kill(worker=1, at_task=3)          # SIGKILL-equivalent, fires once
        chaos.delay(0.5, tag=cell_id)            # stall that cell past its budget
        chaos.deny_spawns()                      # make every respawn fail
        list(session.sweep(spec))                # drive through the PUBLIC api

Mechanics: the monkey installs two hooks in :mod:`repro.core.parallel_map` — a
worker-side per-task hook (inherited by workers at fork time, so install the monkey
*before* the pool first maps) and a parent-side spawn hook.  Bounded injections
(``times=N``) claim **token files** in a scratch directory with ``O_CREAT|O_EXCL``,
which makes the budget atomic across every worker process and across respawns — a
respawned worker cannot re-fire a kill whose tokens are spent.  ``tag`` matches
against the ambient :func:`repro.core.runtime.task_tag` (a sweep stamps each cell's
``cell_id`` there), so faults can target *what* is running, not when.

Nothing here is imported by the runtime unless a test (or the chaos_smoke CI job)
asks for it; production pools run with both hooks unset.
"""

from __future__ import annotations

import os
import random
import sqlite3
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core import parallel_map

__all__ = ["ChaosMonkey", "KILL_EXIT_CODE", "tear_last_append"]

#: Exit status of a chaos-killed worker (distinguishable from real crashes in logs).
KILL_EXIT_CODE = 23


@dataclass
class _Injection:
    """One armed fault: where it fires and how often."""

    kind: str  # "kill" | "delay" | "drop" | "hb_delay" | "tear"
    at_task: int = 1  # fire on the worker's Nth matching task (1-based)
    tag: str = ""  # substring of the ambient task tag ("" matches everything)
    worker: Optional[int] = None  # restrict to one worker slot (None = any)
    times: Optional[int] = 1  # total firings across all processes (None = always)
    seconds: float = 0.0  # delay duration (kind == "delay")
    name: str = ""  # token-file prefix (unique per injection)
    #: Per-process count of matching tasks seen, keyed by worker index.  Forked
    #: workers inherit the current value and count on independently — deterministic,
    #: because chunk dispatch is deterministic.
    seen: dict = field(default_factory=dict)

    def matches(self, worker: int, tag: str) -> bool:
        if self.worker is not None and worker != self.worker:
            return False
        return self.tag in (tag or "")

    def due(self, worker: int) -> bool:
        count = self.seen.get(worker, 0) + 1
        self.seen[worker] = count
        return count >= self.at_task


class ChaosMonkey:
    """Seeded, token-bounded fault injector for the worker runtime.

    ``scratch_dir`` holds the claim tokens that bound each injection's firings; use
    a per-test temporary directory so runs never share budgets.  ``seed`` feeds
    :attr:`rng` for tests that want randomized-but-replayable fault points (e.g.
    ``chaos.kill(at_task=chaos.rng.randint(1, 8))``).
    """

    def __init__(self, scratch_dir: Optional[str] = None, seed: int = 0) -> None:
        self.scratch = str(scratch_dir) if scratch_dir else tempfile.mkdtemp(prefix="chaos-")
        os.makedirs(self.scratch, exist_ok=True)
        self.seed = seed
        self.rng = random.Random(seed)
        self._injections: List[_Injection] = []
        self._net: List[_Injection] = []
        self._deny_spawns: Optional[_Injection] = None
        self._installed = False

    # ------------------------------------------------------------------ arming
    def kill(
        self,
        *,
        worker: Optional[int] = None,
        at_task: int = 1,
        tag: str = "",
        times: Optional[int] = 1,
    ) -> "ChaosMonkey":
        """Arm a worker kill: the matching worker ``os._exit``\\ s mid-chunk.

        Indistinguishable from an OOM kill or segfault as far as the parent is
        concerned — the result pipe just goes EOF.
        """
        self._injections.append(
            _Injection(
                kind="kill",
                worker=worker,
                at_task=at_task,
                tag=tag,
                times=times,
                name=f"kill-{len(self._injections)}",
            )
        )
        return self

    def delay(
        self,
        seconds: float,
        *,
        worker: Optional[int] = None,
        at_task: int = 1,
        tag: str = "",
        times: Optional[int] = 1,
    ) -> "ChaosMonkey":
        """Arm a task delay: the matching task stalls ``seconds`` before running.

        Long enough a delay pushes the cell past its :class:`RetryPolicy` timeout,
        which is how the supervisor's kill-and-respawn path is tested.
        """
        self._injections.append(
            _Injection(
                kind="delay",
                worker=worker,
                at_task=at_task,
                tag=tag,
                times=times,
                seconds=seconds,
                name=f"delay-{len(self._injections)}",
            )
        )
        return self

    def deny_spawns(self, times: Optional[int] = None) -> "ChaosMonkey":
        """Make worker (re)spawns fail — the fork-bomb / ulimit-exhausted scenario.

        ``times=None`` denies every spawn from now on; a bounded count lets the
        first N respawns fail and later ones succeed.
        """
        self._deny_spawns = _Injection(kind="deny", times=times, name="deny-spawn")
        return self

    # ------------------------------------------------------------------ network faults
    def drop_connection(self, *, op: str = "", times: Optional[int] = 1) -> "ChaosMonkey":
        """Arm a fabric connection drop: the matching frame send raises
        ``ConnectionResetError`` before any bytes hit the wire.

        ``op`` restricts the fault to one fabric command (``"claim"``,
        ``"complete"``, ``"heartbeat"``, …; ``""`` matches any), which is how the
        client's bounded reconnect path is pinned to a deterministic point.  Fires
        on *whichever side* of the connection sends the matching frame next.
        """
        self._net.append(
            _Injection(kind="drop", tag=op, times=times, name=f"drop-{len(self._net)}")
        )
        return self

    def delay_heartbeat(
        self, seconds: float, *, times: Optional[int] = 1
    ) -> "ChaosMonkey":
        """Arm a heartbeat stall: the next heartbeat send sleeps ``seconds`` first.

        A stall longer than the coordinator's lease window turns a healthy host
        into a presumed-dead one — the lease-expiry/requeue path — without killing
        anything; a shorter stall makes a straggler.
        """
        self._net.append(
            _Injection(
                kind="hb_delay",
                tag="heartbeat",
                times=times,
                seconds=seconds,
                name=f"hb-delay-{len(self._net)}",
            )
        )
        return self

    def tear_frame(self, *, op: str = "", times: Optional[int] = 1) -> "ChaosMonkey":
        """Arm a torn mid-frame write: half the frame's bytes, then a dead socket.

        The wire-level twin of :func:`tear_last_append` — exactly what a SIGKILL
        between ``write`` and the newline leaves on a TCP stream.  The reader must
        treat the unterminated line as EOF (never a half-parsed command) and lease
        expiry must re-derive the lost transition.
        """
        self._net.append(
            _Injection(kind="tear", tag=op, times=times, name=f"tear-{len(self._net)}")
        )
        return self

    # ------------------------------------------------------------------ hooks
    def _claim(self, injection: _Injection) -> bool:
        """Atomically claim one firing token (cross-process, cross-respawn)."""
        if injection.times is None:
            return True
        for slot in range(injection.times):
            token = os.path.join(self.scratch, f"{injection.name}.{slot}")
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def claimed(self, kind: str = "") -> int:
        """How many tokens have been claimed so far (``kind`` filters by prefix)."""
        return sum(
            1 for name in os.listdir(self.scratch) if name.startswith(kind or "")
        )

    def _on_task(self, worker: int, task_no: int, tag: str) -> None:
        del task_no  # injections keep their own per-worker matching-task counters
        for injection in self._injections:
            if not injection.matches(worker, tag):
                continue
            if not injection.due(worker):
                continue
            if not self._claim(injection):
                continue
            if injection.kind == "delay":
                time.sleep(injection.seconds)
            elif injection.kind == "kill":
                os._exit(KILL_EXIT_CODE)

    def _on_spawn(self, worker: int) -> None:
        denial = self._deny_spawns
        if denial is None:
            return
        if self._claim(denial):
            raise OSError(f"chaos: spawn of worker {worker} denied")

    def _on_net(self, direction: str, op: str) -> Optional[str]:
        """Fabric frame hook (see :func:`repro.fabric.protocol.set_net_hook`).

        Token claims keep firings bounded across every process sharing the scratch
        directory, so a coordinator and its host subprocesses can all install a
        monkey over the same dir and the budget stays global.
        """
        if direction != "send":
            return None
        for injection in self._net:
            if injection.tag and injection.tag != op:
                continue
            if not self._claim(injection):
                continue
            if injection.kind == "drop":
                raise ConnectionResetError(f"chaos: dropped connection before {op or 'frame'}")
            if injection.kind == "hb_delay":
                time.sleep(injection.seconds)
                return None
            if injection.kind == "tear":
                return "tear"
        return None

    # ------------------------------------------------------------------ lifecycle
    def install(self) -> "ChaosMonkey":
        """Install the hooks.  Do this *before* the pool forks its workers."""
        parallel_map.set_task_hook(self._on_task)
        parallel_map.set_spawn_hook(self._on_spawn)
        # Unconditional: network faults are usually armed *after* entering the
        # context, the same way kill/delay are.  The hook is a no-op while no
        # network injection is armed.
        from repro.fabric import protocol as fabric_protocol

        fabric_protocol.set_net_hook(self._on_net)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            parallel_map.set_task_hook(None)
            parallel_map.set_spawn_hook(None)
            from repro.fabric import protocol as fabric_protocol

            fabric_protocol.set_net_hook(None)
            self._installed = False

    def __enter__(self) -> "ChaosMonkey":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


# ---------------------------------------------------------------------- store chaos
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def tear_last_append(path: str) -> bool:
    """Simulate a result-store writer killed mid-``append``.

    * **JSONL** — the last row is cut mid-line (no trailing newline), exactly the
      bytes a SIGKILL between ``write`` and the closing newline leaves behind;
    * **sqlite** — the newest row is rolled back, which is what sqlite's journal
      guarantees when a writer dies inside an uncommitted transaction.

    Either way the next load must heal: the torn cell is simply absent, so a
    resumed sweep re-prices exactly that cell and nothing else.  Returns ``False``
    when there was nothing to tear (missing or empty store).
    """
    if not os.path.exists(path):
        return False
    if str(path).lower().endswith(_SQLITE_SUFFIXES):
        conn = sqlite3.connect(path)
        try:
            row = conn.execute("SELECT max(rowid) FROM results").fetchone()
            if not row or row[0] is None:
                return False
            conn.execute("DELETE FROM results WHERE rowid = ?", (row[0],))
            conn.commit()
        finally:
            conn.close()
        return True
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.splitlines(keepends=True)
    # Skip the header (line 0); tear the last record roughly in half.
    if len(lines) < 2:
        return False
    last = lines[-1]
    torn = last[: max(1, len(last) // 2)].rstrip(b"\n")
    with open(path, "wb") as handle:
        handle.write(b"".join(lines[:-1]) + torn)
    return True
