"""Content-addressed evaluation cache for the plan-search hot path.

Every search loop in the reproduction — the GA (§IV-D), the central scheduler's
(TP, PP, strategy, collective) co-exploration and the die-granularity hardware DSE
(Fig. 25) — funnels through :meth:`Evaluator.evaluate`.  Those loops revisit identical
candidates constantly: GA elites survive unchanged between generations, crossover
produces exact clones of parents, and scheduler probes re-price the same (TP, PP) split
under several collectives that collapse to the same plan.

:class:`EvaluationCache` memoizes evaluation results behind a *content-addressed*
fingerprint of everything that determines the outcome:

* the wafer configuration (die geometry, DRAM, link bandwidths, fault state);
* the workload (model shape, batching, sequence length);
* the training plan (parallelism degrees, TP shape, collective, split strategy,
  recomputation config, stage placement, Mem_pairs, host offload).

Fingerprints are structural, not identity-based: two plans built independently but
describing the same strategy share one cache entry.  The cache is a bounded LRU and
exposes hit/miss counters so benchmarks can track search efficiency.
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "EvaluationCache",
    "CacheStats",
    "canonicalize",
    "combine_fingerprints",
    "fingerprint",
    "hardware_fingerprint",
    "evaluation_fingerprint",
]


# ---------------------------------------------------------------------- canonical form
def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a nested tuple of primitives with a deterministic repr.

    Handles the vocabulary the evaluator's inputs are built from: frozen (and mutable)
    dataclasses, enums, dicts, sets and sequences.  Floats are kept exact — the cache
    must never merge two plans whose byte volumes differ even in the last ulp.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        # hex() is lossless and avoids repr ambiguity across float formatting rules.
        return ("f", value.hex())
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((f.name, canonicalize(getattr(value, f.name))) for f in fields(value)),
        )
    if isinstance(value, dict):
        items = [(canonicalize(k), canonicalize(v)) for k, v in value.items()]
        return ("dict", tuple(sorted(items, key=repr)))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((canonicalize(v) for v in value), key=repr)))
    if isinstance(value, (tuple, list)):
        return tuple(canonicalize(v) for v in value)
    raise TypeError(f"cannot canonicalize {type(value).__name__} for fingerprinting")


def fingerprint(*values: Any) -> str:
    """SHA-256 content address of one or more canonicalizable values."""
    digest = hashlib.sha256()
    for value in values:
        digest.update(repr(canonicalize(value)).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def hardware_fingerprint(wafer, faults, fault_aware: bool) -> str:
    """Content address of the hardware half of an evaluation: wafer + fault state."""
    fault_state: Tuple = ()
    if faults is not None and not faults.is_empty:
        fault_state = (
            tuple(sorted((link, f.quality) for link, f in faults.link_faults.items())),
            tuple(sorted((die, f.throughput) for die, f in faults.die_faults.items())),
        )
    return fingerprint(wafer, fault_state, bool(fault_aware))


def evaluation_fingerprint(wafer, faults, fault_aware: bool, workload, plan) -> str:
    """The cache key of one :meth:`Evaluator.evaluate` call.

    Covers every input the evaluation depends on: the hardware (including the fault
    state and whether the scheduler is fault-aware), the workload and the full plan —
    recompute config, placement, mem-pairs, parallelism, collective, split strategy
    and host offload all flow in through the plan dataclass.
    """
    return combine_fingerprints(
        hardware_fingerprint(wafer, faults, fault_aware),
        fingerprint(workload),
        fingerprint(plan),
    )


def combine_fingerprints(*digests: str) -> str:
    """Merge component content addresses into one key (cheap — no canonicalization)."""
    merged = hashlib.sha256()
    for digest in digests:
        merged.update(digest.encode("ascii"))
        merged.update(b"\x00")
    return merged.hexdigest()


class CacheStats:
    """Mutable hit/miss accounting shared by cache users."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats(hits={self.hits}, misses={self.misses}, evictions={self.evictions})"


class EvaluationCache:
    """Bounded LRU cache from evaluation fingerprints to evaluation results.

    ``max_entries`` bounds memory for week-long DSE sweeps; 0 or ``None`` means
    unbounded.  The cache stores whatever the evaluator produced (an
    :class:`~repro.core.evaluator.EvaluationResult`), treating it as immutable.
    """

    def __init__(self, max_entries: Optional[int] = 65536) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        self.max_entries = max_entries or None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    # ------------------------------------------------------------------ dict protocol
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------ access
    def get(self, key: str) -> Optional[Any]:
        """Return the cached result for ``key``, counting a hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def peek(self, key: str) -> Optional[Any]:
        """Like :meth:`get` but without touching the counters or LRU order."""
        return self._entries.get(key)

    def put(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(self, key: str, compute) -> Any:
        """Return the cached value for ``key``, computing and storing it on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (the counters survive so long-run stats stay meaningful)."""
        self._entries.clear()

    # ------------------------------------------------------------------ reporting
    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate
