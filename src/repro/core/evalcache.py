"""Content-addressed evaluation cache for the plan-search hot path.

Every search loop in the reproduction — the GA (§IV-D), the central scheduler's
(TP, PP, strategy, collective) co-exploration and the die-granularity hardware DSE
(Fig. 25) — funnels through :meth:`Evaluator.evaluate`.  Those loops revisit identical
candidates constantly: GA elites survive unchanged between generations, crossover
produces exact clones of parents, and scheduler probes re-price the same (TP, PP) split
under several collectives that collapse to the same plan.

:class:`EvaluationCache` memoizes evaluation results behind a *content-addressed*
fingerprint of everything that determines the outcome:

* the wafer configuration (die geometry, DRAM, link bandwidths, fault state);
* the workload (model shape, batching, sequence length);
* the training plan (parallelism degrees, TP shape, collective, split strategy,
  recomputation config, stage placement, Mem_pairs, host offload).

Fingerprints are structural, not identity-based: two plans built independently but
describing the same strategy share one cache entry.  The cache is a bounded LRU and
exposes hit/miss counters so benchmarks can track search efficiency.

**Persistence.**  A cache can be attached to a :class:`CacheStore` backend (JSONL or
sqlite, see :func:`open_store`) so repeated DSE sweeps across *processes* start warm:
entries loaded from disk are reported in :attr:`CacheStats.loaded`, new results are
spilled with :meth:`EvaluationCache.flush`, and stores carry a versioned fingerprint
namespace — bumping :data:`CACHE_SCHEMA_VERSION` (or evaluating with a different
fingerprint vocabulary) invalidates stale stores instead of serving wrong results.
Corrupt rows or a truncated store degrade to a cold start, never an error.

**Scale-out.**  Worker processes evaluate against a private cache seeded from the
parent's entries (:meth:`seed`), and the parent merges each worker's freshly priced
entries back (:meth:`delta` / :meth:`absorb`), so one shared store serves a whole
multi-wafer or wafer×workload fan-out.  For *long-lived* workers (the persistent
:class:`~repro.core.parallel_map.WorkerPool`), entries carry monotonic sequence
numbers so both directions of that flow are delta-only: :meth:`export_since` ships
only entries priced after a per-worker watermark, and :meth:`take_carry` ships only
work done since the previous carry.  Very large warm stores can skip snapshot
shipping entirely with ``read_through=True`` on a sqlite store: entries are fetched
from the store file on demand instead of being loaded (or pickled) up front.
"""

from __future__ import annotations

import bisect
import enum
import hashlib
import importlib
import json
import os
import sqlite3
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs import tracer as _obs

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "EvaluationCache",
    "CacheStats",
    "CacheStore",
    "JsonlCacheStore",
    "SqliteCacheStore",
    "canonicalize",
    "combine_fingerprints",
    "default_namespace",
    "fingerprint",
    "hardware_fingerprint",
    "evaluation_fingerprint",
    "open_store",
]

#: Version of the fingerprint vocabulary + stored-value encoding.  Bump whenever either
#: changes incompatibly; stores written under a different version are discarded on load.
CACHE_SCHEMA_VERSION = 1


def default_namespace() -> str:
    """The namespace persisted stores are validated against on load."""
    return f"watos-evalcache-v{CACHE_SCHEMA_VERSION}"


# ---------------------------------------------------------------------- canonical form
def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a nested tuple of primitives with a deterministic repr.

    Handles the vocabulary the evaluator's inputs are built from: frozen (and mutable)
    dataclasses, enums, dicts, sets and sequences.  Floats are kept exact — the cache
    must never merge two plans whose byte volumes differ even in the last ulp.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        # hex() is lossless and avoids repr ambiguity across float formatting rules.
        return ("f", value.hex())
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((f.name, canonicalize(getattr(value, f.name))) for f in fields(value)),
        )
    if isinstance(value, dict):
        items = [(canonicalize(k), canonicalize(v)) for k, v in value.items()]
        return ("dict", tuple(sorted(items, key=repr)))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((canonicalize(v) for v in value), key=repr)))
    if isinstance(value, (tuple, list)):
        return tuple(canonicalize(v) for v in value)
    raise TypeError(f"cannot canonicalize {type(value).__name__} for fingerprinting")


def fingerprint(*values: Any) -> str:
    """SHA-256 content address of one or more canonicalizable values."""
    digest = hashlib.sha256()
    for value in values:
        digest.update(repr(canonicalize(value)).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def hardware_fingerprint(wafer, faults, fault_aware: bool) -> str:
    """Content address of the hardware half of an evaluation: wafer + fault state."""
    fault_state: Tuple = ()
    if faults is not None and not faults.is_empty:
        fault_state = (
            tuple(sorted((link, f.quality) for link, f in faults.link_faults.items())),
            tuple(sorted((die, f.throughput) for die, f in faults.die_faults.items())),
        )
    return fingerprint(wafer, fault_state, bool(fault_aware))


def evaluation_fingerprint(wafer, faults, fault_aware: bool, workload, plan) -> str:
    """The cache key of one :meth:`Evaluator.evaluate` call.

    Covers every input the evaluation depends on: the hardware (including the fault
    state and whether the scheduler is fault-aware), the workload and the full plan —
    recompute config, placement, mem-pairs, parallelism, collective, split strategy
    and host offload all flow in through the plan dataclass.
    """
    return combine_fingerprints(
        hardware_fingerprint(wafer, faults, fault_aware),
        fingerprint(workload),
        fingerprint(plan),
    )


def combine_fingerprints(*digests: str) -> str:
    """Merge component content addresses into one key (cheap — no canonicalization)."""
    merged = hashlib.sha256()
    for digest in digests:
        merged.update(digest.encode("ascii"))
        merged.update(b"\x00")
    return merged.hexdigest()


# ---------------------------------------------------------------------- value codec
# Stored values are encoded to a JSON-compatible form that round-trips the evaluator's
# result dataclasses *exactly* (Python's json floats are shortest-round-trip, and the
# module accepts Infinity/NaN), so a warm-started search is bit-identical to a cold one.


def encode_value(value: Any) -> Any:
    """Encode ``value`` into JSON-serialisable form (markers for non-JSON types)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": _type_ref(type(value)), "name": value.name}
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": _type_ref(type(value)),
            "fields": {f.name: encode_value(getattr(value, f.name)) for f in fields(value)},
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        encoded = [encode_value(v) for v in value]
        return {"__set__": sorted(encoded, key=repr)}
    if isinstance(value, dict):
        return {"__map__": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    raise TypeError(f"cannot encode {type(value).__name__} for cache persistence")


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`; raises ``ValueError`` on malformed input."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, dict):
        if "__enum__" in encoded:
            cls = _resolve_type(encoded["__enum__"])
            if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
                raise ValueError(f"{encoded['__enum__']} is not an enum")
            return cls[encoded["name"]]
        if "__dataclass__" in encoded:
            cls = _resolve_type(encoded["__dataclass__"])
            if not is_dataclass(cls):
                raise ValueError(f"{encoded['__dataclass__']} is not a dataclass")
            kwargs = {name: decode_value(v) for name, v in encoded["fields"].items()}
            return cls(**kwargs)
        if "__tuple__" in encoded:
            return tuple(decode_value(v) for v in encoded["__tuple__"])
        if "__list__" in encoded:
            return [decode_value(v) for v in encoded["__list__"]]
        if "__set__" in encoded:
            return frozenset(decode_value(v) for v in encoded["__set__"])
        if "__map__" in encoded:
            return {decode_value(k): decode_value(v) for k, v in encoded["__map__"]}
        raise ValueError(f"unknown cache encoding markers: {sorted(encoded)}")
    raise ValueError(f"cannot decode {type(encoded).__name__}")


def _type_ref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_type(ref: str) -> type:
    module_name, _, qualname = ref.partition(":")
    if not module_name.startswith("repro") and module_name != "builtins":
        raise ValueError(f"refusing to resolve type outside the repro package: {ref}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


# ---------------------------------------------------------------------- disk stores
class CacheStore:
    """Backend interface for persisting cache entries across processes.

    A store is namespaced: :meth:`load` returns entries only when the on-disk namespace
    matches (otherwise the stale store is discarded), and every implementation must
    survive a corrupt or truncated file by degrading to an empty store.  Rows that fail
    to decode are skipped and counted in :attr:`load_errors`.
    """

    #: Rows skipped during the most recent :meth:`load` (corruption / stale classes).
    load_errors: int = 0
    #: Whether :meth:`get` answers single-key lookups without a full :meth:`load`
    #: (required for the read-through mode of :class:`EvaluationCache`).
    supports_point_lookup: bool = False

    def __init__(self, path: str, namespace: Optional[str] = None) -> None:
        self.path = str(path)
        self.namespace = namespace or default_namespace()
        #: ``priced_at`` unix timestamp per key, refreshed by :meth:`load`.  Rows
        #: written before timestamps existed report 0.0 (treated as oldest by the
        #: age-based eviction in :meth:`EvaluationCache.compact`).
        self.row_times: Dict[str, float] = {}

    def load(self) -> Dict[str, Any]:
        """All valid entries, or ``{}`` for a missing/corrupt/foreign-namespace store."""
        raise NotImplementedError

    def get(self, key: str) -> Optional[Any]:
        """Point lookup of one entry, or ``None`` (unsupported, missing or corrupt)."""
        return None

    def prepare(self) -> None:
        """Validate/repair the on-disk namespace without loading every entry.

        Read-through caches call this instead of :meth:`load`; the default is a no-op
        because stores without point lookups are always fully loaded anyway.
        """

    def append(
        self, entries: Mapping[str, Any], times: Optional[Mapping[str, float]] = None
    ) -> None:
        """Persist new entries (later appends with the same key win on load).

        ``times`` carries per-key ``priced_at`` timestamps; keys without one are
        stamped with the current time.
        """
        raise NotImplementedError

    def replace_all(
        self, entries: Mapping[str, Any], times: Optional[Mapping[str, float]] = None
    ) -> None:
        """Atomically rewrite the store to exactly ``entries`` (compaction)."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any held resources (sqlite connections)."""

    def __enter__(self) -> "CacheStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _move_aside(path: str) -> None:
    """Preserve an unreadable/foreign file at ``<path>.corrupt`` instead of deleting it.

    A mistyped ``--cache`` path must never destroy user data: recovery means starting
    cold, not truncating whatever sat at the path.
    """
    if os.path.exists(path):
        os.replace(path, path + ".corrupt")


class JsonlCacheStore(CacheStore):
    """Append-only JSONL spill: one header line, then one ``{"k":…, "v":…}`` row each.

    Append-only writes make concurrent sweeps safe-ish (a torn last line is skipped on
    the next load) and keep the warm-start path a single sequential read.
    """

    _HEADER_FORMAT = "watos-evalcache-jsonl"

    def __init__(self, path: str, namespace: Optional[str] = None) -> None:
        super().__init__(path, namespace)
        #: Set when load() found a file that is not ours; the first write moves it
        #: aside to ``<path>.corrupt`` rather than truncating it in place.
        self._foreign_file = False

    def load(self) -> Dict[str, Any]:
        self.load_errors = 0
        self._foreign_file = False
        self.row_times = {}
        if not os.path.exists(self.path):
            return {}
        entries: Dict[str, Any] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                header_line = handle.readline()
                header = self._parse_header(header_line)
                if header is None:
                    # Not an evalcache file at all: leave it untouched until a write
                    # actually needs the path, then preserve it at <path>.corrupt.
                    self._foreign_file = True
                    return {}
                if header.get("namespace") != self.namespace:
                    # Our file, stale namespace: safe to reset in place.
                    self.replace_all({})
                    return {}
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                        key, value = str(row["k"]), decode_value(row["v"])
                        # Later duplicates win in *position* too: a re-appended key
                        # must rank as newest for compact(max_entries=) eviction.
                        entries.pop(key, None)
                        entries[key] = value
                        # Pre-timestamp rows report 0.0 (oldest) to age eviction.
                        self.row_times[key] = float(row.get("t", 0.0))
                    except (ValueError, KeyError, TypeError, AttributeError, ImportError):
                        self.load_errors += 1
        except OSError:
            return {}
        return entries

    def _parse_header(self, header_line: str) -> Optional[Dict]:
        try:
            header = json.loads(header_line)
        except ValueError:
            return None
        if isinstance(header, dict) and header.get("format") == self._HEADER_FORMAT:
            return header
        return None

    def _header(self) -> str:
        return json.dumps({"format": self._HEADER_FORMAT, "namespace": self.namespace})

    @staticmethod
    def _row(key: str, value: Any, priced_at: float) -> str:
        return json.dumps({"k": key, "v": encode_value(value), "t": priced_at})

    def append(
        self, entries: Mapping[str, Any], times: Optional[Mapping[str, float]] = None
    ) -> None:
        if not entries:
            return
        if self._foreign_file:
            _move_aside(self.path)
            self._foreign_file = False
        now = time.time()
        times = times or {}
        fresh = not os.path.exists(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            if fresh:
                handle.write(self._header() + "\n")
            for key, value in entries.items():
                priced = times.get(key)
                handle.write(self._row(key, value, now if priced is None else priced) + "\n")

    def replace_all(
        self, entries: Mapping[str, Any], times: Optional[Mapping[str, float]] = None
    ) -> None:
        if self._foreign_file:
            _move_aside(self.path)
            self._foreign_file = False
        now = time.time()
        times = times or {}
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(prefix=".evalcache-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self._header() + "\n")
                for key, value in entries.items():
                    priced = times.get(key)
                    handle.write(self._row(key, value, now if priced is None else priced) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise


class SqliteCacheStore(CacheStore):
    """Sqlite spill for large sweeps: keyed upserts, no whole-file rewrite on append."""

    supports_point_lookup = True

    def __init__(self, path: str, namespace: Optional[str] = None) -> None:
        super().__init__(path, namespace)
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------ connection
    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = sqlite3.connect(self.path)
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries "
                "(key TEXT PRIMARY KEY, value TEXT, priced_at REAL DEFAULT 0)"
            )
            # Stores written before timestamps existed lack the column; migrate in
            # place (their rows report priced_at 0 — oldest — to age eviction).
            columns = {
                row[1] for row in self._conn.execute("PRAGMA table_info(entries)")
            }
            if "priced_at" not in columns:
                self._conn.execute(
                    "ALTER TABLE entries ADD COLUMN priced_at REAL DEFAULT 0"
                )
            self._conn.commit()
        return self._conn

    def _reset(self) -> None:
        """Preserve an unreadable database file at ``<path>.corrupt`` and start fresh."""
        self.close()
        _move_aside(self.path)

    def __getstate__(self):
        # sqlite connections are process-local; workers reconnect lazily if they
        # ever touch the store (they normally never do — see EvaluationCache).
        state = self.__dict__.copy()
        state["_conn"] = None
        return state

    def _stored_namespace(self, conn: sqlite3.Connection) -> Optional[str]:
        row = conn.execute("SELECT value FROM meta WHERE key = 'namespace'").fetchone()
        return row[0] if row else None

    # ------------------------------------------------------------------ CacheStore
    def load(self) -> Dict[str, Any]:
        self.load_errors = 0
        self.row_times = {}
        if not os.path.exists(self.path):
            return {}
        try:
            conn = self._connect()
            stored = self._stored_namespace(conn)
            if stored is not None and stored != self.namespace:
                conn.execute("DELETE FROM entries")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)", (self.namespace,)
                )
                conn.commit()
                return {}
            rows = conn.execute("SELECT key, value, priced_at FROM entries").fetchall()
        except sqlite3.DatabaseError:
            self._reset()
            return {}
        entries: Dict[str, Any] = {}
        for key, blob, priced_at in rows:
            try:
                entries[str(key)] = decode_value(json.loads(blob))
                self.row_times[str(key)] = float(priced_at or 0.0)
            except (ValueError, KeyError, TypeError, AttributeError, ImportError):
                self.load_errors += 1
        return entries

    def prepare(self) -> None:
        """Namespace validation for read-through use: repair, never a full row scan."""
        if not os.path.exists(self.path):
            return
        try:
            conn = self._connect()
            stored = self._stored_namespace(conn)
            if stored is not None and stored != self.namespace:
                conn.execute("DELETE FROM entries")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)", (self.namespace,)
                )
                conn.commit()
        except sqlite3.DatabaseError:
            self._reset()

    def get(self, key: str) -> Optional[Any]:
        try:
            conn = self._connect()
            row = conn.execute(
                "SELECT value FROM entries WHERE key = ?", (str(key),)
            ).fetchone()
        except sqlite3.DatabaseError:
            return None
        if row is None:
            return None
        try:
            return decode_value(json.loads(row[0]))
        except (ValueError, KeyError, TypeError, AttributeError, ImportError):
            self.load_errors += 1
            return None

    def append(
        self, entries: Mapping[str, Any], times: Optional[Mapping[str, float]] = None
    ) -> None:
        if not entries:
            return
        try:
            conn = self._connect()
        except sqlite3.DatabaseError:
            self._reset()
            conn = self._connect()
        now = time.time()
        times = times or {}
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)", (self.namespace,)
        )
        conn.executemany(
            "INSERT OR REPLACE INTO entries VALUES (?, ?, ?)",
            [
                (
                    key,
                    json.dumps(encode_value(value)),
                    now if times.get(key) is None else times[key],
                )
                for key, value in entries.items()
            ],
        )
        conn.commit()

    def replace_all(
        self, entries: Mapping[str, Any], times: Optional[Mapping[str, float]] = None
    ) -> None:
        try:
            conn = self._connect()
        except sqlite3.DatabaseError:
            self._reset()
            conn = self._connect()
        conn.execute("DELETE FROM entries")
        conn.execute(
            "INSERT OR REPLACE INTO meta VALUES ('namespace', ?)", (self.namespace,)
        )
        conn.commit()
        self.append(entries, times)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_store(path: str, namespace: Optional[str] = None) -> CacheStore:
    """Pick a store backend from the path suffix (sqlite for ``.sqlite/.db``, else JSONL)."""
    if str(path).lower().endswith(_SQLITE_SUFFIXES):
        return SqliteCacheStore(path, namespace)
    return JsonlCacheStore(path, namespace)


class CacheStats:
    """Mutable hit/miss accounting shared by cache users."""

    __slots__ = ("hits", "misses", "evictions", "loaded", "flushed", "shipped", "store_hits")

    #: Counter fields folded by :meth:`add_counts` and shipped in worker carries.
    COUNT_FIELDS = ("hits", "misses", "evictions", "loaded", "flushed", "shipped", "store_hits")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries warm-started from a persistent store.
        self.loaded = 0
        #: Entries written back to the persistent store.
        self.flushed = 0
        #: Entries shipped to pool workers via watermarked incremental export —
        #: the delta-sync replacement for pickling a full snapshot per fan-out.
        self.shipped = 0
        #: Lookups answered by the read-through store instead of resident memory.
        self.store_hits = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def add_counts(self, counts: Mapping[str, float]) -> None:
        """Fold a worker's exported counters into this one (hit_rate is derived)."""
        for name in self.COUNT_FIELDS:
            setattr(self, name, getattr(self, name) + int(counts.get(name, 0)))

    def as_dict(self) -> Dict[str, float]:
        counts: Dict[str, float] = {name: getattr(self, name) for name in self.COUNT_FIELDS}
        counts["hit_rate"] = self.hit_rate
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, loaded={self.loaded})"
        )


class EvaluationCache:
    """Bounded LRU cache from evaluation fingerprints to evaluation results.

    ``max_entries`` bounds memory for week-long DSE sweeps; 0 or ``None`` means
    unbounded.  The cache stores whatever the evaluator produced (an
    :class:`~repro.core.evaluator.EvaluationResult`), treating it as immutable.

    With ``store`` attached (a :class:`CacheStore` or a path accepted by
    :func:`open_store`), construction warm-starts from disk and :meth:`flush` spills
    every entry priced since the last flush — including entries the LRU has since
    evicted, so disk coverage can exceed the in-memory bound.

    ``read_through=True`` on a store with point lookups (sqlite) skips the up-front
    load entirely: misses fall through to the store file, and entries adopted that
    way stay out of :meth:`delta`/:meth:`export_since` (every process sharing the
    store can fetch them itself).  Stores without point lookups (JSONL) degrade to
    the ordinary full warm start.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 65536,
        store: Optional[object] = None,
        namespace: Optional[str] = None,
        read_through: bool = False,
    ) -> None:
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        self.max_entries = max_entries or None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        #: Keys adopted via :meth:`seed` (warm start) — excluded from :meth:`delta`.
        self._seeded: set = set()
        #: Entries priced since the last :meth:`flush` (survives LRU eviction).
        self._dirty: Dict[str, Any] = {}
        #: Monotonic pricing sequence: every entry adopted via :meth:`put`/:meth:`seed`
        #: gets the next number, so :meth:`export_since` can ship watermark deltas.
        self._seq = 0
        self._entry_seq: Dict[str, int] = {}
        self._log_seqs: List[int] = []
        self._log_keys: List[str] = []
        #: ``priced_at`` unix timestamp per resident/dirty key — flushed to the store
        #: so :meth:`compact` can expire rows by age (``max_age_s``).
        self._priced_at: Dict[str, float] = {}
        #: Counter snapshot at the previous :meth:`take_carry` (incremental carries).
        self._carry_counts: Dict[str, float] = {}
        #: Keys priced since the previous :meth:`take_carry` — a key set, not a
        #: value dict, so long-lived worker shards carry in O(delta) without this
        #: cache pinning evicted values; :meth:`flush` prunes spilled keys so the
        #: set stays bounded on store-backed parents that never carry.
        self._unshipped: set = set()
        #: Guards every structural mutation: the two-level sweep scheduler runs
        #: cells on concurrent threads that all price against (and flush) the one
        #: session cache.  Reentrant because flush/compact/close nest.
        self._lock = threading.RLock()
        self.read_through = False
        self.store: Optional[CacheStore] = (
            open_store(store, namespace) if isinstance(store, (str, os.PathLike)) else store
        )
        if self.store is not None:
            if read_through and self.store.supports_point_lookup:
                self.read_through = True
                self.store.prepare()
            else:
                loaded = self.store.load()
                self.seed(loaded)
                # Warm-started entries keep the timestamp of their original pricing,
                # so repeated warm runs never rejuvenate old rows.
                self._priced_at.update(self.store.row_times)
                self.stats.loaded = len(loaded)

    # ------------------------------------------------------------------ dict protocol
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------ access
    def get(self, key: str) -> Optional[Any]:
        """Return the cached result for ``key``, counting a hit or miss.

        In read-through mode a memory miss falls through to the attached store; an
        entry found there is adopted as seeded (it is the store's, not this cache's
        pricing) and counted as both a hit and a :attr:`CacheStats.store_hits`.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if _obs.enabled:
                    _obs.count("cache.hit")
                return entry
            if self.read_through and self.store is not None:
                entry = self.store.get(key)
                if entry is not None:
                    self._adopt_from_store(key, entry)
                    self.stats.hits += 1
                    self.stats.store_hits += 1
                    if _obs.enabled:
                        _obs.count("cache.hit")
                    return entry
            self.stats.misses += 1
            if _obs.enabled:
                _obs.count("cache.miss")
            return None

    def peek(self, key: str) -> Optional[Any]:
        """Like :meth:`get` but without touching the counters or LRU order."""
        return self._entries.get(key)

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._dirty[key] = value
            self._unshipped.add(key)
            self._priced_at[key] = time.time()
            self._assign_seq(key)
            if self.max_entries is not None and len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._entry_seq.pop(evicted, None)
                if evicted not in self._dirty:
                    self._priced_at.pop(evicted, None)
                self.stats.evictions += 1

    def get_or_compute(self, key: str, compute) -> Any:
        """Return the cached value for ``key``, computing and storing it on a miss.

        ``compute`` runs *outside* the lock: pricing is pure, so two threads
        racing on the same miss at worst compute the value twice and store the
        same bits — whereas holding the lock through a slow pricing call would
        serialize every concurrent sweep cell.
        """
        entry = self.get(key)
        if entry is not None:
            return entry
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (the counters survive so long-run stats stay meaningful).

        The pricing sequence is *not* reset: it must stay monotonic so watermarks
        held by long-lived pool workers never see it regress.
        """
        with self._lock:
            self._entries.clear()
            self._dirty.clear()
            self._seeded.clear()
            self._unshipped.clear()
            self._entry_seq.clear()
            self._log_seqs.clear()
            self._log_keys.clear()
            self._priced_at.clear()

    # ------------------------------------------------------------------ sequence log
    def _assign_seq(self, key: str) -> None:
        self._seq += 1
        self._entry_seq[key] = self._seq
        self._log_seqs.append(self._seq)
        self._log_keys.append(key)
        # Re-priced keys leave dead rows behind; rebuild once they dominate the log.
        if len(self._log_seqs) > 1024 and len(self._log_seqs) > 4 * len(self._entry_seq):
            live = sorted((seq, key) for key, seq in self._entry_seq.items())
            self._log_seqs = [seq for seq, _ in live]
            self._log_keys = [key for _, key in live]

    def _adopt_from_store(self, key: str, value: Any) -> None:
        """Adopt a read-through entry: resident and seeded, but never exported."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._seeded.add(key)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._entry_seq.pop(evicted, None)
            self.stats.evictions += 1

    # ------------------------------------------------------------------ scale-out
    def __getstate__(self):
        """Pickled caches (shipped to pool workers) drop the store.

        Stores hold process-local resources (file handles, sqlite connections) and
        workers must never write them — deltas flow back through the parent, which
        keeps the one live store.
        """
        state = self.__dict__.copy()
        state["store"] = None
        state["read_through"] = False
        # Locks are process-local (and unpicklable); the worker recreates one.
        state["_lock"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def seed(self, entries: Mapping[str, Any]) -> int:
        """Adopt warm entries without touching hit/miss counters or the dirty set.

        Used for store warm-starts and for handing a parent cache's contents to a
        worker process; seeded keys are excluded from :meth:`delta` so workers only
        ship freshly priced results back.  ``max_entries`` still bounds the in-memory
        result: when a persisted store has outgrown the bound, only the newest
        entries stay resident (the store keeps everything).
        """
        with self._lock:
            adopted = 0
            for key, value in entries.items():
                if key not in self._entries:
                    self._entries[key] = value
                    self._assign_seq(key)
                    adopted += 1
                self._seeded.add(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    evicted, _ = self._entries.popitem(last=False)
                    self._entry_seq.pop(evicted, None)
                    self.stats.evictions += 1
            return adopted

    def export(self) -> Dict[str, Any]:
        """A plain-dict snapshot of the current entries (for seeding workers)."""
        with self._lock:
            return dict(self._entries)

    @property
    def sync_seq(self) -> int:
        """The current pricing sequence number — the watermark of a fresh export."""
        return self._seq

    def export_since(self, watermark: int) -> Tuple[Dict[str, Any], int]:
        """Resident entries adopted after ``watermark`` plus the new watermark.

        This is the parent→worker half of the delta-only sync: a pool tracks one
        watermark per worker and ships ``export_since(previous)`` instead of a full
        :meth:`export` snapshot.  Monotonically advancing watermarks partition the
        entry stream — nothing is shipped twice, nothing is missed.  Entries the LRU
        has already evicted are skipped (the store, not the workers, keeps history),
        and read-through adoptions never appear (workers read the same store file).
        """
        with _obs.span("cache.sync", tag="export_since"), self._lock:
            if watermark >= self._seq:
                return {}, self._seq
            entries: Dict[str, Any] = {}
            start = bisect.bisect_right(self._log_seqs, watermark)
            for index in range(start, len(self._log_seqs)):
                key = self._log_keys[index]
                # Skip superseded log rows and evicted entries.
                if self._entry_seq.get(key) == self._log_seqs[index] and key in self._entries:
                    entries[key] = self._entries[key]
            return entries, self._seq

    def delta(self) -> Dict[str, Any]:
        """Entries priced by *this* cache instance: everything not seeded into it."""
        with self._lock:
            fresh = {k: v for k, v in self._entries.items() if k not in self._seeded}
            # Include dirty entries the LRU has already evicted — they were still
            # priced here and the parent/store wants them.
            for key, value in self._dirty.items():
                if key not in self._seeded:
                    fresh.setdefault(key, value)
            return fresh

    def absorb(self, delta: Mapping[str, Any]) -> int:
        """Merge a worker's delta; new entries count toward the next :meth:`flush`."""
        with self._lock:
            adopted = 0
            for key, value in delta.items():
                if key not in self._entries and key not in self._dirty:
                    self.put(key, value)
                    adopted += 1
            return adopted

    def carry(self) -> Dict[str, Any]:
        """What a worker ships back to the parent: its delta plus a counter snapshot."""
        return {"delta": self.delta(), "stats": self.stats.as_dict()}

    def take_carry(self) -> Dict[str, Any]:
        """The worker→parent half of the delta-only sync, for *long-lived* shards.

        Unlike :meth:`carry` (built for throwaway per-task caches), the shipped
        entries are marked as adopted afterwards and the counters are shipped as
        increments over the previous call, so a resident shard that survives many
        submissions never re-ships work or double-counts stats.  The delta comes
        from the side dict :meth:`put` maintains, so the cost is O(entries priced
        since the last carry), not O(cache) — per-submission carry cost must not
        grow with the life of the shard.
        """
        with _obs.span("cache.sync", tag="take_carry"), self._lock:
            delta: Dict[str, Any] = {}
            for key in self._unshipped:
                if key in self._seeded:
                    continue
                value = self._entries.get(key)
                if value is None:
                    value = self._dirty.get(key)  # priced here but already LRU-evicted
                if value is not None:
                    delta[key] = value
            self._unshipped.clear()
            counts = {name: getattr(self.stats, name) for name in CacheStats.COUNT_FIELDS}
            increment = {
                name: value - self._carry_counts.get(name, 0)
                for name, value in counts.items()
            }
            self._carry_counts = counts
            self._seeded.update(delta)
            return {"delta": delta, "stats": increment}

    def absorb_carry(self, carry: Optional[Mapping[str, Any]]) -> None:
        """Fold a worker's :meth:`carry` into this cache (entries and counters)."""
        if carry is None:
            return
        with self._lock:
            self.absorb(carry["delta"])
            self.stats.add_counts(carry["stats"])

    # ------------------------------------------------------------------ persistence
    def flush(self) -> int:
        """Spill entries priced since the last flush to the attached store."""
        with self._lock:
            if self.store is None or not self._dirty:
                return 0
            with _obs.span("cache.flush", tag=str(len(self._dirty))):
                self.store.append(
                    self._dirty,
                    {k: self._priced_at[k] for k in self._dirty if k in self._priced_at},
                )
            written = len(self._dirty)
            self.stats.flushed += written
            self._seeded.update(self._dirty)
            # Spilled keys can never be carried again (seeded); dropping them here
            # keeps the unshipped set bounded on parents that flush but never carry.
            self._unshipped.difference_update(self._dirty)
            # Timestamps of spilled keys the LRU has already evicted now live in the
            # store; dropping them keeps _priced_at bounded by the resident set on
            # long store-backed sweeps (put() keeps dirty-but-evicted stamps alive
            # only until this flush).
            for key in self._dirty:
                if key not in self._entries:
                    self._priced_at.pop(key, None)
            self._dirty.clear()
            return written

    def compact(
        self,
        max_entries: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Rewrite the attached store to exactly one row per surviving key.

        JSONL stores grow append-only — a re-priced or re-flushed key adds a row and
        only the *last* one wins on load — so week-long sweeps accumulate dead rows.
        Compaction folds that history through :meth:`CacheStore.replace_all` (later
        duplicates win, same rule as load).  In-memory entries are flushed first so
        freshly priced results are never lost, and they are re-appended last so the
        resident working set counts as newest.

        Two eviction knobs compose (age first, then size):

        * ``max_age_s`` expires rows whose ``priced_at`` timestamp is older than
          ``now - max_age_s`` (``now`` defaults to the current time).  Rows written
          before timestamps existed carry ``priced_at`` 0 and count as infinitely
          old — re-run the sweep once to stamp them.
        * ``max_entries`` keeps only the newest that many entries, oldest first out
          (append order for JSONL; load order for sqlite).

        Returns the number of entries the store holds afterwards.
        """
        with self._lock:
            if self.store is None:
                return 0
            self.flush()
            entries = self.store.load()
            times = dict(self.store.row_times)
            for key, value in self._entries.items():
                entries.pop(key, None)  # re-append so resident entries rank newest
                entries[key] = value
                if key in self._priced_at:
                    times[key] = self._priced_at[key]
            if max_age_s is not None:
                cutoff = (time.time() if now is None else now) - max_age_s
                for key in [k for k in entries if times.get(k, 0.0) < cutoff]:
                    del entries[key]
            if max_entries is not None and max_entries > 0 and len(entries) > max_entries:
                for key in list(entries)[: len(entries) - max_entries]:
                    del entries[key]
            self.store.replace_all(entries, {k: times[k] for k in entries if k in times})
            return len(entries)

    def close(self) -> None:
        """Flush and release the attached store (no-op without one)."""
        if self.store is not None:
            self.flush()
            self.store.close()

    def __enter__(self) -> "EvaluationCache":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ reporting
    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate
