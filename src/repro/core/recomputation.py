"""GCMR: globally coordinated memory-efficient recomputation (paper §IV-B, Alg. 2).

The scheduler decides, per pipeline stage, which operator units to recompute so that

* the *wafer-wide* memory budget is respected (checkpoints may later be balanced across
  stages, so the binding constraint is the aggregate, not the per-stage capacity), and
* the maximum per-stage execution time — the quantity that sets the 1F1B critical path —
  is minimised.

Per stage the candidate recomputation sets form a monotone frontier: operators are added
in order of bytes-saved per second of recompute time, so option ``k`` recomputes the
``k`` most "profitable" operators.  Minimising the maximum stage time subject to the
aggregate memory budget is then a parametric search over the candidate stage times.

After the recomputation choice, stages whose footprint still exceeds the per-die DRAM
are marked **Senders** and stages with slack are **Helpers**; the greedy pairing produces
the Mem_pair set that the memory scheduler (placement + DRAM allocation) refines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.plan import MemPair, RecomputeConfig
from repro.core.tp_engine import TPEngine
from repro.hardware.template import WaferConfig
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.operators import Operator
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class StageOption:
    """One point on a stage's recomputation frontier."""

    recomputed: FrozenSet[str]
    memory_bytes: float
    stage_time: float


@dataclass(frozen=True)
class GcmrPlan:
    """Result of the GCMR scheduler for one (TP, PP) configuration."""

    recompute: RecomputeConfig
    mem_pairs: Tuple[MemPair, ...]
    stage_memory_bytes: Tuple[float, ...]
    senders: Tuple[int, ...]
    helpers: Tuple[int, ...]
    max_stage_time: float
    feasible: bool

    @property
    def total_balanced_bytes(self) -> float:
        return sum(pair.bytes_moved for pair in self.mem_pairs)


class GcmrScheduler:
    """Builds memory-feasible recomputation plans with minimal pipeline impact."""

    def __init__(self, wafer: WaferConfig, tp_engine: Optional[TPEngine] = None) -> None:
        self.wafer = wafer
        self.tp_engine = tp_engine or TPEngine(wafer)

    # ------------------------------------------------------------------ frontiers
    def _stage_options(
        self,
        workload: TrainingWorkload,
        stage: int,
        tp: int,
        pp: int,
        num_microbatches: int,
    ) -> List[StageOption]:
        """The monotone recomputation frontier of one stage (option 0 = no recompute)."""
        memory = TrainingMemoryModel(workload.model)
        operators = workload.layer_operators()
        recomputable = [op for op in operators if op.recomputable]
        # Order by checkpoint bytes saved per second of recompute latency (best first).
        def efficiency(op: Operator) -> float:
            latency = self.tp_engine.profile.latency(op.sharded(tp))
            return op.checkpoint_bytes / (latency + 1e-12)

        ordered = sorted(recomputable, key=efficiency, reverse=True)

        options: List[StageOption] = []
        for k in range(len(ordered) + 1):
            names = frozenset(op.name for op in ordered[:k])
            fraction = RecomputeConfig.uniform(pp, names).recompute_fraction(stage, operators)
            breakdown = memory.stage_breakdown(
                stage,
                pp,
                tp,
                workload.micro_batch_size,
                workload.seq_len,
                num_microbatches,
                recompute_fraction=fraction,
            )
            layers = memory.layers_per_stage(pp)[stage]
            times = self.tp_engine.stage_times(
                workload, stage, layers, tp, pp, recomputed_ops=names
            )
            options.append(
                StageOption(
                    recomputed=names,
                    memory_bytes=breakdown.total_bytes,
                    stage_time=times.forward + times.backward_total,
                )
            )
        return options

    # ------------------------------------------------------------------ scheduling
    def schedule(
        self,
        workload: TrainingWorkload,
        tp: int,
        pp: int,
        num_microbatches: Optional[int] = None,
    ) -> GcmrPlan:
        """Choose per-stage recomputation and Sender/Helper pairs for a (TP, PP) split."""
        if tp <= 0 or pp <= 0:
            raise ValueError("parallelism degrees must be positive")
        n = num_microbatches or workload.num_microbatches(1)
        capacity = self.wafer.die.dram_capacity
        wafer_budget = capacity * pp

        frontiers = [self._stage_options(workload, s, tp, pp, n) for s in range(pp)]

        # Candidate maximum stage times: every option's time is a potential optimum.
        candidates = sorted({opt.stage_time for frontier in frontiers for opt in frontier})
        chosen: Optional[List[StageOption]] = None
        for threshold in candidates:
            selection: List[StageOption] = []
            feasible = True
            for frontier in frontiers:
                allowed = [opt for opt in frontier if opt.stage_time <= threshold + 1e-12]
                if not allowed:
                    feasible = False
                    break
                # Under the time budget, take the option with the smallest footprint.
                selection.append(min(allowed, key=lambda opt: opt.memory_bytes))
            if not feasible:
                continue
            if sum(opt.memory_bytes for opt in selection) <= wafer_budget:
                chosen = self._relax_unnecessary_recompute(
                    frontiers, selection, threshold, wafer_budget
                )
                break

        if chosen is None:
            # Even full recomputation everywhere does not fit the wafer.
            full = [frontier[-1] for frontier in frontiers]
            recompute = RecomputeConfig(stages=tuple(opt.recomputed for opt in full))
            return GcmrPlan(
                recompute=recompute,
                mem_pairs=(),
                stage_memory_bytes=tuple(opt.memory_bytes for opt in full),
                senders=(),
                helpers=(),
                max_stage_time=max(opt.stage_time for opt in full),
                feasible=False,
            )

        recompute = RecomputeConfig(stages=tuple(opt.recomputed for opt in chosen))
        stage_memory = [opt.memory_bytes for opt in chosen]
        senders, helpers, pairs = self._pair_stages(stage_memory, capacity)
        return GcmrPlan(
            recompute=recompute,
            mem_pairs=tuple(pairs),
            stage_memory_bytes=tuple(stage_memory),
            senders=tuple(senders),
            helpers=tuple(helpers),
            max_stage_time=max(opt.stage_time for opt in chosen),
            feasible=True,
        )

    @staticmethod
    def _relax_unnecessary_recompute(
        frontiers: Sequence[Sequence[StageOption]],
        selection: List[StageOption],
        threshold: float,
        wafer_budget: float,
    ) -> List[StageOption]:
        """Drop recomputation that the memory budget does not actually require.

        The feasibility pass picks the *smallest-footprint* option per stage, which can
        over-recompute when memory is plentiful; this pass walks every stage back to the
        least-recompute option that keeps the aggregate within budget and the stage time
        within the chosen threshold.
        """
        relaxed = list(selection)
        for index, frontier in enumerate(frontiers):
            others = sum(opt.memory_bytes for s, opt in enumerate(relaxed) if s != index)
            for option in frontier:  # frontier is ordered from no-recompute upwards
                if option.stage_time > threshold + 1e-12:
                    continue
                if others + option.memory_bytes <= wafer_budget:
                    relaxed[index] = option
                    break
        return relaxed

    # ------------------------------------------------------------------ pairing
    @staticmethod
    def _pair_stages(
        stage_memory: Sequence[float], capacity: float
    ) -> Tuple[List[int], List[int], List[MemPair]]:
        """Greedy Sender→Helper pairing (Alg. 2 lines 9–14)."""
        overflow = {s: m - capacity for s, m in enumerate(stage_memory) if m > capacity}
        spare = {s: capacity - m for s, m in enumerate(stage_memory) if m < capacity}
        senders = sorted(overflow, key=lambda s: -overflow[s])
        helpers = sorted(spare, key=lambda s: -spare[s])
        pairs: List[MemPair] = []
        spare_left = dict(spare)
        for sender in senders:
            need = overflow[sender]
            for helper in helpers:
                if need <= 1e-9:
                    break
                available = spare_left.get(helper, 0.0)
                if available <= 1e-9:
                    continue
                moved = min(need, available)
                pairs.append(MemPair(sender, helper, moved))
                spare_left[helper] = available - moved
                need -= moved
        return senders, helpers, pairs

    # ------------------------------------------------------------------ naive baseline
    def naive_full_recompute(
        self, workload: TrainingWorkload, tp: int, pp: int
    ) -> RecomputeConfig:
        """The naive strategy of Fig. 8a: recompute everything recomputable, everywhere."""
        operators = workload.layer_operators()
        return RecomputeConfig.full(pp, operators)
