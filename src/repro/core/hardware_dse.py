"""Die-granularity hardware DSE (paper §VI-F "Hardware DSE", Fig. 25).

The sweep explores compute-die areas between 200 mm² and 600 mm², classified as Small
(< 400 mm²) or Large and as Square (aspect ratio < 1.2) or Rectangle.  For each die
design the wafer is re-tiled under the area model, the co-exploration picks the best
training strategy, and the DSE objective is the product of normalised memory capacity
and normalised throughput — the metric the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.central_scheduler import CentralScheduler
from repro.core.evalcache import EvaluationCache
from repro.core.evaluator import Evaluator
from repro.core.parallel_map import WorkerPool, parallel_map_merge, task_cache
from repro.core.runtime import resolve_loop_session
from repro.hardware.area import AreaModel
from repro.hardware.template import ComputeDieConfig, CoreConfig, DieConfig, DramChipletConfig, WaferConfig
from repro.units import tflops
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class DieDesignPoint:
    """One die design evaluated by the hardware DSE."""

    name: str
    area_mm2: float
    aspect_ratio: float
    size_class: str          # "small" | "large"
    shape_class: str         # "square" | "rectangle"
    throughput: float
    memory_capacity: float
    objective: float         # normalised memory × normalised throughput

    @property
    def category(self) -> str:
        return f"{self.size_class}-{self.shape_class}"


def classify_die(area_mm2: float, aspect_ratio: float) -> Tuple[str, str]:
    """The paper's Small/Large (400 mm² cut) and Square/Rectangle (1.2 cut) classes."""
    size_class = "small" if area_mm2 < 400.0 else "large"
    shape_class = "square" if aspect_ratio < 1.2 else "rectangle"
    return size_class, shape_class


class DieGranularityDse:
    """Sweeps compute-die area and aspect ratio and evaluates each resulting wafer."""

    def __init__(
        self,
        workload: TrainingWorkload,
        areas_mm2: Sequence[float] = (200.0, 300.0, 400.0, 500.0, 600.0),
        aspect_ratios: Sequence[float] = (1.0, 1.6),
        dram_chiplet: Optional[DramChipletConfig] = None,
        wafer_edge_mm: float = 198.32,
        compute_density_tflops_per_mm2: float = 1.28,
        cache: Optional[EvaluationCache] = None,
        session=None,
    ) -> None:
        self.workload = workload
        self.areas = list(areas_mm2)
        self.aspect_ratios = list(aspect_ratios)
        self.dram_chiplet = dram_chiplet or DramChipletConfig()
        self.wafer_edge_mm = wafer_edge_mm
        self.compute_density = compute_density_tflops_per_mm2
        self.area_model = AreaModel()
        #: The owning :class:`repro.api.Session`; it supplies the shared cache and
        #: the worker pool.  The legacy ``cache=`` kwarg warns once and behaves as an
        #: implicit single-knob session; without either, the ambient session's cache
        #: is adopted (or none at all).
        self.session = resolve_loop_session(
            session, cache=cache, api="DieGranularityDse(cache=)"
        )
        #: Shared (optionally persistent) evaluation cache: every design point's
        #: evaluator prices against it, so repeated sweeps start warm and distinct
        #: points that reduce to the same (wafer, workload, plan) share one pricing.
        self.cache = self.session.cache if self.session is not None else None

    # ------------------------------------------------------------------ die building
    def build_die(self, area_mm2: float, aspect_ratio: float, num_dram: int = 4) -> DieConfig:
        """A compute die of the requested area/shape, with compute scaled to the area.

        Longer die edges expose more peripheral IO, so the edge-IO budget scales with the
        perimeter — the physical reason Small Square dies win the paper's sweep.
        """
        width = math.sqrt(area_mm2 / aspect_ratio)
        height = width * aspect_ratio
        total_flops = tflops(self.compute_density * area_mm2)
        cores = max(4, int(round(math.sqrt(area_mm2))))
        core_flops = total_flops / (cores * cores)
        perimeter = 2.0 * (width + height)
        reference_perimeter = 2.0 * (22.0 + 22.0)
        edge_io = 12.0e12 * perimeter / reference_perimeter
        compute = ComputeDieConfig(
            core_rows=cores,
            core_cols=cores,
            core=CoreConfig(flops_fp16=core_flops),
            width_mm=width,
            height_mm=height,
            edge_io_bandwidth=edge_io,
        )
        die = DieConfig(
            compute=compute,
            dram_chiplet=self.dram_chiplet,
            num_dram_chiplets=num_dram,
        )
        return self.area_model.apply_io_budget(die)

    def build_wafer(self, area_mm2: float, aspect_ratio: float, num_dram: int = 4) -> WaferConfig:
        """Tile the wafer with as many dies of this design as fit."""
        die = self.build_die(area_mm2, aspect_ratio, num_dram)
        tile_w, tile_h = self.area_model.tile_dimensions(die)
        dies_x = max(1, int(self.wafer_edge_mm // tile_w))
        dies_y = max(1, int(self.wafer_edge_mm // tile_h))
        name = f"die{int(area_mm2)}mm2-ar{aspect_ratio:.1f}"
        return WaferConfig(
            name=name,
            dies_x=dies_x,
            dies_y=dies_y,
            die=die,
            wafer_width_mm=self.wafer_edge_mm,
            wafer_height_mm=self.wafer_edge_mm,
        )

    # ------------------------------------------------------------------ sweep
    def sweep(
        self,
        max_tp: int = 8,
        parallel: Union[int, WorkerPool, None] = None,
        session=None,
    ) -> List[DieDesignPoint]:
        """Evaluate every (area, aspect ratio) design point and normalise the objective.

        ``session`` supplies the worker pool whole design points are distributed over
        (defaulting to the DSE's own session, then the ambient one); point order and
        results match the serial run.  With :attr:`cache` attached, worker deltas are
        merged back in worker order and spilled to the cache's store (when one is
        attached) before returning; the serial path prices directly against the shared
        cache.  ``parallel`` is the deprecated spelling (a :class:`WorkerPool` or an
        integer for an ephemeral pool, negative = all CPUs); it warns once.
        """
        resolved = resolve_loop_session(
            session,
            parallel=parallel,
            api="DieGranularityDse.sweep(parallel=)",
            fallback=self.session,
        )
        parallel = resolved.parallel if resolved is not None else None
        grid = [
            (area, aspect, max_tp) for area in self.areas for aspect in self.aspect_ratios
        ]
        priced = parallel_map_merge(
            _DsePointTask(self), grid, parallel=parallel, cache=self.cache
        )
        raw: List[Tuple[str, float, float, float, float]] = [
            (name, area, aspect, throughput, memory)
            for (area, aspect, _), (name, throughput, memory) in zip(grid, priced)
        ]

        if self.cache is not None:
            self.cache.flush()

        max_throughput = max((r[3] for r in raw), default=1.0) or 1.0
        max_memory = max((r[4] for r in raw), default=1.0) or 1.0
        points: List[DieDesignPoint] = []
        for name, area, aspect, throughput, memory in raw:
            size_class, shape_class = classify_die(area, aspect)
            norm_tp = throughput / max_throughput
            norm_mem = memory / max_memory
            points.append(
                DieDesignPoint(
                    name=name,
                    area_mm2=area,
                    aspect_ratio=aspect,
                    size_class=size_class,
                    shape_class=shape_class,
                    throughput=norm_tp,
                    memory_capacity=norm_mem,
                    objective=norm_tp * norm_mem,
                )
            )
        return points

    @staticmethod
    def best_point(points: Sequence[DieDesignPoint]) -> DieDesignPoint:
        if not points:
            raise ValueError("no design points to compare")
        return max(points, key=lambda p: p.objective)


class _DsePointTask:
    """Picklable task pricing one (area, aspect ratio) design point.

    Carries only the die-construction parameters — never the shared cache.  Each
    design point re-tiles the wafer, so points share no evaluator state and
    parallelise perfectly; the cache to price against comes from :func:`task_cache`
    (the parent's shared cache on the serial path, the worker's resident shard in a
    :class:`WorkerPool`), replacing the per-point full-snapshot seeding.
    """

    def __init__(self, dse: DieGranularityDse) -> None:
        self.workload = dse.workload
        self.dram_chiplet = dse.dram_chiplet
        self.wafer_edge_mm = dse.wafer_edge_mm
        self.compute_density = dse.compute_density

    def __call__(self, point: Tuple[float, float, int]):
        area, aspect, max_tp = point
        dse = DieGranularityDse(
            self.workload,
            dram_chiplet=self.dram_chiplet,
            wafer_edge_mm=self.wafer_edge_mm,
            compute_density_tflops_per_mm2=self.compute_density,
        )
        wafer = dse.build_wafer(area, aspect)
        cache = task_cache()
        evaluator = Evaluator(wafer, cache=cache) if cache is not None else Evaluator(wafer)
        scheduler = CentralScheduler(
            wafer, evaluator=evaluator, max_tp=max_tp, optimize_placement=False
        )
        best = scheduler.best(self.workload)
        throughput = best.result.throughput if best is not None else 0.0
        return wafer.name, throughput, wafer.total_dram_capacity
