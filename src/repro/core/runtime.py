"""Process-wide runtime state shared by the Session API and the search loops.

The :class:`~repro.api.Session` object (``src/repro/api``) owns the worker pool and
the shared evaluation cache for a whole experiment; the four search loops — ``Watos``,
``CentralScheduler``, ``DieGranularityDse``, ``GeneticOptimizer`` — live in
``repro.core`` and must be importable *before* the API package exists.  This module is
the thin, dependency-free meeting point between the two layers:

* the **active-session stack** — ``with Session(...):`` pushes the session here, so
  bare loop calls (no ``session=``, no legacy kwargs) inside the block share the
  session's pool and cache instead of building ephemeral ones;
* the **default session** slot — ``repro.api.default_session()`` parks the
  process-wide session here; it is the fallback when no ``with`` block is active;
* :class:`SessionHandle` — the minimal session protocol (``.cache`` / ``.parallel``)
  the loops actually consume.  Legacy ``cache=`` / ``parallel=`` kwargs are wrapped
  in one of these (after a one-time :class:`DeprecationWarning`), so loop bodies read
  every knob from a session-shaped object no matter how they were called;
* the **worker reset** — pool workers are forked from a parent that may hold an
  active session whose :class:`~repro.core.parallel_map.WorkerPool` is meaningless
  (and dangerous — nested pools) in the child.  ``parallel_map`` calls
  :func:`reset_for_worker` at the top of every worker loop.

Nothing here imports from the rest of the package, which is what keeps the layering
acyclic: ``repro.core.* → repro.core.runtime ← repro.api``.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Any, List, Optional

__all__ = [
    "CellTimeout",
    "SessionHandle",
    "check_deadline",
    "current_results",
    "current_session",
    "deadline",
    "pop_session",
    "push_session",
    "reset_for_worker",
    "resolve_loop_session",
    "set_deadline",
    "set_task_tag",
    "task_tag",
    "warn_legacy",
]

#: Innermost-last stack of entered sessions (``with Session(...)``).
_ACTIVE_SESSIONS: List[Any] = []
#: The process-wide default session installed by ``repro.api.default_session()``.
_DEFAULT_SESSION: Optional[Any] = None
#: Legacy-kwarg call sites that already warned (DeprecationWarning fires once each).
_WARNED: set = set()
#: Per-thread ambient attempt state.  ``tag`` labels the unit of work currently
#: executing (a sweep's cell id) — the pool forwards it to workers with every map
#: message, so fault injectors (and any future tracing) can target work by *what*
#: it is, not by racey wall-clock timing.  ``deadline`` is the monotonic deadline
#: of the current attempt (``None`` = unbounded), polled via :func:`check_deadline`.
#: Thread-local, not global: the two-level sweep scheduler runs several cells on
#: concurrent threads, and one cell's timeout must never kill a sibling's attempt.
_AMBIENT = threading.local()


class CellTimeout(RuntimeError):
    """The current cell overran its :class:`~repro.core.retry.RetryPolicy` budget."""


# ------------------------------------------------------------------ ambient attempt
def set_task_tag(tag: str) -> None:
    """Label the work dispatched from now on (sweeps tag each cell's attempt).

    The label is scoped to the calling thread: concurrent sweep cells each tag
    their own dispatches without clobbering each other.
    """
    _AMBIENT.tag = str(tag or "")


def task_tag() -> str:
    """The calling thread's work label (empty outside a tagged region)."""
    return getattr(_AMBIENT, "tag", "")


def set_deadline(at: Optional[float]) -> None:
    """Arm (or clear, with ``None``) the wall-clock deadline of the current attempt.

    ``at`` is an absolute :func:`time.monotonic` timestamp, scoped to the calling
    thread (each concurrent sweep cell arms its own).  The supervisor in
    :meth:`WorkerPool.map` kills and respawns overdue workers; serial loops check
    between items via :func:`check_deadline`.  Either way the overrun surfaces as
    :class:`CellTimeout`, which the sweep retry loop treats as a failed attempt.
    """
    _AMBIENT.deadline = at


def deadline() -> Optional[float]:
    """The calling thread's armed deadline (monotonic seconds), or ``None``."""
    return getattr(_AMBIENT, "deadline", None)


def check_deadline() -> None:
    """Raise :class:`CellTimeout` when the armed deadline has passed."""
    at = getattr(_AMBIENT, "deadline", None)
    if at is not None and time.monotonic() > at:
        raise CellTimeout(
            f"cell overran its wall-clock budget (deadline {at:.3f} passed)"
        )


class SessionHandle:
    """The minimal session protocol the search loops consume.

    A full :class:`repro.api.Session` provides the same two attributes (plus much
    more); this bare holder is what legacy ``cache=`` / ``parallel=`` kwargs are
    wrapped in, and what loop internals use to forward a pool to nested loops
    without re-triggering the deprecation shim.
    """

    __slots__ = ("cache", "results", "_parallel")

    def __init__(self, cache: Any = None, parallel: Any = None, results: Any = None) -> None:
        self.cache = cache
        #: The owning session's result store (``Session._handle`` forwards it), so
        #: session-shaped consumers see the same ``.results`` surface on a handle
        #: as on a full ``Session``.  ``None`` for legacy-kwarg shims.
        self.results = results
        self._parallel = parallel

    @property
    def parallel(self) -> Any:
        """What to pass to a ``parallel=`` runtime argument (pool, int or ``None``)."""
        return self._parallel


# ---------------------------------------------------------------------- active stack
def push_session(session: Any) -> None:
    """Make ``session`` the innermost active session (``Session.__enter__``)."""
    _ACTIVE_SESSIONS.append(session)


def pop_session(session: Any) -> None:
    """Remove ``session`` from the active stack (``Session.__exit__``)."""
    if session in _ACTIVE_SESSIONS:
        _ACTIVE_SESSIONS.remove(session)


def set_default_session(session: Optional[Any]) -> None:
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = session


def get_default_session() -> Optional[Any]:
    return _DEFAULT_SESSION


def current_session() -> Optional[Any]:
    """The session bare loop calls should use: innermost active, else the default."""
    if _ACTIVE_SESSIONS:
        return _ACTIVE_SESSIONS[-1]
    return _DEFAULT_SESSION


def current_results() -> Optional[Any]:
    """The ambient result store, walking active sessions innermost-first.

    ``Session(results=...)`` makes the store ambient the same way the cache is: a
    sweep that names no store of its own streams to the innermost enclosing session
    that has one (then the default session's).  ``None`` when nobody does.
    """
    for session in reversed(_ACTIVE_SESSIONS):
        results = getattr(session, "results", None)
        if results is not None:
            return results
    return getattr(_DEFAULT_SESSION, "results", None)


def reset_for_worker() -> None:
    """Clear inherited session state in a freshly forked pool worker.

    The parent's sessions hold a :class:`WorkerPool` whose pipes are useless in the
    child; a bare loop call inside a fan-out task must never resolve to it (nested
    pools would deadlock).  Workers price against :func:`parallel_map.task_cache`
    instead.
    """
    global _DEFAULT_SESSION
    _ACTIVE_SESSIONS.clear()
    _DEFAULT_SESSION = None
    # The parent's deadline is the *supervisor's* to enforce (it kills overdue
    # workers); a forked copy ticking inside the worker would make task results
    # depend on wall-clock timing.  The fork keeps only the forking thread, so
    # clearing that thread's ambient state clears everything.
    _AMBIENT.deadline = None
    _AMBIENT.tag = ""


# ---------------------------------------------------------------------- legacy shims
def warn_legacy(api: str, hint: Optional[str] = None) -> None:
    """Emit the deprecation warning for a legacy call site.

    Fires exactly once per ``api`` label for the life of the process — long sweeps
    that call a deprecated entry point thousands of times see one line, not a flood.
    ``hint`` overrides the default session-kwarg guidance for shims (like the bare
    spec-list form of ``Session.sweep``) whose replacement is something else.
    """
    if api in _WARNED:
        return
    _WARNED.add(api)
    warnings.warn(
        f"{api} is deprecated; "
        + (hint or "pass session=Session(...) (see repro.api) instead"),
        DeprecationWarning,
        stacklevel=3,
    )


def reset_legacy_warnings() -> None:
    """Forget which call sites already warned (test isolation helper)."""
    _WARNED.clear()


def resolve_loop_session(
    session: Optional[Any],
    *,
    cache: Any = None,
    parallel: Any = None,
    api: str = "",
    fallback: Optional[Any] = None,
) -> Optional[Any]:
    """Normalise a loop entry point's knobs to one session-shaped object.

    Precedence: an explicit ``session=`` wins (mixing it with legacy kwargs is an
    error); legacy ``cache=``/``parallel=`` kwargs warn once and become an implicit
    :class:`SessionHandle`; otherwise ``fallback`` (a session stored on the owning
    object at construction) and finally the ambient :func:`current_session`.
    Returns ``None`` when no session exists anywhere — the loop runs standalone.
    """
    if session is not None:
        if cache is not None or parallel is not None:
            raise ValueError(
                f"{api}: pass either session= or the legacy cache=/parallel= "
                "kwargs, not both"
            )
        return session
    if cache is not None or parallel is not None:
        if api:
            warn_legacy(api)
        return SessionHandle(cache=cache, parallel=parallel)
    if fallback is not None:
        return fallback
    return current_session()
