"""Training-plan data structures shared by the WATOS schedulers.

A :class:`TrainingPlan` bundles everything the evaluator needs to price one candidate
strategy on one wafer: the parallelism degrees, the TP group's mesh shape and collective
algorithm, the per-stage recomputation choices, the physical placement of pipeline stages
on the mesh and the Sender→Helper checkpoint-balancing pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.interconnect.collectives import CollectiveAlgorithm
from repro.parallelism.partition import TPSplitStrategy
from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.operators import Operator

Coord = Tuple[int, int]


@dataclass(frozen=True)
class RecomputeConfig:
    """Which operator units each pipeline stage recomputes instead of checkpointing.

    ``stages`` has one frozenset of operator names per pipeline stage; an empty set means
    full checkpointing (the paper's "Type 0").
    """

    stages: Tuple[FrozenSet[str], ...] = ()

    @classmethod
    def none(cls, pp: int) -> "RecomputeConfig":
        """No recomputation anywhere."""
        return cls(stages=tuple(frozenset() for _ in range(pp)))

    @classmethod
    def full(cls, pp: int, operators: Sequence[Operator]) -> "RecomputeConfig":
        """Recompute every recomputable operator in every stage (naive full recompute)."""
        names = frozenset(op.name for op in operators if op.recomputable)
        return cls(stages=tuple(names for _ in range(pp)))

    @classmethod
    def uniform(cls, pp: int, names: Sequence[str]) -> "RecomputeConfig":
        """The same recomputation set in every stage."""
        frozen = frozenset(names)
        return cls(stages=tuple(frozen for _ in range(pp)))

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage(self, index: int) -> FrozenSet[str]:
        return self.stages[index]

    def with_stage(self, index: int, names: FrozenSet[str]) -> "RecomputeConfig":
        stages = list(self.stages)
        stages[index] = frozenset(names)
        return RecomputeConfig(stages=tuple(stages))

    def recompute_fraction(self, index: int, operators: Sequence[Operator]) -> float:
        """Fraction of a stage's checkpoint bytes that recomputation eliminates."""
        total = sum(op.checkpoint_bytes for op in operators)
        if total == 0:
            return 0.0
        dropped = sum(
            op.checkpoint_bytes for op in operators if op.name in self.stages[index]
        )
        return dropped / total

    def extra_forward_flops(self, index: int, operators: Sequence[Operator]) -> float:
        """Forward FLOPs a stage re-executes during its backward pass."""
        return sum(op.flops for op in operators if op.name in self.stages[index])


@dataclass(frozen=True)
class MemPair:
    """A Sender→Helper checkpoint-balancing pair (Alg. 2 lines 9–14, Alg. 3)."""

    sender_stage: int
    helper_stage: int
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.sender_stage == self.helper_stage:
            raise ValueError("a stage cannot balance checkpoints with itself")
        if self.bytes_moved < 0:
            raise ValueError("balanced bytes cannot be negative")


@dataclass(frozen=True)
class StagePlacement:
    """Physical placement of each pipeline stage's TP group on the mesh."""

    stage_dies: Tuple[Tuple[Coord, ...], ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for dies in self.stage_dies:
            for die in dies:
                if die in seen:
                    raise ValueError(f"die {die} is assigned to more than one stage")
                seen.add(die)

    @property
    def num_stages(self) -> int:
        return len(self.stage_dies)

    def dies(self, stage: int) -> Tuple[Coord, ...]:
        return self.stage_dies[stage]

    def all_dies(self) -> List[Coord]:
        return [die for dies in self.stage_dies for die in dies]

    def center(self, stage: int) -> Tuple[float, float]:
        """Geometric centre of a stage's dies (the S_i of Eq. 2)."""
        dies = self.stage_dies[stage]
        x = sum(d[0] for d in dies) / len(dies)
        y = sum(d[1] for d in dies) / len(dies)
        return (x, y)

    def stage_distance(self, a: int, b: int) -> float:
        """Manhattan distance between two stages' centres."""
        ca, cb = self.center(a), self.center(b)
        return abs(ca[0] - cb[0]) + abs(ca[1] - cb[1])

    def boundary_dies(self, a: int, b: int) -> Tuple[Coord, Coord]:
        """The closest pair of dies between two stages (used to route inter-stage traffic)."""
        best = None
        best_dist = float("inf")
        for da in self.stage_dies[a]:
            for db in self.stage_dies[b]:
                dist = abs(da[0] - db[0]) + abs(da[1] - db[1])
                if dist < best_dist:
                    best_dist = dist
                    best = (da, db)
        assert best is not None
        return best

    def permuted(self, order: Sequence[int]) -> "StagePlacement":
        """Reassign stages to the same physical blocks in a different order.

        ``order[block] = stage`` — block ``b`` now hosts stage ``order[b]``.
        """
        if sorted(order) != list(range(self.num_stages)):
            raise ValueError("order must be a permutation of the stage indices")
        new_stage_dies: List[Tuple[Coord, ...]] = [()] * self.num_stages
        for block, stage in enumerate(order):
            new_stage_dies[stage] = self.stage_dies[block]
        return StagePlacement(stage_dies=tuple(new_stage_dies))


@dataclass(frozen=True)
class TrainingPlan:
    """A complete candidate training strategy for one wafer configuration."""

    parallelism: ParallelismConfig
    tp_shape: Tuple[int, int] = (1, 1)
    collective: CollectiveAlgorithm = CollectiveAlgorithm.BIDIRECTIONAL_RING
    split_strategy: TPSplitStrategy = TPSplitStrategy.HIDDEN
    recompute: RecomputeConfig = field(default_factory=lambda: RecomputeConfig.none(1))
    placement: Optional[StagePlacement] = None
    mem_pairs: Tuple[MemPair, ...] = ()
    offload_to_host: bool = False

    def __post_init__(self) -> None:
        tp = self.parallelism.tp
        if self.tp_shape[0] * self.tp_shape[1] != tp:
            raise ValueError(
                f"TP shape {self.tp_shape} does not cover the TP degree {tp}"
            )
        if self.recompute.num_stages not in (0, self.parallelism.pp):
            raise ValueError("recompute config must have one entry per pipeline stage")
        if self.placement is not None and self.placement.num_stages != self.parallelism.pp:
            raise ValueError("placement must cover every pipeline stage")

    def with_recompute(self, recompute: RecomputeConfig) -> "TrainingPlan":
        return replace(self, recompute=recompute)

    def with_placement(self, placement: StagePlacement) -> "TrainingPlan":
        return replace(self, placement=placement)

    def with_mem_pairs(self, mem_pairs: Sequence[MemPair]) -> "TrainingPlan":
        return replace(self, mem_pairs=tuple(mem_pairs))

    def label(self) -> str:
        return (
            f"{self.parallelism.label()} shape={self.tp_shape} "
            f"collective={self.collective.value}"
        )
