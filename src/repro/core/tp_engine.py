"""TP execution engine (paper §IV-E-1).

The TP engine turns one pipeline stage's layer slice into per-micro-batch forward /
backward execution times on the dies of the stage's TP group:

* every operator is sharded across the TP group and priced by the operator predictor
  (roofline of compute vs DRAM traffic with the hybrid dataflow choice);
* the Megatron-style all-reduces that close row-parallel GEMMs are priced with the
  selected collective algorithm on the mesh links;
* operators selected for recomputation add their forward time to the backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hardware.template import WaferConfig
from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.collectives import CollectiveAlgorithm, CollectiveModel
from repro.parallelism.partition import TPSplitStrategy
from repro.predictor.lookup import OperatorPredictor, OperatorProfileTable
from repro.predictor.analytical import AnalyticalPredictor
from repro.workloads.operators import Operator
from repro.workloads.transformer import build_layer_graph, embedding_operator
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class StageTimes:
    """Per-micro-batch execution times of one pipeline stage."""

    forward: float
    backward: float
    recompute: float
    tp_comm: float

    @property
    def backward_total(self) -> float:
        """Backward time including recomputation and its share of TP communication."""
        return self.backward + self.recompute

    @property
    def total(self) -> float:
        return self.forward + self.backward_total


class TPEngine:
    """Prices intra-stage computation and TP communication for a wafer configuration.

    Stage pricing is memoized: within one plan, uniform middle stages share a single
    signature — (workload, layer count, TP degree, recompute set, edge-stage flag,
    link/compute quality) — so they are priced once instead of ``pp`` times, and the
    memo persists across :meth:`stage_times` calls so GA generations re-pricing the
    same stage shapes pay nothing.  Set ``memoize=False`` to benchmark the raw path.
    """

    def __init__(
        self,
        wafer: WaferConfig,
        predictor: Optional[OperatorPredictor] = None,
        collective: CollectiveAlgorithm = CollectiveAlgorithm.BIDIRECTIONAL_RING,
        split_strategy: TPSplitStrategy = TPSplitStrategy.HIDDEN,
        memoize: bool = True,
    ) -> None:
        self.wafer = wafer
        base_predictor = predictor or AnalyticalPredictor(wafer.die)
        self.profile = OperatorProfileTable(base_predictor, wafer.die)
        self.collective = collective
        self.split_strategy = split_strategy
        self.memoize = memoize
        self._layer_graphs: Dict[Tuple, List[Operator]] = {}
        self._embedding_ops: Dict[Tuple, Operator] = {}
        self._stage_times: Dict[Tuple, StageTimes] = {}
        self._stage_flops: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------ memoized inputs
    def _workload_key(self, workload: TrainingWorkload) -> Tuple:
        return (workload.model, workload.micro_batch_size, workload.seq_len)

    def _layer_graph(self, workload: TrainingWorkload) -> List[Operator]:
        """One layer's operator units for one micro-batch (memoized per workload shape)."""
        if not self.memoize:
            return build_layer_graph(
                workload.model, workload.micro_batch_size, workload.seq_len
            )
        key = self._workload_key(workload)
        operators = self._layer_graphs.get(key)
        if operators is None:
            operators = build_layer_graph(
                workload.model, workload.micro_batch_size, workload.seq_len
            )
            self._layer_graphs[key] = operators
        return operators

    def _embedding_operator(self, workload: TrainingWorkload, tp: int) -> Operator:
        if not self.memoize:
            return embedding_operator(
                workload.model, workload.micro_batch_size, workload.seq_len
            ).sharded(tp)
        key = self._workload_key(workload) + (tp,)
        op = self._embedding_ops.get(key)
        if op is None:
            op = embedding_operator(
                workload.model, workload.micro_batch_size, workload.seq_len
            ).sharded(tp)
            self._embedding_ops[key] = op
        return op

    # ------------------------------------------------------------------ collectives
    def _collective_model(self, tp: int, link_quality: float = 1.0) -> CollectiveModel:
        link = AlphaBetaLink(
            self.wafer.die.d2d_link_bandwidth * link_quality, self.wafer.die.d2d_latency
        )
        return CollectiveModel(link, tp)

    def layer_tp_comm_time(
        self, operators: Sequence[Operator], tp: int, link_quality: float = 1.0
    ) -> float:
        """Forward-pass TP communication time of one layer (all-reduces on activations)."""
        if tp <= 1:
            return 0.0
        model = self._collective_model(tp, link_quality)
        total = 0.0
        for op in operators:
            if op.tp_allreduce_bytes > 0:
                # Each die contributes its shard; the all-reduce moves the full activation.
                total += model.all_reduce(op.tp_allreduce_bytes, self.collective)
            all_to_all = op.metadata.get("all_to_all_bytes", 0.0)
            if all_to_all:
                total += model.all_to_all(all_to_all)
        if self.split_strategy is TPSplitStrategy.SEQUENCE:
            # Sequence parallelism swaps each all-reduce for all-gather + reduce-scatter
            # of the same total volume; on a bidirectional ring that is cost-neutral, but
            # the extra collective start-ups are not.
            total += sum(1 for op in operators if op.tp_allreduce_bytes > 0) * (
                2 * self.wafer.die.d2d_latency * (tp - 1)
            )
        return total

    # ------------------------------------------------------------------ stage pricing
    def stage_times(
        self,
        workload: TrainingWorkload,
        stage: int,
        layers_in_stage: int,
        tp: int,
        pp: int,
        recomputed_ops: FrozenSet[str] = frozenset(),
        link_quality: float = 1.0,
        compute_throughput: float = 1.0,
    ) -> StageTimes:
        """Per-micro-batch forward/backward/recompute times of one pipeline stage.

        ``link_quality`` and ``compute_throughput`` scale the D2D links / die compute for
        the fault-tolerance study (§VI-D); both default to healthy hardware.
        """
        if layers_in_stage < 0:
            raise ValueError("layer count cannot be negative")
        if not 0.0 < compute_throughput <= 1.0:
            raise ValueError("compute throughput fraction must be within (0, 1]")
        is_edge = stage == 0 or stage == pp - 1
        if self.memoize:
            key = (
                self._workload_key(workload),
                layers_in_stage,
                tp,
                recomputed_ops,
                is_edge,
                link_quality,
                compute_throughput,
            )
            cached = self._stage_times.get(key)
            if cached is not None:
                return cached
        times = self._price_stage(
            workload, layers_in_stage, tp, recomputed_ops, is_edge,
            link_quality, compute_throughput,
        )
        if self.memoize:
            self._stage_times[key] = times
        return times

    def _price_stage(
        self,
        workload: TrainingWorkload,
        layers_in_stage: int,
        tp: int,
        recomputed_ops: FrozenSet[str],
        is_edge: bool,
        link_quality: float,
        compute_throughput: float,
    ) -> StageTimes:
        """Price one stage signature (the memoized body of :meth:`stage_times`)."""
        operators = self._layer_graph(workload)

        # Batch-profile the whole layer graph: one struct-of-arrays roofline pass on a
        # cold profile table instead of an operator-by-operator walk.
        latencies = self.profile.latencies([op.sharded(tp) for op in operators])
        fwd_compute = 0.0
        recompute_time = 0.0
        for op, base_latency in zip(operators, latencies):
            latency = base_latency / compute_throughput
            fwd_compute += latency
            if op.name in recomputed_ops:
                recompute_time += latency
        tp_comm = self.layer_tp_comm_time(operators, tp, link_quality)

        fwd_layer = fwd_compute + tp_comm
        bwd_layer = 2.0 * fwd_compute + tp_comm
        recompute_layer = recompute_time

        forward = layers_in_stage * fwd_layer
        backward = layers_in_stage * bwd_layer
        recompute = layers_in_stage * recompute_layer

        # Embedding / output head on the edge stages.
        if is_edge:
            embed = self._embedding_operator(workload, tp)
            embed_time = self.profile.latency(embed) / compute_throughput
            forward += embed_time
            backward += 2.0 * embed_time

        return StageTimes(
            forward=forward,
            backward=backward,
            recompute=recompute,
            tp_comm=(layers_in_stage * tp_comm),
        )

    def stage_forward_flops(
        self, workload: TrainingWorkload, stage: int, layers_in_stage: int, pp: int
    ) -> float:
        """Unsharded forward FLOPs of one stage for one micro-batch (for utilisation)."""
        is_edge = stage == 0 or stage == pp - 1
        key = (self._workload_key(workload), layers_in_stage, is_edge)
        if self.memoize:
            cached = self._stage_flops.get(key)
            if cached is not None:
                return cached
        operators = self._layer_graph(workload)
        flops = layers_in_stage * sum(op.flops for op in operators)
        if is_edge:
            flops += embedding_operator(
                workload.model, workload.micro_batch_size, workload.seq_len
            ).flops
        if self.memoize:
            self._stage_flops[key] = flops
        return flops
