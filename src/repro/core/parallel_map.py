"""Process-pool mapping for the search loops (GA, central scheduler, hardware DSE).

All three searchers are embarrassingly parallel across candidates: each candidate is
priced by a pure function of picklable inputs (wafer/workload/plan dataclasses).  This
module provides one ordered ``parallel_map`` built on ``concurrent.futures`` that the
searchers share, with the conventions that keep results identical to the serial path:

* mapping preserves input order, so selection logic downstream sees the same sequence;
* the mapped callable must be picklable — a module-level function, a
  ``functools.partial`` over one, or an instance of a module-level class;
* ``workers in (None, 0, 1)`` short-circuits to a plain serial loop, which keeps unit
  tests deterministic and avoids pool startup for small searches.

On Linux the ``fork`` start method shares the parent's imported modules with near-zero
startup; where ``fork`` is unavailable the default context is used.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "parallel_map_merge", "resolve_workers"]


def resolve_workers(parallel: Optional[int]) -> int:
    """Normalise a ``parallel=`` argument to an effective worker count.

    ``None``, 0 and 1 mean serial; negative values mean "use every available CPU".
    """
    if parallel is None:
        return 1
    if parallel < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, parallel)


def _context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    parallel: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``func`` over ``items``, optionally on a process pool, preserving order.

    The serial fallback (``parallel in (None, 0, 1)`` or fewer than two items) runs the
    exact same function in-process, so parallel and serial runs return identical
    results whenever ``func`` is deterministic.
    """
    workers = resolve_workers(parallel)
    if workers <= 1 or len(items) < 2:
        return [func(item) for item in items]
    workers = min(workers, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_context()) as pool:
        return list(pool.map(func, items, chunksize=max(1, chunksize)))


def parallel_map_merge(
    func: Callable[[T], Any],
    items: Sequence[T],
    parallel: Optional[int] = None,
    chunksize: int = 1,
    merge: Optional[Callable[[Any], None]] = None,
) -> List[Any]:
    """Map scatter/gather tasks that return ``(payload, carry)`` and fold each carry.

    This is the convention the scale-out sweeps share: a worker task prices its slice
    of the experiment matrix against a *private* evaluation cache seeded from the
    parent's, and returns its payload together with a carry — the cache delta (freshly
    priced entries) and a counter snapshot.  ``merge`` is applied to every carry in
    submission order, so absorbing deltas into the parent's shared cache (and its
    stats) yields the same end state for any worker count, including the serial path.
    """
    payloads: List[Any] = []
    for payload, carry in parallel_map(func, items, parallel=parallel, chunksize=chunksize):
        if merge is not None:
            merge(carry)
        payloads.append(payload)
    return payloads
