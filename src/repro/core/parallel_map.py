"""Persistent worker runtime for the search loops (GA, central scheduler, DSE, Watos).

All the searchers are embarrassingly parallel across candidates: each candidate is
priced by a pure function of picklable inputs (wafer/workload/plan dataclasses).  This
module provides the execution runtime they share:

* :class:`WorkerPool` — a **long-lived** fork pool that survives an entire search (or a
  whole experiment matrix).  Each worker owns a private, *resident*
  :class:`~repro.core.evalcache.EvaluationCache` shard that persists across
  submissions.  Shards are seeded once when the pool first syncs, and thereafter kept
  coherent **delta-only** in both directions: the parent ships entries priced since a
  per-worker watermark (:meth:`EvaluationCache.export_since`), and workers ship back
  only their freshly priced entries (:meth:`EvaluationCache.take_carry`).  Entries a
  worker itself priced are never echoed back to it.  A cache with a read-through
  sqlite store skips even the initial seed: workers attach the store file directly.
* :func:`parallel_map` — ordered map over a pool (a :class:`WorkerPool` or an
  ephemeral one built from an integer worker count).
* :func:`parallel_map_merge` — the scatter/gather convention of the scale-out sweeps:
  tasks price whole points against the cache returned by :func:`task_cache` — the
  parent's cache *directly* on the serial path (zero copies), the worker's resident
  shard inside a pool — and the runtime, not the task, moves cache state around.

Conventions that keep results identical to the serial path:

* mapping preserves input order, so selection logic downstream sees the same sequence;
* the mapped callable must be picklable — a module-level function, a
  ``functools.partial`` over one, or an instance of a module-level class;
* worker carries are merged in worker-index order (deterministic for any schedule,
  and pricing is pure, so merge order can never change a value);
* ``workers in (None, 0, 1)`` short-circuits to a plain serial loop, which keeps unit
  tests deterministic and avoids pool startup for small searches.

On Linux the ``fork`` start method shares the parent's imported modules with near-zero
startup; where ``fork`` is unavailable the default context is used.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.core import runtime
from repro.core.evalcache import EvaluationCache

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "WorkerPool",
    "parallel_map",
    "parallel_map_merge",
    "resolve_workers",
    "task_cache",
]

#: The evaluation cache fan-out tasks should price against right now: the worker's
#: resident shard inside a pool worker, the parent's shared cache on the serial path
#: of :func:`parallel_map_merge`, ``None`` outside any fan-out context.
_ACTIVE_CACHE: Optional[EvaluationCache] = None


def task_cache() -> Optional[EvaluationCache]:
    """The cache the current fan-out task should evaluate against (or ``None``)."""
    return _ACTIVE_CACHE


def resolve_workers(parallel: Union[int, "WorkerPool", None]) -> int:
    """Normalise a ``parallel=`` argument to an effective worker count.

    ``None``, 0 and 1 mean serial; negative values mean "use every available CPU";
    a :class:`WorkerPool` means that pool's size.
    """
    if parallel is None:
        return 1
    if isinstance(parallel, WorkerPool):
        return parallel.workers
    if parallel < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, parallel)


def _context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ---------------------------------------------------------------------- worker side
def _worker_main(task_conn, result_conn) -> None:
    """Loop of one long-lived pool worker: sync messages interleave with map work.

    The worker's resident shard lives here, across submissions; ``seed`` adopts a
    parent delta (never re-shipped back), ``map`` runs a chunk with the shard exposed
    through :func:`task_cache` and returns the shard's incremental carry.

    The channels are pipes, not queues, on purpose: ``Connection.send`` pickles in
    the calling thread, so an unpicklable payload or exception raises *here*, where
    the fallback below can still ship the traceback — a queue's feeder thread would
    drop the message silently and leave the parent waiting forever.
    """
    global _ACTIVE_CACHE
    # The fork copied the parent's session state (active stack, default session);
    # any pool it references is unusable here, and a bare loop call inside a task
    # must never resolve to it — nested pools would deadlock.
    runtime.reset_for_worker()
    shard: Optional[EvaluationCache] = None
    while True:
        try:
            message = task_conn.recv()
        except EOFError:  # parent went away
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "reset":
            shard = None
        elif kind == "seed":
            if shard is None:
                shard = EvaluationCache(max_entries=None)
            shard.seed(message[1])
        elif kind == "attach_store":
            path, namespace = message[1], message[2]
            try:
                shard = EvaluationCache(
                    max_entries=None, store=path, namespace=namespace, read_through=True
                )
            except Exception:  # corrupt/unreachable store: degrade to a cold shard
                shard = EvaluationCache(max_entries=None)
        elif kind == "map":
            func, chunk, use_shard = message[1], message[2], message[3]
            if use_shard and shard is None:
                shard = EvaluationCache(max_entries=None)
            _ACTIVE_CACHE = shard if use_shard else None
            try:
                payloads = [func(item) for item in chunk]
                carry = shard.take_carry() if use_shard else None
                result_conn.send(("ok", payloads, carry))
            except BaseException as exc:
                detail = traceback.format_exc()
                try:
                    result_conn.send(("err", detail, exc))
                except Exception:  # unpicklable payload/exception: ship the text
                    result_conn.send(("err", detail, None))
            finally:
                _ACTIVE_CACHE = None


# ---------------------------------------------------------------------- parent side
class WorkerPool:
    """A long-lived fork pool with worker-resident evaluation-cache shards.

    Create one pool per search — or per whole experiment matrix — and pass it
    anywhere a ``parallel=`` argument accepts an integer::

        with WorkerPool(8, cache=shared_cache) as pool:
            ga.optimize(seed_plan, parallel=pool)
            scheduler.explore(workload, parallel=pool)
            dse.sweep(parallel=pool)

    The pool forks its workers once, on first use.  :meth:`bind` attaches the shared
    :class:`EvaluationCache` whose contents the shards mirror; binding a *different*
    cache resets the shards (correct, merely cold).  Entries always flow as deltas:
    the parent keeps one watermark per worker and an origin map so no entry is ever
    shipped twice to the same worker — :attr:`CacheStats.shipped` counts exactly the
    entries that crossed.  Pools are process-local and refuse to be pickled.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.workers = resolve_workers(-1 if workers is None else workers)
        self._cache: Optional[EvaluationCache] = None
        self._watermarks: List[int] = [0] * self.workers
        self._origin: Dict[str, int] = {}
        self._procs: List[multiprocessing.Process] = []
        self._task_conns: List[Any] = []
        self._result_conns: List[Any] = []
        self._started = False
        self._closed = False
        if cache is not None:
            self.bind(cache)

    def __reduce__(self):
        raise TypeError("WorkerPool is process-local and cannot be pickled")

    # ------------------------------------------------------------------ lifecycle
    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._started:
            return
        ctx = _context()
        for _ in range(self.workers):
            # Pipes, not queues: sends pickle synchronously in the sending process,
            # so bad payloads raise where they can be handled instead of being
            # dropped by a queue feeder thread (which would hang the other side).
            task_parent, task_child = ctx.Pipe()
            result_parent, result_child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(task_child, result_child), daemon=True
            )
            proc.start()
            task_child.close()
            result_child.close()
            self._procs.append(proc)
            self._task_conns.append(task_parent)
            self._result_conns.append(result_parent)
        self._started = True
        self._attach_read_through_store()

    def close(self) -> None:
        """Stop the workers and release their queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for proc, task_conn in zip(self._procs, self._task_conns):
            if proc.is_alive():
                try:
                    task_conn.send(("stop",))
                except Exception:  # pragma: no cover - broken pipe on dead worker
                    pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._task_conns + self._result_conns:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ cache sync
    def bind(self, cache: Optional[EvaluationCache]) -> None:
        """Attach the shared cache the worker shards mirror.

        Re-binding the same object is free (watermarks survive — that is what makes
        a reused pool cheap).  Binding a different cache resets the shards.
        """
        if cache is self._cache:
            return
        self._cache = cache
        self._watermarks = [0] * self.workers
        self._origin = {}
        if self._started:
            for task_conn in self._task_conns:
                task_conn.send(("reset",))
            self._attach_read_through_store()

    def _attach_read_through_store(self) -> None:
        cache = self._cache
        if cache is None or not cache.read_through or cache.store is None:
            return
        for task_conn in self._task_conns:
            task_conn.send(("attach_store", cache.store.path, cache.store.namespace))

    def _sync_shards(self, cache: EvaluationCache) -> None:
        """Ship each worker the entries priced since its watermark (delta-only).

        Watermarks advance in lock-step (:meth:`bind` and this method set them all
        together), so one export serves every worker — ``min()`` only guards a
        hypothetical drift, where re-shipping is harmless (``seed`` ignores known
        keys).  Only the origin filter is per-worker.
        """
        entries, seq = cache.export_since(min(self._watermarks))
        self._watermarks = [seq] * self.workers
        if not entries:
            return
        if not self._origin:
            # The expensive case — first sync of a warm-started cache — sends the
            # same (potentially large) delta everywhere: pickle once, fan bytes out.
            blob = multiprocessing.reduction.ForkingPickler.dumps(("seed", entries))
            for conn in self._task_conns:
                conn.send_bytes(blob)
            cache.stats.shipped += len(entries) * self.workers
            return
        for index in range(self.workers):
            view = {
                key: value
                for key, value in entries.items()
                if self._origin.get(key) != index
            }
            if not view:
                continue
            self._task_conns[index].send(("seed", view))
            cache.stats.shipped += len(view)

    # ------------------------------------------------------------------ mapping
    def map(
        self,
        func: Callable[[T], R],
        items: Sequence[T],
        merge: Optional[Callable[[Dict[str, Any]], None]] = None,
        sync: bool = True,
    ) -> List[R]:
        """Map ``func`` over ``items`` on the resident workers, preserving order.

        With a bound cache (and ``sync=True``) the shards are delta-synced before
        dispatch and their carries folded back afterwards — through ``merge`` when
        given (e.g. entries-only absorption), else ``cache.absorb_carry`` — in
        worker-index order.  Items are split into contiguous, balanced chunks.
        """
        items = list(items)
        if not items:
            return []
        self._ensure_started()
        cache = self._cache if sync else None
        if cache is not None:
            self._sync_shards(cache)
        active = min(self.workers, len(items))
        chunks: List[Tuple[int, List[T]]] = []
        base, extra = divmod(len(items), active)
        lo = 0
        for index in range(active):
            hi = lo + base + (1 if index < extra else 0)
            chunks.append((index, items[lo:hi]))
            lo = hi
        for index, chunk in chunks:
            self._task_conns[index].send(("map", func, chunk, cache is not None))

        results: List[R] = []
        carries: List[Tuple[int, Optional[Dict[str, Any]]]] = []
        failure: Optional[Tuple[str, Optional[BaseException]]] = None
        broken = False
        try:
            for index, _ in chunks:
                try:
                    status, payload, carry = self._receive(index)
                except RuntimeError as exc:  # worker died; keep draining live ones
                    if failure is None:
                        failure = (str(exc), exc)
                    broken = True
                    continue
                if status == "err":
                    # Task raised (worker survived): drain the rest, stay usable.
                    if failure is None:
                        failure = (payload, carry)
                    continue
                results.extend(payload)
                carries.append((index, carry))
        except BaseException:
            # Anything escaping the drain (e.g. KeyboardInterrupt) leaves result
            # pipes with unread messages; a later map() would read stale payloads.
            self.close()
            raise

        # Absorb the successful workers' carries even when another worker failed:
        # their shards already marked those entries as shipped (take_carry), so
        # dropping the carries here would lose the priced work for good.
        for index, carry in carries:
            if not carry:
                continue
            for key in carry["delta"]:
                self._origin[key] = index
            if merge is not None:
                merge(carry)
            elif cache is not None:
                cache.absorb_carry(carry)

        if failure is not None:
            detail, exc = failure
            if broken:
                # A dead worker leaves the pool unschedulable; close it so later
                # maps fail fast with "closed" instead of hanging on a ghost.
                self.close()
            if isinstance(exc, BaseException):
                # Chain the worker-side traceback text: the re-raised exception's
                # own stack ends here in the parent, which is useless on its own.
                raise exc from RuntimeError(f"worker-side traceback:\n{detail}")
            raise RuntimeError(f"pool worker failed:\n{detail}")
        return results

    def _receive(self, index: int):
        conn = self._result_conns[index]
        while not conn.poll(timeout=1.0):
            if not self._procs[index].is_alive():
                raise RuntimeError(f"pool worker {index} died mid-task")
        try:
            return conn.recv()
        except EOFError:
            raise RuntimeError(f"pool worker {index} died mid-task") from None
        except Exception as exc:
            # recv_bytes preserved the message boundary, so the channel is still
            # aligned — only this chunk's result is lost to the unpickle failure.
            return ("err", f"failed to unpickle worker {index}'s result: {exc!r}", None)


# ---------------------------------------------------------------------- functional API
def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    parallel: Union[int, WorkerPool, None] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``func`` over ``items``, optionally on a worker pool, preserving order.

    ``parallel`` is a :class:`WorkerPool` (reused, workers stay warm) or an integer
    (an ephemeral pool is created for the call).  The serial fallback (``parallel in
    (None, 0, 1)`` or fewer than two items) runs the exact same function in-process,
    so parallel and serial runs return identical results whenever ``func`` is
    deterministic.  ``chunksize`` is accepted for backwards compatibility; items are
    always split into contiguous balanced chunks.
    """
    del chunksize  # block partitioning made the knob moot
    if isinstance(parallel, WorkerPool):
        return parallel.map(func, items, sync=False)
    workers = resolve_workers(parallel)
    if workers <= 1 or len(items) < 2:
        return [func(item) for item in items]
    with WorkerPool(min(workers, len(items))) as pool:
        return pool.map(func, items, sync=False)


def parallel_map_merge(
    func: Callable[[T], R],
    items: Sequence[T],
    parallel: Union[int, WorkerPool, None] = None,
    cache: Optional[EvaluationCache] = None,
) -> List[R]:
    """Fan whole-point tasks out with a shared evaluation cache, returning payloads.

    This is the convention the scale-out sweeps share.  Tasks obtain their cache via
    :func:`task_cache` instead of carrying (or being pickled with) a snapshot:

    * **serial** — the task sees ``cache`` itself; nothing is copied at all;
    * **pool** — the task sees the worker's resident shard, which the pool keeps
      coherent with ``cache`` by watermarked deltas and whose carry (freshly priced
      entries + counter increments) is absorbed back in worker-index order.

    Results and cache end state are identical for any worker count because pricing
    is a pure function of the point — the cache only changes *what is recomputed*.
    """
    global _ACTIVE_CACHE
    if isinstance(parallel, WorkerPool):
        parallel.bind(cache)
        return parallel.map(func, items)
    workers = resolve_workers(parallel)
    if workers <= 1 or len(items) < 2:
        previous = _ACTIVE_CACHE
        _ACTIVE_CACHE = cache
        try:
            return [func(item) for item in items]
        finally:
            _ACTIVE_CACHE = previous
    with WorkerPool(min(workers, len(items)), cache=cache) as pool:
        return pool.map(func, items)
