"""Persistent worker runtime for the search loops (GA, central scheduler, DSE, Watos).

All the searchers are embarrassingly parallel across candidates: each candidate is
priced by a pure function of picklable inputs (wafer/workload/plan dataclasses).  This
module provides the execution runtime they share:

* :class:`WorkerPool` — a **long-lived**, **elastic** fork pool that survives an
  entire search (or a whole experiment matrix).  Sizing is described by a
  :class:`PoolConfig` (``min_workers`` … ``max_workers``): the pool forks
  ``min_workers`` up front, grows toward ``max_workers`` under queue pressure and
  shrinks back after ``idle_shrink_s`` of slot idleness.  Each worker owns a private,
  *resident* :class:`~repro.core.evalcache.EvaluationCache` shard that persists across
  submissions.  Shards are seeded once when the pool first syncs, and thereafter kept
  coherent **delta-only** in both directions: the parent ships entries priced since a
  per-worker watermark (:meth:`EvaluationCache.export_since`), and workers ship back
  only their freshly priced entries (:meth:`EvaluationCache.take_carry`).  Entries a
  worker itself priced are never echoed back to it.  A cache with a read-through
  sqlite store skips even the initial seed: workers attach the store file directly.
* :func:`parallel_map` — ordered map over a pool (a :class:`WorkerPool` or an
  ephemeral one built from an integer worker count).
* :func:`parallel_map_merge` — the scatter/gather convention of the scale-out sweeps:
  tasks price whole points against the cache returned by :func:`task_cache` — the
  parent's cache *directly* on the serial path (zero copies), the worker's resident
  shard inside a pool — and the runtime, not the task, moves cache state around.

:meth:`WorkerPool.map` is **thread-safe**: the two-level sweep scheduler runs whole
cells on concurrent threads, and each cell's search loop maps onto the same shared
pool.  A map call *leases* a fair share of the idle worker slots (``ceil(workers /
concurrent maps)``, at least one), supervises only its leased slots, and releases
them when the chunks drain — so wide fan-outs backfill idle capacity and a narrow
cell can never starve its siblings.  The per-attempt deadline and task tag are
thread-local (:mod:`repro.core.runtime`), so one cell's timeout kills only the
workers *its* map leased.

The pool is **supervised**: a worker killed mid-task (OOM, segfault, SIGKILL) is
detected by dead-pipe/EOF, respawned in place, and the chunk it held is re-dispatched
— :meth:`WorkerPool.map` returns complete results after a crash, bit-identical to a
crash-free run, because pricing is pure.  A chunk that *repeatedly* kills its worker
(a poison task) exhausts a bounded respawn budget and raises
:class:`WorkerCrashError` instead of looping forever; the pool itself stays usable.
A respawned worker's shard is merely cold: its watermark resets to zero, so the next
delta sync re-seeds it from the parent through the ordinary ``export_since`` path.
If a replacement worker cannot be forked at all (ulimits, fork bombs), the chunk —
and, once every slot is dead, the whole map — degrades to in-process serial
execution with a single warning instead of crashing the sweep.

Conventions that keep results identical to the serial path:

* mapping preserves input order, so selection logic downstream sees the same sequence;
* the mapped callable must be picklable — a module-level function, a
  ``functools.partial`` over one, or an instance of a module-level class;
* worker carries are merged in worker-index order (deterministic for any schedule,
  and pricing is pure, so merge order can never change a value);
* ``workers in (None, 0, 1)`` short-circuits to a plain serial loop, which keeps unit
  tests deterministic and avoids pool startup for small searches.

On Linux the ``fork`` start method shares the parent's imported modules with near-zero
startup; where ``fork`` is unavailable the default context is used.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
import warnings
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.core import runtime
from repro.core.evalcache import EvaluationCache
from repro.obs import tracer as _obs

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "PoolConfig",
    "WorkerCrashError",
    "WorkerPool",
    "parallel_map",
    "parallel_map_merge",
    "resolve_workers",
    "set_spawn_hook",
    "set_task_hook",
    "task_cache",
]

#: Per-thread fan-out context.  ``cache`` is the evaluation cache tasks should price
#: against right now: the worker's resident shard inside a pool worker, the parent's
#: shared cache on the serial path of :func:`parallel_map_merge`, ``None`` outside
#: any fan-out context.  Thread-local so concurrent sweep-cell threads pricing
#: serially never see each other's context.
_TLS = threading.local()

#: Worker-side fault-injection hook: ``hook(worker_index, task_no, tag)`` runs before
#: every task (``task_no`` counts tasks over the worker process's lifetime, ``tag`` is
#: the ambient :func:`repro.core.runtime.task_tag` the parent stamped on the map
#: message).  Installed by the chaos harness; inherited by workers at fork time.
_TASK_HOOK: Optional[Callable[[int, int, str], None]] = None
#: Parent-side fault-injection hook: ``hook(worker_index)`` runs before every fork
#: (initial spawns, growth and respawns); raising simulates an unspawnable worker.
_SPAWN_HOOK: Optional[Callable[[int], None]] = None


def set_task_hook(hook: Optional[Callable[[int, int, str], None]]) -> None:
    """Install (or clear) the worker-side per-task hook (see :mod:`repro.core.chaos`)."""
    global _TASK_HOOK
    _TASK_HOOK = hook


def set_spawn_hook(hook: Optional[Callable[[int], None]]) -> None:
    """Install (or clear) the parent-side spawn hook (see :mod:`repro.core.chaos`)."""
    global _SPAWN_HOOK
    _SPAWN_HOOK = hook


class WorkerCrashError(RuntimeError):
    """One map chunk killed its worker more times than the respawn budget allows.

    Raised by :meth:`WorkerPool.map` after the poison chunk's worker has been
    respawned (the pool stays usable); the sweep retry loop treats it like any
    other failed attempt and eventually quarantines the offending cell.
    """


def task_cache() -> Optional[EvaluationCache]:
    """The cache the current fan-out task should evaluate against (or ``None``)."""
    return getattr(_TLS, "cache", None)


def resolve_workers(parallel: Union[int, "WorkerPool", None]) -> int:
    """Normalise a ``parallel=`` argument to an effective worker count.

    ``None``, 0 and 1 mean serial; negative values mean "use every available CPU";
    a :class:`WorkerPool` means that pool's capacity (``max_workers``).
    """
    if parallel is None:
        return 1
    if isinstance(parallel, WorkerPool):
        return parallel.workers
    if parallel < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, parallel)


@dataclass(frozen=True)
class PoolConfig:
    """Declarative sizing and supervision knobs of a :class:`WorkerPool`.

    ``max_workers`` is the slot capacity (``None`` = every available CPU, negative
    likewise); ``min_workers`` is how many workers fork up front and survive idle
    shrinking (``None`` = same as ``max_workers``, i.e. a fixed-size pool — the
    pre-elastic behaviour).  With ``min_workers < max_workers`` the pool is
    *elastic*: a map call that finds fewer idle workers than its fair share grows
    the pool toward capacity, and slots idle longer than ``idle_shrink_s`` seconds
    are reaped back down to ``min_workers`` (``None`` = never shrink).
    ``chunk_retries`` bounds how many times one map chunk may kill (and have
    respawned) its worker before the chunk is declared poison.
    """

    min_workers: Optional[int] = None
    max_workers: Optional[int] = None
    idle_shrink_s: Optional[float] = None
    chunk_retries: int = 1

    def __post_init__(self) -> None:
        if self.chunk_retries < 0:
            raise ValueError("chunk_retries cannot be negative")
        if self.idle_shrink_s is not None and self.idle_shrink_s < 0:
            raise ValueError("idle_shrink_s cannot be negative")

    def resolved(self) -> Tuple[int, int]:
        """The effective ``(min_workers, max_workers)`` pair on this machine."""
        upper = resolve_workers(-1 if self.max_workers is None else self.max_workers)
        if self.min_workers is None:
            return upper, upper
        lower = min(resolve_workers(self.min_workers), upper)
        return max(1, lower), upper


def _context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ---------------------------------------------------------------------- worker side
def _worker_main(task_conn, result_conn, index: int = 0) -> None:
    """Loop of one long-lived pool worker: sync messages interleave with map work.

    The worker's resident shard lives here, across submissions; ``seed`` adopts a
    parent delta (never re-shipped back), ``map`` runs a chunk with the shard exposed
    through :func:`task_cache` and returns the shard's incremental carry.

    The channels are pipes, not queues, on purpose: ``Connection.send`` pickles in
    the calling thread, so an unpicklable payload or exception raises *here*, where
    the fallback below can still ship the traceback — a queue's feeder thread would
    drop the message silently and leave the parent waiting forever.
    """
    # The fork copied the parent's session state (active stack, default session);
    # any pool it references is unusable here, and a bare loop call inside a task
    # must never resolve to it — nested pools would deadlock.
    runtime.reset_for_worker()
    # The fork also copied the parent's trace ring; the worker must not re-ship
    # the parent's spans, so it starts a fresh ring stamped with its slot index.
    _obs.reset_in_worker(index)
    _TLS.cache = None
    shard: Optional[EvaluationCache] = None
    tasks_seen = 0
    while True:
        try:
            message = task_conn.recv()
        except EOFError:  # parent went away
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "reset":
            shard = None
        elif kind == "seed":
            if shard is None:
                shard = EvaluationCache(max_entries=None)
            shard.seed(message[1])
        elif kind == "attach_store":
            path, namespace = message[1], message[2]
            try:
                shard = EvaluationCache(
                    max_entries=None, store=path, namespace=namespace, read_through=True
                )
            except Exception:  # corrupt/unreachable store: degrade to a cold shard
                shard = EvaluationCache(max_entries=None)
        elif kind == "map":
            func, chunk, use_shard = message[1], message[2], message[3]
            tag = message[4] if len(message) > 4 else ""
            # The parent's tracing flag rides on every map message: workers fork
            # before tracing may be enabled (or after, before it is disabled), so
            # this is what keeps long-lived rings in step with the parent.
            trace_on = bool(message[5]) if len(message) > 5 else False
            if trace_on != _obs.enabled:
                _obs.enable(worker=index) if trace_on else _obs.disable()
            if use_shard and shard is None:
                shard = EvaluationCache(max_entries=None)
            _TLS.cache = shard if use_shard else None
            try:
                chunk_t0 = _obs.now() if _obs.enabled else 0.0
                payloads = []
                for item in chunk:
                    tasks_seen += 1
                    if _TASK_HOOK is not None:
                        _TASK_HOOK(index, tasks_seen, tag)
                    payloads.append(func(item))
                if _obs.enabled:
                    _obs.add("worker.chunk", chunk_t0, _obs.now(), tag=tag)
                carry = shard.take_carry() if use_shard else None
                if _obs.enabled:
                    # Flush this submission's spans back through the carry path so
                    # they merge into the parent's timeline (worker-slot order).
                    spans = _obs.drain()
                    if spans:
                        if carry is None:
                            carry = {"delta": {}, "stats": {}}
                        carry["spans"] = spans
                result_conn.send(("ok", payloads, carry))
            except BaseException as exc:
                detail = traceback.format_exc()
                try:
                    result_conn.send(("err", detail, exc))
                except Exception:  # unpicklable payload/exception: ship the text
                    result_conn.send(("err", detail, None))
            finally:
                _TLS.cache = None


# ---------------------------------------------------------------------- parent side
class WorkerPool:
    """A long-lived, supervised, elastic fork pool with worker-resident cache shards.

    Create one pool per search — or per whole experiment matrix — and pass it
    anywhere a ``parallel=`` argument accepts an integer::

        with WorkerPool(cache=shared_cache, config=PoolConfig(max_workers=8)) as pool:
            ga.optimize(seed_plan, parallel=pool)
            scheduler.explore(workload, parallel=pool)
            dse.sweep(parallel=pool)

    Sizing comes from a :class:`PoolConfig`; the legacy bare-int form
    (``WorkerPool(8)``) still works behind a one-time :class:`DeprecationWarning`
    and means a fixed pool (``min == max``).  ``min_workers`` fork on first use;
    elastic pools grow toward ``max_workers`` when a map finds too few idle slots
    and shrink back after ``idle_shrink_s`` of idleness (``pool.grows`` /
    ``pool.shrinks`` count the transitions).

    :meth:`bind` attaches the shared :class:`EvaluationCache` whose contents the
    shards mirror; binding a *different* cache resets the shards (correct, merely
    cold — but never re-bind while maps are in flight).  Entries always flow as
    deltas: the parent keeps one watermark per worker and an origin map so no entry
    is ever shipped twice to the same worker — :attr:`CacheStats.shipped` counts
    exactly the entries that crossed.  Pools are process-local and refuse pickling.

    Supervision (see the module docstring): a worker that dies mid-task is respawned
    and its chunk re-dispatched, up to ``chunk_retries`` respawns per chunk per map;
    beyond that the map raises :class:`WorkerCrashError` while the pool stays whole.
    ``pool.crashes`` / ``pool.respawns`` count lifetime fault events for tests and
    observability.  :meth:`map` may be called from several threads at once; each
    call leases its fair share of idle slots and supervises only those.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
        *,
        chunk_retries: Optional[int] = None,
        config: Optional[PoolConfig] = None,
    ) -> None:
        if config is not None:
            if workers is not None or chunk_retries is not None:
                raise ValueError(
                    "pass either config=PoolConfig(...) or the legacy "
                    "workers=/chunk_retries= knobs, not both"
                )
        else:
            if workers is not None or chunk_retries is not None:
                runtime.warn_legacy(
                    "WorkerPool(workers=int)",
                    hint="pass config=PoolConfig(max_workers=..., chunk_retries=...) "
                    "instead",
                )
            config = PoolConfig(
                max_workers=workers,
                chunk_retries=1 if chunk_retries is None else chunk_retries,
            )
        #: The :class:`PoolConfig` this pool was built from.
        self.config = config
        self.min_workers, self.workers = config.resolved()
        self.idle_shrink_s = config.idle_shrink_s
        #: How many times one chunk may kill (and have respawned) its worker within
        #: a single :meth:`map` before the chunk is declared poison.
        self.chunk_retries = max(0, config.chunk_retries)
        #: Lifetime count of worker deaths the supervisor observed.
        self.crashes = 0
        #: Lifetime count of successful worker respawns.
        self.respawns = 0
        #: Lifetime count of elastic slot growths (queue-pressure spawns).
        self.grows = 0
        #: Lifetime count of elastic slot shrinks (idle reaps).
        self.shrinks = 0
        self._cache: Optional[EvaluationCache] = None
        self._watermarks: List[int] = [0] * self.workers
        self._origin: Dict[str, int] = {}
        self._procs: List[Optional[multiprocessing.Process]] = []
        self._task_conns: List[Any] = []
        self._result_conns: List[Any] = []
        #: Slots whose worker could not be (re)spawned; served serially in-parent.
        self._dead: List[bool] = [False] * self.workers
        #: Slots currently holding a live worker process (elastic pools keep cold
        #: slots unspawned until queue pressure grows them).
        self._spawned: List[bool] = [False] * self.workers
        #: Slots currently leased by an in-flight :meth:`map` call.
        self._busy: List[bool] = [False] * self.workers
        self._idle_since: List[float] = [0.0] * self.workers
        self._active_maps = 0
        self._lock = threading.RLock()
        self._slot_free = threading.Condition(self._lock)
        self._started = False
        self._closed = False
        self._warned_degraded = False
        if cache is not None:
            self.bind(cache)

    def __reduce__(self):
        raise TypeError("WorkerPool is process-local and cannot be pickled")

    # ------------------------------------------------------------------ lifecycle
    def _spawn_worker(self, index: int):
        """Fork one worker for ``index`` and return ``(proc, task_conn, result_conn)``.

        Raises whatever the spawn hook or the OS raises; callers decide whether a
        failure is fatal (initial start never is — the slot degrades to serial).
        """
        if _SPAWN_HOOK is not None:
            _SPAWN_HOOK(index)
        ctx = _context()
        # Pipes, not queues: sends pickle synchronously in the sending process,
        # so bad payloads raise where they can be handled instead of being
        # dropped by a queue feeder thread (which would hang the other side).
        task_parent, task_child = ctx.Pipe()
        result_parent, result_child = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main, args=(task_child, result_child, index), daemon=True
        )
        proc.start()
        task_child.close()
        result_child.close()
        return proc, task_parent, result_parent

    def _spawn_into(self, index: int) -> bool:
        """Fork a worker into slot ``index``; ``False`` marks the slot dead."""
        try:
            proc, task_conn, result_conn = self._spawn_worker(index)
        except Exception:  # unspawnable: degrade, don't crash
            self._procs[index] = None
            self._task_conns[index] = None
            self._result_conns[index] = None
            self._spawned[index] = False
            self._dead[index] = True
            return False
        self._procs[index] = proc
        self._task_conns[index] = task_conn
        self._result_conns[index] = result_conn
        self._spawned[index] = True
        self._dead[index] = False
        self._idle_since[index] = time.monotonic()
        return True

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            if self._started:
                return
            self._started = True
            self._procs = [None] * self.workers
            self._task_conns = [None] * self.workers
            self._result_conns = [None] * self.workers
            for index in range(self.min_workers):
                self._spawn_into(index)
            self._attach_read_through_store()

    def _grow_slot(self, index: int) -> bool:
        """Spawn a cold slot under queue pressure (caller holds the lock)."""
        if not self._spawn_into(index):
            return False
        self.grows += 1
        self._watermarks[index] = 0
        cache = self._cache
        if cache is not None and cache.read_through and cache.store is not None:
            self._task_conns[index].send(
                ("attach_store", cache.store.path, cache.store.namespace)
            )
        return True

    def _stop_slot(self, index: int) -> None:
        """Reap one idle slot back to cold (caller holds the lock)."""
        task_conn = self._task_conns[index]
        if task_conn is not None:
            try:
                task_conn.send(("stop",))
            except Exception:  # pragma: no cover - already broken
                pass
        proc = self._procs[index]
        if proc is not None:
            proc.join(timeout=1)
            if proc.is_alive():  # pragma: no cover - wedged idle worker
                proc.terminate()
                proc.join(timeout=1)
        for conns in (self._task_conns, self._result_conns):
            if conns[index] is not None:
                try:
                    conns[index].close()
                except Exception:  # pragma: no cover - already broken
                    pass
        self._procs[index] = None
        self._task_conns[index] = None
        self._result_conns[index] = None
        self._spawned[index] = False
        self._dead[index] = False
        self._origin = {key: who for key, who in self._origin.items() if who != index}
        self._watermarks[index] = 0
        self.shrinks += 1

    def _shrink_idle_locked(self, now: Optional[float] = None) -> int:
        """Reap slots idle past ``idle_shrink_s``, never below ``min_workers``."""
        if self.idle_shrink_s is None or not self._started:
            return 0
        now = time.monotonic() if now is None else now
        live = self._live_slots()
        spare = len(live) - self.min_workers
        if spare <= 0:
            return 0
        stopped = 0
        for index in reversed(live):  # shed the highest slots first
            if spare <= 0:
                break
            if self._busy[index] or now - self._idle_since[index] < self.idle_shrink_s:
                continue
            self._stop_slot(index)
            spare -= 1
            stopped += 1
        return stopped

    def maybe_shrink(self, now: Optional[float] = None) -> int:
        """Reap idle slots now; returns how many were stopped.

        Shrinking also happens opportunistically at every :meth:`map` entry; this
        entry point exists for deterministic tests and long-idle callers.
        """
        with self._lock:
            return self._shrink_idle_locked(now)

    def _respawn(self, index: int) -> bool:
        """Replace the dead worker in slot ``index``; ``False`` if the fork failed.

        The replacement starts with a cold shard: its watermark drops to zero so the
        next delta sync re-seeds it through the ordinary ``export_since`` path, and
        every origin record naming the dead worker is purged (the entries it priced
        died with it — the new process must be shipped them like anyone else).
        """
        with self._lock:
            old = self._procs[index]
            if old is not None:
                old.join(timeout=1)
            for conns in (self._task_conns, self._result_conns):
                if conns[index] is not None:
                    try:
                        conns[index].close()
                    except Exception:  # pragma: no cover - already broken
                        pass
            self._origin = {key: who for key, who in self._origin.items() if who != index}
            self._watermarks[index] = 0
            if self._closed or not self._spawn_into(index):
                self._procs[index] = None
                self._task_conns[index] = None
                self._result_conns[index] = None
                self._spawned[index] = False
                self._dead[index] = True
                return False
            self.respawns += 1
            cache = self._cache
            if cache is not None and cache.read_through and cache.store is not None:
                self._task_conns[index].send(
                    ("attach_store", cache.store.path, cache.store.namespace)
                )
            return True

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop and reap the workers with bounded escalation (idempotent).

        Each worker gets a cooperative ``stop`` and a bounded join; one that is
        still alive is terminated, and one that shrugs off SIGTERM is killed — so a
        wedged worker can never hang interpreter exit through the ``__del__`` /
        ``atexit`` path.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._slot_free.notify_all()
            if not self._started:
                return
            procs = list(self._procs)
            task_conns = list(self._task_conns)
            result_conns = list(self._result_conns)
        for proc, task_conn in zip(procs, task_conns):
            if proc is not None and proc.is_alive() and task_conn is not None:
                try:
                    task_conn.send(("stop",))
                except Exception:  # pragma: no cover - broken pipe on dead worker
                    pass
        for proc in procs:
            if proc is None:
                continue
            proc.join(timeout=join_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
            if proc.is_alive():  # SIGTERM ignored/blocked: escalate to SIGKILL
                proc.kill()
                proc.join(timeout=1)
        for conn in task_conns + result_conns:
            if conn is not None:
                conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(join_timeout=1.0)
        except Exception:
            pass

    # ------------------------------------------------------------------ cache sync
    def bind(self, cache: Optional[EvaluationCache]) -> None:
        """Attach the shared cache the worker shards mirror.

        Re-binding the same object is free (watermarks survive — that is what makes
        a reused pool cheap).  Binding a different cache resets the shards; never
        do that while maps are in flight on other threads.
        """
        with self._lock:
            if cache is self._cache:
                return
            self._cache = cache
            self._watermarks = [0] * self.workers
            self._origin = {}
            if self._started:
                for index in self._live_slots():
                    self._task_conns[index].send(("reset",))
                self._attach_read_through_store()

    def _attach_read_through_store(self) -> None:
        cache = self._cache
        if cache is None or not cache.read_through or cache.store is None:
            return
        for index in self._live_slots():
            self._task_conns[index].send(
                ("attach_store", cache.store.path, cache.store.namespace)
            )

    def _live_slots(self) -> List[int]:
        return [
            index
            for index in range(self.workers)
            if self._spawned[index] and not self._dead[index]
        ]

    def _sync_shards(self, cache: EvaluationCache) -> None:
        """Ship each idle worker the entries priced since its watermark (delta-only).

        Watermarks normally advance in lock-step (:meth:`bind` and this method set
        them together), so one export serves every worker and only the origin filter
        is per-worker.  A respawned or freshly grown worker breaks the lock-step —
        its watermark is back at zero — so drifted watermarks fall through to a
        per-worker export: the newcomer is re-seeded with the full resident history
        while its healthy siblings still receive only the fresh delta.  Slots busy
        under a sibling map are skipped (their pipes are mid-chunk); they catch up
        at their own next sync, which the watermarks make exact.
        """
        live = [index for index in self._live_slots() if not self._busy[index]]
        if not live:
            return
        marks = {self._watermarks[index] for index in live}
        if len(marks) == 1:
            entries, seq = cache.export_since(marks.pop())
            for index in live:
                self._watermarks[index] = seq
            if not entries:
                return
            if not self._origin and len(live) == self.workers:
                # The expensive case — first sync of a warm-started cache — sends
                # the same (potentially large) delta everywhere: pickle once, fan
                # bytes out.
                blob = multiprocessing.reduction.ForkingPickler.dumps(("seed", entries))
                for index in live:
                    self._task_conns[index].send_bytes(blob)
                cache.stats.shipped += len(entries) * len(live)
                return
            for index in live:
                view = {
                    key: value
                    for key, value in entries.items()
                    if self._origin.get(key) != index
                }
                if not view:
                    continue
                self._task_conns[index].send(("seed", view))
                cache.stats.shipped += len(view)
            return
        # Drifted watermarks (a worker was respawned): per-worker incremental export.
        for index in live:
            entries, seq = cache.export_since(self._watermarks[index])
            self._watermarks[index] = seq
            view = {
                key: value
                for key, value in entries.items()
                if self._origin.get(key) != index
            }
            if view:
                self._task_conns[index].send(("seed", view))
                cache.stats.shipped += len(view)

    # ------------------------------------------------------------------ scheduling
    def _lease(self, nitems: int) -> List[int]:
        """Claim a fair share of idle slots for one map call (caller holds the lock).

        The share is ``ceil(max_workers / concurrent maps)`` bounded by the item
        count — one map alone gets the whole pool (the pre-elastic chunking,
        bit-for-bit), two concurrent cells split it, and a narrow map never hoards
        slots a wide sibling could fill.  Too few idle slots grow the pool toward
        capacity (queue pressure); none at all waits for a sibling to release —
        unless every slot is dead, which degrades the map to in-process serial
        (empty lease).
        """
        while True:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            self._shrink_idle_locked()
            idle = [index for index in self._live_slots() if not self._busy[index]]
            share = -(-self.workers // (self._active_maps + 1))  # ceil division
            want = max(1, min(nitems, share))
            if len(idle) < want:
                for index in range(self.workers):
                    if len(idle) >= want:
                        break
                    if not self._spawned[index] and not self._dead[index]:
                        if self._grow_slot(index):
                            idle.append(index)
            if idle:
                idle.sort()
                take = idle[:want]
                for index in take:
                    self._busy[index] = True
                self._active_maps += 1
                return take
            if not self._live_slots():
                return []  # total collapse: the caller serves the map in-process
            self._slot_free.wait(timeout=0.1)

    def _release(self, slots: Sequence[int]) -> None:
        with self._lock:
            now = time.monotonic()
            for index in slots:
                self._busy[index] = False
                self._idle_since[index] = now
            self._active_maps -= 1
            self._slot_free.notify_all()

    # ------------------------------------------------------------------ mapping
    def map(
        self,
        func: Callable[[T], R],
        items: Sequence[T],
        merge: Optional[Callable[[Dict[str, Any]], None]] = None,
        sync: bool = True,
    ) -> List[R]:
        """Map ``func`` over ``items`` on the resident workers, preserving order.

        With a bound cache (and ``sync=True``) the shards are delta-synced before
        dispatch and their carries folded back afterwards — through ``merge`` when
        given (e.g. entries-only absorption), else ``cache.absorb_carry`` — in
        worker-index order.  Items are split into contiguous, balanced chunks over
        the slots this call leases (see :meth:`_lease`); concurrent calls from
        sweep-cell threads share the pool without stepping on each other.

        Worker deaths are survived (respawn + re-dispatch, see the class
        docstring); a chunk that keeps killing workers raises
        :class:`WorkerCrashError`, and an armed :func:`runtime.set_deadline` that
        expires raises :class:`runtime.CellTimeout` after killing-and-respawning
        the straggling workers this call leased — sibling cells' workers are left
        alone.  Either way the pool remains usable.
        """
        items = list(items)
        if not items:
            return []
        with self._lock:
            self._ensure_started()
            cache = self._cache if sync else None
            if cache is not None:
                with _obs.span("cache.sync", tag="ship"):
                    self._sync_shards(cache)
            slots = self._lease(len(items))
        if not slots:
            # Total pool collapse: serve the whole map in-process, once-warned.
            return self._serial_map(func, items, cache, merge)
        try:
            return self._run_on_slots(func, items, slots, cache, merge)
        finally:
            self._release(slots)

    def _run_on_slots(
        self,
        func: Callable[[T], R],
        items: List[T],
        slots: List[int],
        cache: Optional[EvaluationCache],
        merge: Optional[Callable[[Dict[str, Any]], None]],
    ) -> List[R]:
        """Dispatch, supervise and reassemble one map over its leased slots."""
        tag = runtime.task_tag()
        use_shard = cache is not None
        chunks: Dict[int, List[T]] = {}
        base, extra = divmod(len(items), len(slots))
        lo = 0
        for position, slot in enumerate(slots):
            hi = lo + base + (1 if position < extra else 0)
            chunks[slot] = items[lo:hi]
            lo = hi
        trace_on = _obs.enabled
        with self._lock:
            with _obs.span("dispatch", tag=tag):
                for slot in slots:
                    self._task_conns[slot].send(
                        ("map", func, chunks[slot], use_shard, tag, trace_on)
                    )

        payloads: Dict[int, List[R]] = {}
        carries: List[Tuple[int, Optional[Dict[str, Any]]]] = []
        pending: Dict[int, List[T]] = dict(chunks)
        crashes: Dict[int, int] = {slot: 0 for slot in slots}
        orphaned: Dict[int, List[T]] = {}  # slots lost to failed respawns
        task_failure: Optional[Tuple[str, Optional[BaseException]]] = None
        crash_failure: Optional[str] = None
        timed_out = False
        drain_t0 = _obs.now() if trace_on else 0.0
        try:
            while pending:
                limit = runtime.deadline()
                if limit is not None and time.monotonic() > limit:
                    # Kill every straggler this call leased and respawn it: the
                    # attempt is over, but the pool must survive for the retry —
                    # and sibling cells' workers keep running untouched.
                    with self._lock:
                        for slot in list(pending):
                            proc = self._procs[slot]
                            if proc is not None and proc.is_alive():
                                proc.kill()
                            self.crashes += 1
                            self._respawn(slot)
                            del pending[slot]
                    timed_out = True
                    break
                conn_map = {self._result_conns[slot]: slot for slot in pending}
                ready = mp_connection.wait(list(conn_map), timeout=0.2)
                dead: List[int] = []
                for conn in ready:
                    slot = conn_map[conn]
                    try:
                        message = conn.recv()
                    except EOFError:
                        dead.append(slot)
                        continue
                    except Exception as exc:
                        # recv_bytes preserved the message boundary, so the channel
                        # is still aligned — only this chunk's result is lost to
                        # the unpickle failure.
                        message = (
                            "err",
                            f"failed to unpickle worker {slot}'s result: {exc!r}",
                            None,
                        )
                    status, payload, carry = message
                    del pending[slot]
                    if status == "err":
                        # Task raised (worker survived): drain the rest, stay usable.
                        if task_failure is None:
                            task_failure = (payload, carry)
                    else:
                        payloads[slot] = payload
                        carries.append((slot, carry))
                if not ready:
                    # Nothing readable: sweep for silent deaths (a SIGKILLed
                    # sibling whose pipe EOF we might otherwise miss).  Checking
                    # *all* pending slots is what keeps several simultaneous
                    # deaths from wedging the drain on one closed pipe.
                    for slot in list(pending):
                        proc = self._procs[slot]
                        proc_dead = proc is None or not proc.is_alive()
                        if proc_dead and not self._result_conns[slot].poll():
                            dead.append(slot)
                for slot in dead:
                    if slot not in pending:
                        continue
                    with self._lock:
                        self.crashes += 1
                        crashes[slot] += 1
                        alive = self._respawn(slot)
                        if crashes[slot] > self.chunk_retries:
                            # Poison chunk: stop feeding it workers.  The slot
                            # itself was respawned above, so the *pool* stays whole.
                            if crash_failure is None:
                                crash_failure = (
                                    f"pool worker {slot} died mid-task "
                                    f"({crashes[slot]} crash(es) on the same chunk of "
                                    f"{len(pending[slot])} task(s); "
                                    f"respawn budget {self.chunk_retries} exhausted)"
                                )
                            del pending[slot]
                        elif alive:
                            self._task_conns[slot].send(
                                ("map", func, pending[slot], use_shard, tag, trace_on)
                            )
                        else:
                            # No replacement worker to be had: fall back to pricing
                            # this chunk in-process once the drain settles.
                            orphaned[slot] = pending.pop(slot)
        except BaseException:
            # Anything escaping the drain (e.g. KeyboardInterrupt) leaves result
            # pipes with unread messages; a later map() would read stale payloads.
            self.close()
            raise

        if trace_on:
            _obs.add("drain", drain_t0, _obs.now(), tag=tag)

        # Absorb the successful workers' carries even when another worker failed:
        # their shards already marked those entries as shipped (take_carry), so
        # dropping the carries here would lose the priced work for good.
        carries.sort(key=lambda pair: pair[0])
        with self._lock:
            for slot, carry in carries:
                if not carry:
                    continue
                # Worker span rings ride the carry; absorb them here — in the
                # deterministic worker-slot order the sort just established — and
                # not in merge(), which callers may no-op (see evaluate_many).
                spans = carry.pop("spans", None)
                if spans:
                    _obs.absorb(spans)
                    if not carry["delta"] and not carry["stats"]:
                        continue  # trace-only carry (sync=False map): nothing to merge
                for key in carry["delta"]:
                    self._origin[key] = slot
                if merge is not None:
                    merge(carry)
                elif cache is not None:
                    cache.absorb_carry(carry)

        for slot, chunk in orphaned.items():
            if task_failure is not None or crash_failure is not None or timed_out:
                break  # the map is failing anyway; don't run orphans serially
            self._warn_degraded()
            status, payload, exc = self._run_chunk_inline(func, chunk, cache)
            if status == "err":
                task_failure = (payload, exc)
            else:
                payloads[slot] = payload

        if task_failure is not None:
            detail, exc = task_failure
            if isinstance(exc, BaseException):
                # Chain the worker-side traceback text: the re-raised exception's
                # own stack ends here in the parent, which is useless on its own.
                raise exc from RuntimeError(f"worker-side traceback:\n{detail}")
            raise RuntimeError(f"pool worker failed:\n{detail}")
        if crash_failure is not None:
            raise WorkerCrashError(crash_failure)
        if timed_out:
            raise runtime.CellTimeout(
                "map overran its wall-clock budget; straggling workers were "
                "killed and respawned"
            )
        results: List[R] = []
        for slot in slots:
            results.extend(payloads[slot])
        return results

    # ------------------------------------------------------------- degraded serial
    def _warn_degraded(self) -> None:
        if self._warned_degraded:
            return
        self._warned_degraded = True
        warnings.warn(
            "WorkerPool could not (re)spawn workers; falling back to in-process "
            "serial execution",
            RuntimeWarning,
            stacklevel=3,
        )

    def _run_chunk_inline(
        self, func: Callable[[T], R], chunk: Sequence[T], cache: Optional[EvaluationCache]
    ):
        """Price one chunk in the parent (last resort), against the parent cache.

        Entries land directly in the shared cache — the exact serial-path
        convention of :func:`parallel_map_merge` — so results stay bit-identical;
        there is no carry to merge and no origin to record.
        """
        previous = getattr(_TLS, "cache", None)
        _TLS.cache = cache
        try:
            payloads = []
            for item in chunk:
                runtime.check_deadline()
                payloads.append(func(item))
            return "ok", payloads, None
        except BaseException as exc:
            return "err", traceback.format_exc(), exc
        finally:
            _TLS.cache = previous

    def _serial_map(
        self,
        func: Callable[[T], R],
        items: Sequence[T],
        cache: Optional[EvaluationCache],
        merge: Optional[Callable[[Dict[str, Any]], None]],
    ) -> List[R]:
        """The whole-map fallback once every worker slot is unspawnable."""
        del merge  # entries go straight into the parent cache; nothing to merge
        self._warn_degraded()
        status, payloads, exc = self._run_chunk_inline(func, items, cache)
        if status == "err":
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"pool worker failed:\n{payloads}")
        return payloads


# ---------------------------------------------------------------------- functional API
def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    parallel: Union[int, WorkerPool, None] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``func`` over ``items``, optionally on a worker pool, preserving order.

    ``parallel`` is a :class:`WorkerPool` (reused, workers stay warm) or an integer
    (an ephemeral pool is created for the call).  The serial fallback (``parallel in
    (None, 0, 1)`` or fewer than two items) runs the exact same function in-process,
    so parallel and serial runs return identical results whenever ``func`` is
    deterministic.  ``chunksize`` is accepted for backwards compatibility; items are
    always split into contiguous balanced chunks.
    """
    del chunksize  # block partitioning made the knob moot
    if isinstance(parallel, WorkerPool):
        return parallel.map(func, items, sync=False)
    workers = resolve_workers(parallel)
    if workers <= 1 or len(items) < 2:
        results = []
        for item in items:
            runtime.check_deadline()
            results.append(func(item))
        return results
    with WorkerPool(config=PoolConfig(max_workers=min(workers, len(items)))) as pool:
        return pool.map(func, items, sync=False)


def parallel_map_merge(
    func: Callable[[T], R],
    items: Sequence[T],
    parallel: Union[int, WorkerPool, None] = None,
    cache: Optional[EvaluationCache] = None,
) -> List[R]:
    """Fan whole-point tasks out with a shared evaluation cache, returning payloads.

    This is the convention the scale-out sweeps share.  Tasks obtain their cache via
    :func:`task_cache` instead of carrying (or being pickled with) a snapshot:

    * **serial** — the task sees ``cache`` itself; nothing is copied at all;
    * **pool** — the task sees the worker's resident shard, which the pool keeps
      coherent with ``cache`` by watermarked deltas and whose carry (freshly priced
      entries + counter increments) is absorbed back in worker-index order.

    Results and cache end state are identical for any worker count because pricing
    is a pure function of the point — the cache only changes *what is recomputed*.
    """
    if isinstance(parallel, WorkerPool):
        parallel.bind(cache)
        return parallel.map(func, items)
    workers = resolve_workers(parallel)
    if workers <= 1 or len(items) < 2:
        previous = getattr(_TLS, "cache", None)
        _TLS.cache = cache
        try:
            results = []
            for item in items:
                runtime.check_deadline()
                results.append(func(item))
            return results
        finally:
            _TLS.cache = previous
    pool_config = PoolConfig(max_workers=min(workers, len(items)))
    with WorkerPool(cache=cache, config=pool_config) as pool:
        return pool.map(func, items)
