"""Memory scheduler, part 2: location-aware DRAM capacity allocation (paper Alg. 3).

Given the Senders (stages whose post-recomputation footprint exceeds the per-die DRAM)
and Helpers (stages with slack), the allocator decides *which* Helper DRAM hosts each
Sender's overflow so that the checkpoint-balancing traffic travels the shortest possible
distance and avoids paths already used by the pipeline.  The priority queue is ordered by
the same distance/conflict cost that Eq. 2 uses, and Helpers are re-inserted with their
reduced remaining capacity after a partial allocation, exactly as in Alg. 3.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.plan import MemPair, StagePlacement
from repro.interconnect.routing import path_links, xy_path


@dataclass(frozen=True)
class DramAllocation:
    """The fine-grained Sender→Helper allocation."""

    pairs: Tuple[MemPair, ...]
    unplaced_bytes: float

    @property
    def feasible(self) -> bool:
        return self.unplaced_bytes <= 1e-6

    @property
    def total_bytes(self) -> float:
        return sum(pair.bytes_moved for pair in self.pairs)


class DramAllocator:
    """Allocates overflow checkpoints to Helper DRAMs, location-aware."""

    def __init__(self, placement: StagePlacement) -> None:
        self.placement = placement
        # Links used by the pipeline path; balance paths crossing them are penalised.
        self._pipeline_links = set()
        for stage in range(placement.num_stages - 1):
            src, dst = placement.boundary_dies(stage, stage + 1)
            self._pipeline_links.update(path_links(xy_path(src, dst)))

    def _cost(self, sender: int, helper: int) -> float:
        """Distance plus conflict penalty between a Sender and a candidate Helper."""
        src, dst = self.placement.boundary_dies(sender, helper)
        path = xy_path(src, dst)
        gamma = sum(1 for link in path_links(path) if link in self._pipeline_links)
        distance = self.placement.stage_distance(sender, helper)
        return distance * (1.0 + gamma)

    def allocate(
        self,
        sender_overflow: Dict[int, float],
        helper_spare: Dict[int, float],
    ) -> DramAllocation:
        """Assign every Sender's overflow bytes to Helper DRAMs (Alg. 3).

        Parameters
        ----------
        sender_overflow:
            stage → bytes exceeding its per-die capacity.
        helper_spare:
            stage → bytes of free DRAM available to host other stages' checkpoints.
        """
        for stage, value in list(sender_overflow.items()) + list(helper_spare.items()):
            if value < 0:
                raise ValueError(f"stage {stage} has a negative byte amount")
        remaining = dict(helper_spare)
        pairs: List[MemPair] = []
        unplaced = 0.0

        # Largest overflow first, mirroring the DescendSort of Alg. 2 line 12.
        for sender in sorted(sender_overflow, key=lambda s: -sender_overflow[s]):
            need = sender_overflow[sender]
            if need <= 0:
                continue
            queue: List[Tuple[float, int]] = [
                (self._cost(sender, helper), helper)
                for helper, spare in remaining.items()
                if spare > 0 and helper != sender
            ]
            heapq.heapify(queue)
            while need > 1e-9 and queue:
                _, helper = heapq.heappop(queue)
                spare = remaining.get(helper, 0.0)
                if spare <= 1e-9:
                    continue
                moved = min(need, spare)
                pairs.append(MemPair(sender, helper, moved))
                remaining[helper] = spare - moved
                need -= moved
                if remaining[helper] > 1e-9:
                    # Re-insert the partially used Helper (Alg. 3 line 8).
                    heapq.heappush(queue, (self._cost(sender, helper), helper))
            unplaced += max(0.0, need)

        return DramAllocation(pairs=tuple(pairs), unplaced_bytes=unplaced)

    @staticmethod
    def from_mem_pairs(pairs: Sequence[MemPair]) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Recover sender-overflow / helper-spare dictionaries from an existing pairing."""
        senders: Dict[int, float] = {}
        helpers: Dict[int, float] = {}
        for pair in pairs:
            senders[pair.sender_stage] = senders.get(pair.sender_stage, 0.0) + pair.bytes_moved
            helpers[pair.helper_stage] = helpers.get(pair.helper_stage, 0.0) + pair.bytes_moved
        return senders, helpers
