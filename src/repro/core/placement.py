"""Memory scheduler, part 1: spatial location-aware stage placement (paper §IV-C-1, Eq. 2).

The mesh is partitioned into ``pp`` contiguous blocks of ``tp`` dies each.  The baseline
assigns stages to blocks in the naive left-to-right / top-to-bottom (serpentine) order;
the optimizer permutes the assignment so that Mem_pair partners end up close together
while the pipeline path stays short, minimising the GlobalCost of Eq. 2:

    GlobalCost = Σ Dist(S_i, S_{i+1}) · Comm_PP
               + Σ Dist(S_s, S_h) · Comm_pair · (1 + γ)

where γ counts links the balance path shares with already-placed pipeline paths.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plan import MemPair, StagePlacement
from repro.interconnect.routing import path_links, xy_path
from repro.interconnect.topology import MeshTopology

Coord = Tuple[int, int]


def mesh_blocks(
    dies_x: int, dies_y: int, tp_shape: Tuple[int, int], num_blocks: int
) -> List[Tuple[Coord, ...]]:
    """Tile the mesh with ``num_blocks`` rectangles of ``tp_shape`` dies each.

    Blocks are laid out in serpentine (boustrophedon) order so that consecutive blocks
    are always adjacent, which is what keeps the pipeline path short.
    """
    bx, by = tp_shape
    if bx <= 0 or by <= 0:
        raise ValueError("TP shape must be positive")
    if bx > dies_x or by > dies_y:
        raise ValueError(f"TP shape {tp_shape} does not fit a {dies_x}x{dies_y} mesh")
    group_size = bx * by
    if group_size * num_blocks > dies_x * dies_y:
        raise ValueError(
            f"cannot place {num_blocks} blocks of {tp_shape} on a {dies_x}x{dies_y} mesh"
        )
    blocks_per_row = dies_x // bx
    blocks_per_col = dies_y // by
    if blocks_per_row * blocks_per_col >= num_blocks:
        blocks: List[Tuple[Coord, ...]] = []
        for row in range(blocks_per_col):
            cols = range(blocks_per_row)
            if row % 2 == 1:
                cols = reversed(cols)
            for col in cols:
                dies = tuple(
                    (col * bx + dx, row * by + dy) for dy in range(by) for dx in range(bx)
                )
                blocks.append(dies)
                if len(blocks) == num_blocks:
                    return blocks
        return blocks
    # Rectangle tiling cannot host every block (e.g. a 2×2 group on a 7-wide mesh wastes
    # a column); fall back to chopping the serpentine die order into contiguous groups,
    # which keeps every group connected even if not perfectly rectangular.
    serpentine: List[Coord] = []
    for y in range(dies_y):
        xs = range(dies_x)
        if y % 2 == 1:
            xs = reversed(xs)
        serpentine.extend((x, y) for x in xs)
    return [
        tuple(serpentine[block * group_size:(block + 1) * group_size])
        for block in range(num_blocks)
    ]


def serpentine_placement(
    dies_x: int, dies_y: int, tp_shape: Tuple[int, int], pp: int
) -> StagePlacement:
    """The naive left-to-right / top-to-bottom placement of Fig. 11a."""
    blocks = mesh_blocks(dies_x, dies_y, tp_shape, pp)
    return StagePlacement(stage_dies=tuple(blocks))


def global_cost(
    placement: StagePlacement,
    mem_pairs: Sequence[MemPair],
    pipeline_comm: float = 1.0,
    pair_comm: Optional[Dict[Tuple[int, int], float]] = None,
) -> float:
    """Evaluate Eq. 2 for a placement.

    ``pipeline_comm`` weights the pipeline edges; ``pair_comm`` optionally weights each
    Mem_pair (defaults to the pair's byte volume, or 1.0 when the volume is zero).
    """
    pp = placement.num_stages
    cost = 0.0
    tracker_links: set = set()
    for stage in range(pp - 1):
        src, dst = placement.boundary_dies(stage, stage + 1)
        path = xy_path(src, dst)
        tracker_links.update(path_links(path))
        cost += placement.stage_distance(stage, stage + 1) * pipeline_comm

    for pair in mem_pairs:
        src, dst = placement.boundary_dies(pair.sender_stage, pair.helper_stage)
        path = xy_path(src, dst)
        gamma = sum(1 for link in path_links(path) if link in tracker_links)
        weight = pair.bytes_moved if pair.bytes_moved > 0 else 1.0
        if pair_comm is not None:
            weight = pair_comm.get((pair.sender_stage, pair.helper_stage), weight)
        cost += placement.stage_distance(pair.sender_stage, pair.helper_stage) * weight * (1 + gamma)
    return cost


@dataclass
class PlacementOptimizer:
    """Search over stage→block permutations to minimise GlobalCost.

    For small pipeline depths (≤ ``exhaustive_limit`` stages) the search is exhaustive;
    beyond that it falls back to a randomised pairwise-swap local search, which matches
    the role the placement step plays inside the larger GA loop.
    """

    mesh: MeshTopology
    exhaustive_limit: int = 7
    local_search_iterations: int = 400
    seed: int = 0

    def optimize(
        self,
        tp_shape: Tuple[int, int],
        pp: int,
        mem_pairs: Sequence[MemPair] = (),
        pipeline_comm: float = 1.0,
    ) -> StagePlacement:
        """The lowest-GlobalCost placement found for the given pipeline and Mem_pairs."""
        base = serpentine_placement(self.mesh.dies_x, self.mesh.dies_y, tp_shape, pp)
        if pp <= 2 or not mem_pairs:
            return base
        normalised_pairs = self._normalise(mem_pairs)
        if pp <= self.exhaustive_limit:
            return self._exhaustive(base, normalised_pairs, pipeline_comm)
        return self._local_search(base, normalised_pairs, pipeline_comm)

    @staticmethod
    def _normalise(mem_pairs: Sequence[MemPair]) -> List[MemPair]:
        total = sum(p.bytes_moved for p in mem_pairs) or 1.0
        return [
            MemPair(p.sender_stage, p.helper_stage, p.bytes_moved / total * 10.0)
            for p in mem_pairs
        ]

    def _exhaustive(
        self, base: StagePlacement, mem_pairs: Sequence[MemPair], pipeline_comm: float
    ) -> StagePlacement:
        pp = base.num_stages
        best = base
        best_cost = global_cost(base, mem_pairs, pipeline_comm)
        for order in itertools.permutations(range(pp)):
            candidate = base.permuted(order)
            cost = global_cost(candidate, mem_pairs, pipeline_comm)
            if cost < best_cost:
                best, best_cost = candidate, cost
        return best

    def _local_search(
        self, base: StagePlacement, mem_pairs: Sequence[MemPair], pipeline_comm: float
    ) -> StagePlacement:
        rng = random.Random(self.seed)
        pp = base.num_stages
        order = list(range(pp))
        best = base
        best_cost = global_cost(base, mem_pairs, pipeline_comm)
        for _ in range(self.local_search_iterations):
            i, j = rng.sample(range(pp), 2)
            order[i], order[j] = order[j], order[i]
            candidate = base.permuted(order)
            cost = global_cost(candidate, mem_pairs, pipeline_comm)
            if cost < best_cost:
                best, best_cost = candidate, cost
            else:
                order[i], order[j] = order[j], order[i]
        return best
