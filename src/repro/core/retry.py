"""Retry policy for sweep cells: bounded attempts, deterministic backoff, timeouts.

The fault-tolerant sweep runtime retries a failed cell a bounded number of times
before quarantining it (recording a ``status="failed"`` row instead of aborting the
sweep).  :class:`RetryPolicy` is the knob bundle that governs one cell's lifecycle:

* ``max_attempts`` — how many times a cell is run before it is quarantined;
* ``backoff_s`` / ``backoff_factor`` / ``max_backoff_s`` — exponential backoff
  between attempts (``backoff_s * factor**(attempt-1)``, capped);
* ``jitter`` — a ± fraction applied to each delay, drawn from a *seeded* stream so
  two runs of the same sweep sleep the same schedule (the same discipline
  :class:`~repro.hardware.faults.FaultModel` uses to seed die/link faults);
* ``timeout_s`` — optional per-attempt wall-clock budget, enforced by the pool
  supervisor (see :func:`repro.core.runtime.set_deadline`): a cell that overruns is
  killed, its workers respawned, and the attempt counted as a failure.

The policy is a frozen dataclass so it can ride inside specs and be shared across
threads; all delay computation is pure (``(seed, key, attempt) -> seconds``).  That
purity is load-bearing under the two-level sweep scheduler (``Session.sweep(jobs=N)``):
every cell thread evaluates its own retry/backoff schedule concurrently against the
same shared policy object, and because each delay is keyed by the cell's own
``(seed, key, attempt)`` the schedule any one cell observes is independent of which
sibling cells happen to be in flight — retries and quarantine decisions are
bit-identical whether a sweep runs serially or with ``jobs > 1``.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a sweep cell is retried, backed off, and bounded in time."""

    #: Total attempts per cell (1 = no retry).  The cell is quarantined after this.
    max_attempts: int = 3
    #: Base delay before the second attempt (0 disables sleeping entirely).
    backoff_s: float = 0.0
    #: Multiplier applied per further attempt (exponential backoff).
    backoff_factor: float = 2.0
    #: Hard cap on any single delay.
    max_backoff_s: float = 30.0
    #: ± fraction of jitter applied to each delay (0.1 = up to 10% either way).
    jitter: float = 0.1
    #: Seed of the jitter stream — same seed, same key, same attempt: same delay.
    seed: int = 0
    #: Per-attempt wall-clock budget (``None`` = unbounded).
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0 or self.backoff_factor < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff knobs must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    def should_retry(self, attempt: int) -> bool:
        """Whether another attempt follows ``attempt`` (1-based) failing."""
        return attempt < self.max_attempts

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep after attempt ``attempt`` (1-based) failed.

        Deterministic: the jitter factor is drawn from a stream seeded by
        ``(seed, key, attempt)``, so resuming or replaying a sweep produces the
        exact same backoff schedule for every cell.
        """
        if self.backoff_s <= 0:
            return 0.0
        delay = self.backoff_s * (self.backoff_factor ** max(0, attempt - 1))
        delay = min(delay, self.max_backoff_s)
        if self.jitter:
            stream = random.Random(f"{self.seed}:{key}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * stream.random() - 1.0)
        return min(delay, self.max_backoff_s)

    # ------------------------------------------------------------------ wire form
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready form, for shipping the policy across the sweep fabric."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`; unknown keys are rejected with the field list.

        The fabric hello handshake already pins the protocol version, so an unknown
        key here is a local bug (or a hand-edited file), not a version skew.
        """
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown RetryPolicy field(s) {', '.join(unknown)} — "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        return cls(**dict(data))
