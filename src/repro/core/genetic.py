"""GA-based global optimizer (paper §IV-D, Fig. 12 and Fig. 24b).

The deterministic schedulers (GCMR + memory scheduler) are greedy and can land in local
optima — for instance, pairing a Sender with the nearest Helper even when a slightly
farther pairing would unblock a better recomputation choice.  The genetic optimizer
explores the joint space of (recomputation config, stage placement, Mem_pairs) with the
five operators the paper defines:

* **Op1** R-variation — toggle recomputation of one operator in one stage;
* **Op2** R-crossover — swap the recomputation configuration of two stages;
* **Op3** placement variation — swap the physical blocks of two stages;
* **Op4** A-variation — reroute part of a Sender's overflow to a different Helper;
* **Op5** A-crossover — exchange the Mem_pair allocations of two Senders.

Selection mixes elitism and binary tournament; the ``omega`` knob is the elitism share
whose convergence/quality trade-off Fig. 24b sweeps.  Fitness is ``t_max × GlobalCost``
(lower is better), with out-of-memory individuals penalised to infinity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from operator import itemgetter
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.parallel_map import WorkerPool
from repro.core.runtime import resolve_loop_session
from repro.core.placement import global_cost
from repro.core.plan import MemPair, RecomputeConfig, TrainingPlan
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the genetic optimizer."""

    population_size: int = 16
    generations: int = 30
    omega: float = 0.5          # elitism share; the rest is binary tournament
    mutation_rate: float = 0.7
    crossover_rate: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population must have at least two individuals")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError("omega must be within [0, 1]")

    def stream(self, index: int) -> "GAConfig":
        """This config with an independent, reproducible RNG stream for fan-out.

        A multi-wafer (or multi-point) sweep runs one GA per wafer; giving wafer ``i``
        ``config.stream(i)`` decorrelates the search trajectories while keeping every
        stream a pure function of (base seed, index) — so a parallel fan-out and a
        serial loop over the same streams are bit-identical.  Stream 0 is the base
        config itself.
        """
        if index < 0:
            raise ValueError("stream index cannot be negative")
        if index == 0:
            return self
        return replace(self, seed=(self.seed * 1_000_003 + index) & 0x7FFF_FFFF)


@dataclass(frozen=True)
class GAResult:
    """Outcome of a GA run."""

    best_plan: TrainingPlan
    best_result: EvaluationResult
    best_fitness: float
    history: Tuple[float, ...]           # best fitness per generation
    throughput_history: Tuple[float, ...]

    @property
    def generations(self) -> int:
        return len(self.history)


class GeneticOptimizer:
    """Evolves training plans around a seed plan produced by the central scheduler."""

    def __init__(
        self,
        evaluator: Evaluator,
        workload: TrainingWorkload,
        config: Optional[GAConfig] = None,
    ) -> None:
        self.evaluator = evaluator
        self.workload = workload
        self.config = config or GAConfig()
        self._rng = random.Random(self.config.seed)
        self._operator_names = [op.name for op in workload.layer_operators() if op.recomputable]

    # ------------------------------------------------------------------ fitness
    def fitness(self, plan: TrainingPlan) -> Tuple[float, EvaluationResult]:
        """Paper fitness: iteration time × (1 + normalised GlobalCost); lower is better."""
        result = self.evaluator.evaluate(self.workload, plan)
        return self._fitness_of(plan, result), result

    def _fitness_of(self, plan: TrainingPlan, result: EvaluationResult) -> float:
        """The fitness of an already-priced plan (shared by serial and parallel paths)."""
        if result.oom:
            return float("inf")
        placement = plan.placement or self.evaluator.default_placement(plan)
        cost = global_cost(placement, plan.mem_pairs)
        normaliser = max(1.0, plan.parallelism.pp)
        return result.iteration_time * (1.0 + cost / (10.0 * normaliser))

    def _score_population(
        self, population: Sequence[TrainingPlan], parallel: Union[int, WorkerPool, None]
    ) -> List[Tuple[float, EvaluationResult]]:
        """Price every individual, in population order.

        Delegates to :meth:`Evaluator.evaluate_many` — the shared cache-aware pool
        path — so the parallel run returns exactly what the serial run would.
        """
        results = self.evaluator.evaluate_many(self.workload, list(population), parallel)
        return [
            (self._fitness_of(plan, result), result)
            for plan, result in zip(population, results)
        ]

    # ------------------------------------------------------------------ GA operators
    def _op1_toggle_recompute(self, plan: TrainingPlan) -> TrainingPlan:
        if not self._operator_names:
            return plan
        pp = plan.parallelism.pp
        stage = self._rng.randrange(pp)
        name = self._rng.choice(self._operator_names)
        current = set(plan.recompute.stage(stage))
        if name in current:
            current.remove(name)
        else:
            current.add(name)
        return plan.with_recompute(plan.recompute.with_stage(stage, frozenset(current)))

    def _op2_swap_recompute(self, plan: TrainingPlan) -> TrainingPlan:
        pp = plan.parallelism.pp
        if pp < 2:
            return plan
        a, b = self._rng.sample(range(pp), 2)
        recompute = plan.recompute
        set_a, set_b = recompute.stage(a), recompute.stage(b)
        return plan.with_recompute(
            recompute.with_stage(a, set_b).with_stage(b, set_a)
        )

    def _op3_swap_placement(self, plan: TrainingPlan) -> TrainingPlan:
        placement = plan.placement or self.evaluator.default_placement(plan)
        pp = placement.num_stages
        if pp < 2:
            return plan
        a, b = self._rng.sample(range(pp), 2)
        order = list(range(pp))
        order[a], order[b] = order[b], order[a]
        return plan.with_placement(placement.permuted(order))

    def _op4_vary_mem_pair(self, plan: TrainingPlan) -> TrainingPlan:
        if not plan.mem_pairs:
            return plan
        pairs = list(plan.mem_pairs)
        index = self._rng.randrange(len(pairs))
        pair = pairs[index]
        pp = plan.parallelism.pp
        candidates = [s for s in range(pp) if s not in (pair.sender_stage,)]
        if not candidates:
            return plan
        new_helper = self._rng.choice(candidates)
        if new_helper == pair.helper_stage:
            # Shrink the transfer instead, freeing the Helper for other Senders.
            pairs[index] = replace(pair, bytes_moved=pair.bytes_moved * 0.5)
        else:
            moved = pair.bytes_moved * self._rng.uniform(0.3, 1.0)
            pairs[index] = replace(pair, bytes_moved=pair.bytes_moved - moved)
            pairs.append(MemPair(pair.sender_stage, new_helper, moved))
        pairs = [p for p in pairs if p.bytes_moved > 1e-6]
        return plan.with_mem_pairs(pairs)

    def _op5_swap_mem_pairs(self, plan: TrainingPlan) -> TrainingPlan:
        senders = sorted({p.sender_stage for p in plan.mem_pairs})
        if len(senders) < 2:
            return plan
        a, b = self._rng.sample(senders, 2)
        pairs = []
        for pair in plan.mem_pairs:
            if pair.sender_stage == a and pair.helper_stage != b:
                pairs.append(replace(pair, sender_stage=b))
            elif pair.sender_stage == b and pair.helper_stage != a:
                pairs.append(replace(pair, sender_stage=a))
            else:
                pairs.append(pair)
        return plan.with_mem_pairs(pairs)

    def mutate(self, plan: TrainingPlan) -> TrainingPlan:
        """Apply one randomly chosen GA operator."""
        operators = [
            self._op1_toggle_recompute,
            self._op2_swap_recompute,
            self._op3_swap_placement,
            self._op4_vary_mem_pair,
            self._op5_swap_mem_pairs,
        ]
        return self._rng.choice(operators)(plan)

    def crossover(self, parent_a: TrainingPlan, parent_b: TrainingPlan) -> TrainingPlan:
        """Child takes parent A's placement and a stage-wise mix of recompute configs."""
        pp = parent_a.parallelism.pp
        stages = []
        for stage in range(pp):
            source = parent_a if self._rng.random() < 0.5 else parent_b
            stages.append(source.recompute.stage(stage))
        child = parent_a.with_recompute(RecomputeConfig(stages=tuple(stages)))
        if self._rng.random() < 0.5 and parent_b.mem_pairs:
            child = child.with_mem_pairs(parent_b.mem_pairs)
        return child

    # ------------------------------------------------------------------ selection
    def _select(self, scored: List[Tuple[float, TrainingPlan]]) -> List[TrainingPlan]:
        # Sort/min on the fitness alone (itemgetter(0)): comparing the raw tuples would
        # fall through to the plans on fitness ties and TrainingPlan is not orderable.
        # sorted() is stable, so equal-fitness plans keep their population order.
        scored = sorted(scored, key=itemgetter(0))
        survivors: List[TrainingPlan] = []
        elite_count = max(1, int(round(self.config.omega * self.config.population_size / 2)))
        survivors.extend(plan for _, plan in scored[:elite_count])
        while len(survivors) < self.config.population_size // 2:
            a, b = self._rng.sample(scored, 2)
            survivors.append(min(a, b, key=itemgetter(0))[1])
        return survivors

    # ------------------------------------------------------------------ main loop
    def optimize(
        self,
        seed_plan: TrainingPlan,
        parallel: Union[int, WorkerPool, None] = None,
        session=None,
    ) -> GAResult:
        """Run the GA starting from (and always retaining) the seed plan.

        ``session`` (a :class:`repro.api.Session`) supplies the worker pool each
        generation's unique individuals are priced on; without one, the ambient
        session (``with Session(...):`` / ``repro.api.default_session()``) is used,
        and without that the run is serial.  The GA trajectory — selection, best
        plan, fitness history — is identical to the serial run for any worker count.

        ``parallel`` is the deprecated spelling (a :class:`WorkerPool` or an integer
        for an ephemeral pool, negative = all CPUs); it warns once and behaves as an
        implicit single-knob session.
        """
        resolved = resolve_loop_session(
            session, parallel=parallel, api="GeneticOptimizer.optimize(parallel=)"
        )
        parallel = resolved.parallel if resolved is not None else None
        population: List[TrainingPlan] = [seed_plan]
        while len(population) < self.config.population_size:
            population.append(self.mutate(seed_plan))

        best_plan = seed_plan
        best_fitness, best_result = self.fitness(seed_plan)
        history: List[float] = []
        throughput_history: List[float] = []

        for _ in range(self.config.generations):
            scored = []
            for plan, (fit, result) in zip(
                population, self._score_population(population, parallel)
            ):
                scored.append((fit, plan))
                if fit < best_fitness:
                    best_fitness, best_plan, best_result = fit, plan, result
            history.append(best_fitness)
            throughput_history.append(best_result.throughput)

            survivors = self._select(scored)
            next_population = list(survivors)
            while len(next_population) < self.config.population_size:
                if self._rng.random() < self.config.crossover_rate and len(survivors) >= 2:
                    a, b = self._rng.sample(survivors, 2)
                    child = self.crossover(a, b)
                else:
                    child = self._rng.choice(survivors)
                if self._rng.random() < self.config.mutation_rate:
                    child = self.mutate(child)
                next_population.append(child)
            population = next_population

        return GAResult(
            best_plan=best_plan,
            best_result=best_result,
            best_fitness=best_fitness,
            history=tuple(history),
            throughput_history=tuple(throughput_history),
        )
