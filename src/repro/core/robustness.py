"""Robustness and reliability evaluation (paper §VI-D, Fig. 22).

WATOS's robust mode localises faults, reschedules work away from degraded dies and
reroutes traffic around degraded links.  The non-robust baseline keeps its static plan,
so a degraded or dead die gates its whole stage and a degraded link throttles every
transfer routed across it.  Both modes are evaluated through the same :class:`Evaluator`
with its ``fault_aware`` switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.plan import TrainingPlan
from repro.hardware.faults import FaultModel
from repro.hardware.template import WaferConfig
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class RobustnessPoint:
    """Throughput of robust and baseline WATOS at one fault rate."""

    fault_rate: float
    robust_throughput: float
    baseline_throughput: float

    @property
    def improvement(self) -> float:
        if self.baseline_throughput == 0:
            return float("inf") if self.robust_throughput > 0 else 1.0
        return self.robust_throughput / self.baseline_throughput


class RobustnessEvaluator:
    """Sweeps link/die fault rates and compares robust vs non-robust execution."""

    def __init__(self, wafer: WaferConfig, workload: TrainingWorkload, plan: TrainingPlan,
                 seed: int = 0) -> None:
        self.wafer = wafer
        self.workload = workload
        self.plan = plan
        self.seed = seed

    def _evaluate(self, faults: FaultModel, fault_aware: bool) -> EvaluationResult:
        evaluator = Evaluator(self.wafer, faults=faults, fault_aware=fault_aware)
        return evaluator.evaluate(self.workload, self.plan)

    def point(self, link_fault_rate: float = 0.0, die_fault_rate: float = 0.0) -> RobustnessPoint:
        """Robust vs baseline throughput at one (link, die) fault-rate pair."""
        faults = FaultModel.random(
            self.wafer.dies_x,
            self.wafer.dies_y,
            link_fault_rate=link_fault_rate,
            die_fault_rate=die_fault_rate,
            seed=self.seed,
        )
        robust = self._evaluate(faults, fault_aware=True)
        baseline = self._evaluate(faults, fault_aware=False)
        rate = max(link_fault_rate, die_fault_rate)
        return RobustnessPoint(
            fault_rate=rate,
            robust_throughput=robust.throughput,
            baseline_throughput=baseline.throughput,
        )

    def sweep_link_faults(self, rates: Sequence[float]) -> List[RobustnessPoint]:
        """Fig. 22b top: throughput vs link fault rate."""
        return [self.point(link_fault_rate=rate) for rate in rates]

    def sweep_die_faults(self, rates: Sequence[float]) -> List[RobustnessPoint]:
        """Fig. 22b bottom: throughput vs die fault rate."""
        return [self.point(die_fault_rate=rate) for rate in rates]
