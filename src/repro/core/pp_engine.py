"""PP execution engine: inter-stage communication planning (paper §IV-E-2, Fig. 13).

The PP engine identifies every inter-stage communication task — activation transfers
between adjacent pipeline stages and checkpoint-balancing transfers between Mem_pair
stages — routes each on the mesh, and assigns tasks to links in order of size while
penalising links that already carry traffic.  The result is the per-boundary transfer
time the pipeline simulator uses and the conflict count γ that feeds Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.plan import MemPair, StagePlacement
from repro.interconnect.routing import LinkLoadTracker, fault_aware_path, xy_path
from repro.interconnect.topology import MeshTopology
from repro.units import FP16_BYTES

Coord = Tuple[int, int]


@dataclass(frozen=True)
class CommTask:
    """One inter-stage communication task (pipeline transfer or checkpoint balancing)."""

    kind: str  # "pipeline" | "balance"
    src_stage: int
    dst_stage: int
    size_bytes: float
    path: Tuple[Coord, ...]
    conflicts: int

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


@dataclass(frozen=True)
class InterStageCommPlan:
    """The routed communication plan of one candidate placement."""

    tasks: Tuple[CommTask, ...]
    boundary_times: Tuple[float, ...]
    balance_exposed_time: float
    link_utilization: float
    total_hops: int

    @property
    def total_conflicts(self) -> int:
        return sum(task.conflicts for task in self.tasks)

    @property
    def pipeline_hops(self) -> int:
        return sum(task.hops for task in self.tasks if task.kind == "pipeline")

    @property
    def balance_hops(self) -> int:
        return sum(task.hops for task in self.tasks if task.kind == "balance")


class PPEngine:
    """Routes and prices inter-stage communication on the wafer mesh."""

    #: Fraction of a checkpoint-balancing transfer that cannot be hidden behind DRAM
    #: access per hop / per conflicting link.  Balancing is DRAM-bound on a WSC
    #: (§IV-C-2) so only routing distance and contention leak into the critical path.
    BALANCE_EXPOSURE_PER_HOP = 0.02
    BALANCE_EXPOSURE_PER_CONFLICT = 0.10

    def __init__(self, mesh: MeshTopology) -> None:
        self.mesh = mesh

    # ------------------------------------------------------------------ task building
    def _route(self, tracker: LinkLoadTracker, src: Coord, dst: Coord) -> Tuple[Tuple[Coord, ...], int]:
        """Pick the cheapest path: prefer an unconflicted shortest path when one exists."""
        if src == dst:
            return (src,), 0
        candidates: List[Sequence[Coord]] = [xy_path(src, dst)]
        # Also consider the YX route; on a mesh it is the other canonical shortest path.
        yx = list(reversed(xy_path(dst, src)))
        if yx != candidates[0]:
            candidates.append(yx)
        if not self.mesh.faults.is_empty:
            candidates = [fault_aware_path(self.mesh, src, dst)]
        scored = [(tracker.conflicts(path), len(path), tuple(path)) for path in candidates]
        conflicts, _, path = min(scored)
        return path, conflicts

    def plan(
        self,
        placement: StagePlacement,
        activation_bytes: float,
        mem_pairs: Sequence[MemPair] = (),
        microbatch_dram_time: float = 0.0,
    ) -> InterStageCommPlan:
        """Route pipeline and balancing traffic for a placement.

        Parameters
        ----------
        placement:
            Stage → dies assignment.
        activation_bytes:
            Per-micro-batch activation transferred across each pipeline boundary.
        mem_pairs:
            Sender→Helper checkpoint-balancing pairs with their byte volumes (per
            iteration).
        microbatch_dram_time:
            Time one micro-batch's checkpoint write already spends in DRAM; balancing
            traffic overlaps with it and only the exposure fractions leak out.
        """
        if activation_bytes < 0:
            raise ValueError("activation size cannot be negative")
        pp = placement.num_stages
        tracker = LinkLoadTracker(self.mesh)
        tasks: List[CommTask] = []

        # Pipeline transfers between adjacent stages, largest first (they are all equal
        # here, so order by stage index for determinism).
        boundary_paths: List[Tuple[Tuple[Coord, ...], int]] = []
        for stage in range(pp - 1):
            src, dst = placement.boundary_dies(stage, stage + 1)
            path, conflicts = self._route(tracker, src, dst)
            tracker.add_path(path, activation_bytes)
            tasks.append(
                CommTask("pipeline", stage, stage + 1, activation_bytes, path, conflicts)
            )
            boundary_paths.append((path, conflicts))

        # Checkpoint-balancing transfers, largest volume first (§IV-E-2's size ordering).
        balance_exposed = 0.0
        for pair in sorted(mem_pairs, key=lambda p: -p.bytes_moved):
            if pair.bytes_moved == 0:
                continue
            src, dst = placement.boundary_dies(pair.sender_stage, pair.helper_stage)
            path, conflicts = self._route(tracker, src, dst)
            tracker.add_path(path, pair.bytes_moved)
            task = CommTask(
                "balance", pair.sender_stage, pair.helper_stage, pair.bytes_moved, path, conflicts
            )
            tasks.append(task)
            hops = task.hops
            exposure = (
                self.BALANCE_EXPOSURE_PER_HOP * hops
                + self.BALANCE_EXPOSURE_PER_CONFLICT * conflicts
            )
            transfer_time = pair.bytes_moved / self.mesh.link_bandwidth
            # The bulk of the transfer hides behind the checkpoint's own DRAM write; only
            # the routing/contention exposure reaches the critical path.
            hidden = min(transfer_time, microbatch_dram_time)
            balance_exposed += (transfer_time - hidden) * 0.5 + transfer_time * exposure

        # Per-boundary transfer time including contention from everything routed above.
        # Traffic forced across failed links is priced at a 5% quality floor rather than
        # rejected, mirroring the degraded-but-functional behaviour of §VI-D.
        boundary_times: List[float] = []
        for stage, (path, _) in enumerate(boundary_paths):
            boundary_times.append(
                tracker.congestion_time(activation_bytes, path, min_quality=0.05)
            )

        return InterStageCommPlan(
            tasks=tuple(tasks),
            boundary_times=tuple(boundary_times),
            balance_exposed_time=balance_exposed,
            link_utilization=tracker.utilization(),
            total_hops=sum(task.hops for task in tasks),
        )

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def activation_bytes(workload, tp: int = 1) -> float:
        """Per-micro-batch activation crossing a pipeline boundary (full hidden state)."""
        return float(
            workload.micro_batch_size
            * workload.seq_len
            * workload.model.hidden_size
            * FP16_BYTES
        )
