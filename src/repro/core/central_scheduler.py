"""Early-pruning central scheduler (paper §IV-A, Alg. 1).

The central scheduler owns the outer loop of the co-exploration engine for one wafer
configuration: it enumerates feasible (TP, PP) splits of the model-parallel dies,
prunes candidates whose modelP cannot possibly fit the aggregate DRAM, delegates
memory-tight candidates to the downstream schedulers (GCMR recomputation, placement and
DRAM allocation), evaluates every surviving plan and keeps the best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.dram_allocation import DramAllocator
from repro.core.evalcache import EvaluationCache
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.parallel_map import WorkerPool
from repro.core.placement import PlacementOptimizer, serpentine_placement
from repro.core.plan import RecomputeConfig, TrainingPlan
from repro.core.recomputation import GcmrScheduler
from repro.core.runtime import resolve_loop_session
from repro.hardware.template import WaferConfig
from repro.interconnect.collectives import CollectiveAlgorithm
from repro.interconnect.topology import MeshTopology
from repro.parallelism.partition import TPSplitStrategy, best_mesh_shape
from repro.parallelism.strategies import enumerate_tp_pp, ParallelismConfig
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class ExplorationRecord:
    """One evaluated point of the (TP, PP, split-strategy) space."""

    plan: TrainingPlan
    result: EvaluationResult

    @property
    def throughput(self) -> float:
        return self.result.throughput


@dataclass
class CentralScheduler:
    """Alg. 1: enumerate, prune, delegate, evaluate."""

    wafer: WaferConfig
    evaluator: Optional[Evaluator] = None
    #: Shared evaluation cache used when no explicit ``evaluator`` is supplied.
    #: Deprecated in favour of ``session=`` — a :class:`repro.api.Session` supplies
    #: both the cache and the worker pool; the kwarg remains as a one-warning shim.
    cache: Optional[EvaluationCache] = None
    #: The owning :class:`repro.api.Session` (or any object with ``.cache`` /
    #: ``.parallel``).  When neither it nor ``cache``/``evaluator`` is given, the
    #: ambient session (``with Session(...):`` / ``default_session()``) is used.
    session: Optional[object] = None
    collective: CollectiveAlgorithm = CollectiveAlgorithm.BIDIRECTIONAL_RING
    #: Collective algorithms the TP engine is allowed to explore (§IV-E-1: "can also be
    #: configured to explore other intra-stage communication mechanisms").
    search_collectives: Sequence[CollectiveAlgorithm] = (
        CollectiveAlgorithm.BIDIRECTIONAL_RING,
        CollectiveAlgorithm.TACOS,
    )
    split_strategies: Sequence[TPSplitStrategy] = (TPSplitStrategy.HIDDEN,)
    max_tp: int = 0
    optimize_placement: bool = True

    def __post_init__(self) -> None:
        resolved = resolve_loop_session(
            self.session,
            cache=self.cache if self.evaluator is None else None,
            api="CentralScheduler(cache=)",
        )
        if self.session is None:
            self.session = resolved
        if self.evaluator is None:
            cache = resolved.cache if resolved is not None else None
            self.evaluator = Evaluator(self.wafer, cache=cache)
        self._gcmr = GcmrScheduler(self.wafer)
        self._mesh = MeshTopology.from_wafer(self.wafer)

    # ------------------------------------------------------------------ pruning
    def prunes(self, workload: TrainingWorkload, model_parallel_dies: int) -> bool:
        """Alg. 1 lines 1–2: modelP can never fit, whatever the split — prune."""
        capacity = self.wafer.die.dram_capacity
        return workload.model_state_bytes / model_parallel_dies > capacity

    def needs_downstream(
        self, workload: TrainingWorkload, tp: int, pp: int, num_microbatches: int
    ) -> bool:
        """Alg. 1 line 5: modelP + full checkpoints exceed the aggregate memory."""
        memory = TrainingMemoryModel(workload.model)
        capacity = self.wafer.die.dram_capacity
        breakdown = memory.pipeline_breakdown(
            pp, tp, workload.micro_batch_size, workload.seq_len, num_microbatches
        )
        return any(stage.total_bytes > capacity for stage in breakdown)

    # ------------------------------------------------------------------ plan building
    def build_plan(
        self,
        workload: TrainingWorkload,
        tp: int,
        pp: int,
        split_strategy: TPSplitStrategy = TPSplitStrategy.HIDDEN,
        collective: Optional[CollectiveAlgorithm] = None,
    ) -> Optional[TrainingPlan]:
        """Build the best plan the deterministic schedulers produce for a (TP, PP) pair.

        Returns ``None`` when the configuration cannot be made memory-feasible even with
        full recomputation and checkpoint balancing.
        """
        chosen_collective = collective or self.collective
        try:
            tp_shape = best_mesh_shape(tp, self.wafer.dies_x, self.wafer.dies_y)
        except ValueError:
            return None
        num_microbatches = workload.num_microbatches(1)
        parallelism = ParallelismConfig(dp=1, tp=tp, pp=pp)

        if not self.needs_downstream(workload, tp, pp, num_microbatches):
            placement = serpentine_placement(self.wafer.dies_x, self.wafer.dies_y, tp_shape, pp)
            return TrainingPlan(
                parallelism=parallelism,
                tp_shape=tp_shape,
                collective=chosen_collective,
                split_strategy=split_strategy,
                recompute=RecomputeConfig.none(pp),
                placement=placement,
            )

        gcmr = self._gcmr.schedule(workload, tp, pp, num_microbatches)
        if not gcmr.feasible:
            return None

        capacity = self.wafer.die.dram_capacity
        sender_overflow = {
            s: gcmr.stage_memory_bytes[s] - capacity
            for s in gcmr.senders
            if gcmr.stage_memory_bytes[s] > capacity
        }
        helper_spare = {
            s: capacity - gcmr.stage_memory_bytes[s]
            for s in gcmr.helpers
            if gcmr.stage_memory_bytes[s] < capacity
        }

        if self.optimize_placement and sender_overflow:
            optimizer = PlacementOptimizer(self._mesh)
            placement = optimizer.optimize(tp_shape, pp, gcmr.mem_pairs)
        else:
            placement = serpentine_placement(self.wafer.dies_x, self.wafer.dies_y, tp_shape, pp)

        allocator = DramAllocator(placement)
        allocation = allocator.allocate(sender_overflow, helper_spare)
        if not allocation.feasible:
            return None

        return TrainingPlan(
            parallelism=parallelism,
            tp_shape=tp_shape,
            collective=chosen_collective,
            split_strategy=split_strategy,
            recompute=gcmr.recompute,
            placement=placement,
            mem_pairs=allocation.pairs,
        )

    # ------------------------------------------------------------------ exploration
    def explore(
        self,
        workload: TrainingWorkload,
        model_parallel_dies: Optional[int] = None,
        parallel: Union[int, WorkerPool, None] = None,
        session=None,
    ) -> List[ExplorationRecord]:
        """Evaluate every surviving (TP, PP, split-strategy) candidate.

        ``session`` supplies the worker pool the surviving candidates are priced on
        (defaulting to the scheduler's own session, then the ambient one); candidate
        construction and result order are unchanged, so the records match the serial
        run exactly.  ``parallel`` is the deprecated spelling (a :class:`WorkerPool`
        or an integer for an ephemeral pool, negative = all CPUs); it warns once.
        """
        resolved = resolve_loop_session(
            session,
            parallel=parallel,
            api="CentralScheduler.explore(parallel=)",
            fallback=self.session,
        )
        parallel = resolved.parallel if resolved is not None else None
        mp = model_parallel_dies or self.wafer.num_dies
        if mp > self.wafer.num_dies:
            raise ValueError("model-parallel dies exceed the wafer's die count")
        if self.prunes(workload, mp):
            return []
        collectives = tuple(self.search_collectives) or (self.collective,)
        plans: List[TrainingPlan] = []
        for tp, pp in enumerate_tp_pp(mp, workload.model.num_layers, max_tp=self.max_tp):
            for strategy in self.split_strategies:
                for collective in collectives:
                    plan = self.build_plan(workload, tp, pp, strategy, collective)
                    if plan is not None:
                        plans.append(plan)
        results = self.evaluator.evaluate_many(workload, plans, parallel)
        return [
            ExplorationRecord(plan=plan, result=result)
            for plan, result in zip(plans, results)
        ]

    def best(
        self,
        workload: TrainingWorkload,
        model_parallel_dies: Optional[int] = None,
        parallel: Union[int, WorkerPool, None] = None,
        session=None,
    ) -> Optional[ExplorationRecord]:
        """The highest-throughput record, or ``None`` when everything was pruned."""
        records = [
            record
            for record in self.explore(
                workload, model_parallel_dies, parallel=parallel, session=session
            )
            if not record.result.oom
        ]
        if not records:
            return None
        return max(records, key=lambda record: record.throughput)
