"""The WATOS framework front-end (paper Fig. 9).

``Watos`` ties the pieces together: the enumerator (or an explicit candidate list)
produces wafer configurations, the central scheduler + GCMR + memory scheduler produce a
strong deterministic plan per (wafer, workload) pair, and the GA-based global optimizer
refines it.  The result object carries the best architecture, the mapping scheme
(training plan) and performance reports for every explored point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.central_scheduler import CentralScheduler, ExplorationRecord
from repro.core.evalcache import EvaluationCache
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.genetic import GAConfig, GeneticOptimizer
from repro.core.parallel_map import (
    WorkerPool,
    parallel_map_merge,
    resolve_workers,
    task_cache,
)
from repro.core.plan import TrainingPlan
from repro.core.runtime import SessionHandle, resolve_loop_session
from repro.hardware.enumerator import ArchitectureEnumerator
from repro.hardware.template import WaferConfig
from repro.interconnect.collectives import CollectiveAlgorithm
from repro.parallelism.partition import TPSplitStrategy
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class WorkloadOutcome:
    """Best plan and result found for one workload on one wafer configuration."""

    wafer: WaferConfig
    workload: TrainingWorkload
    plan: TrainingPlan
    result: EvaluationResult
    ga_history: Tuple[float, ...] = ()

    @property
    def throughput(self) -> float:
        return self.result.throughput


@dataclass
class WatosResult:
    """Everything the co-exploration produced."""

    outcomes: List[WorkloadOutcome] = field(default_factory=list)
    exploration_records: Dict[str, List[ExplorationRecord]] = field(default_factory=dict)

    def outcomes_for_wafer(self, wafer_name: str) -> List[WorkloadOutcome]:
        return [o for o in self.outcomes if o.wafer.name == wafer_name]

    def outcomes_for_workload(self, model_name: str) -> List[WorkloadOutcome]:
        return [o for o in self.outcomes if o.workload.model.name == model_name]

    def best_wafer(self) -> Optional[str]:
        """The wafer with the highest geometric-mean throughput across workloads."""
        by_wafer: Dict[str, List[float]] = {}
        for outcome in self.outcomes:
            by_wafer.setdefault(outcome.wafer.name, []).append(outcome.throughput)
        if not by_wafer:
            return None

        def geomean(values: List[float]) -> float:
            positive = [v for v in values if v > 0]
            if not positive:
                return 0.0
            product = 1.0
            for v in positive:
                product *= v
            return product ** (1.0 / len(positive))

        return max(by_wafer, key=lambda name: geomean(by_wafer[name]))

    def best_outcome(self, model_name: str) -> Optional[WorkloadOutcome]:
        outcomes = self.outcomes_for_workload(model_name)
        if not outcomes:
            return None
        return max(outcomes, key=lambda o: o.throughput)


class _ExplorePointTask:
    """Picklable task pricing one (wafer, workload) point of the co-exploration.

    Carries only the exploration hyper-parameters — never the shared cache.  The
    cache to price against comes from :func:`task_cache`: the parent's shared cache
    on the serial path (zero copies), the worker's resident shard inside a
    :class:`WorkerPool` (kept coherent by watermarked deltas).  The search trajectory
    is a pure function of the point, never of the cache contents, which is what keeps
    the parallel fan-out bit-identical to the serial loop.
    """

    def __init__(self, watos: "Watos") -> None:
        self.use_ga = watos.use_ga
        self.ga_config = watos.ga_config
        self.collective = watos.collective
        self.split_strategies = watos.split_strategies
        self.max_tp = watos.max_tp

    def __call__(self, point: Tuple[WaferConfig, TrainingWorkload]):
        return self.price(point, cache=task_cache())

    def price(self, point: Tuple[WaferConfig, TrainingWorkload], cache, inner_pool=None):
        """Price one point; ``inner_pool`` lets the nested loops borrow a session pool.

        The trajectory is pool-independent (pool pricing is pure memoization), so
        the result is bit-identical whether the inner loops run serial, on a borrowed
        pool, or inside an outer fan-out worker.
        """
        wafer, workload = point
        evaluator = Evaluator(wafer, cache=cache) if cache is not None else Evaluator(wafer)
        # Always hand the nested loops an explicit session handle (possibly empty):
        # pricing one point must be a pure function of the point, never of whatever
        # ambient session happens to be active in the calling process.
        inner = SessionHandle(parallel=inner_pool)
        scheduler = CentralScheduler(
            wafer,
            evaluator=evaluator,
            session=inner,
            collective=self.collective,
            split_strategies=self.split_strategies,
            max_tp=self.max_tp,
        )
        records = scheduler.explore(workload)
        outcome: Optional[WorkloadOutcome] = None
        feasible = [r for r in records if not r.result.oom]
        if feasible:
            best = max(feasible, key=lambda r: r.result.throughput)
            plan, best_result = best.plan, best.result
            ga_history: Tuple[float, ...] = ()
            if self.use_ga:
                optimizer = GeneticOptimizer(evaluator, workload, self.ga_config)
                ga_outcome = optimizer.optimize(plan, session=inner)
                if ga_outcome.best_result.throughput >= best_result.throughput:
                    plan, best_result = ga_outcome.best_plan, ga_outcome.best_result
                ga_history = ga_outcome.history
            outcome = WorkloadOutcome(
                wafer=wafer,
                workload=workload,
                plan=plan,
                result=best_result,
                ga_history=ga_history,
            )
        return records, outcome


class Watos:
    """Co-exploration of wafer-scale architecture and LLM training strategy."""

    def __init__(
        self,
        candidates: Optional[Sequence[WaferConfig]] = None,
        enumerator: Optional[ArchitectureEnumerator] = None,
        use_ga: bool = True,
        ga_config: Optional[GAConfig] = None,
        collective: CollectiveAlgorithm = CollectiveAlgorithm.BIDIRECTIONAL_RING,
        split_strategies: Sequence[TPSplitStrategy] = (TPSplitStrategy.HIDDEN,),
        max_tp: int = 0,
        cache: Optional[EvaluationCache] = None,
        session=None,
    ) -> None:
        if candidates is None and enumerator is None:
            enumerator = ArchitectureEnumerator()
        self.candidates = list(candidates) if candidates is not None else enumerator.enumerate()
        if not self.candidates:
            raise ValueError("no feasible wafer configurations to explore")
        self.use_ga = use_ga
        self.ga_config = ga_config or GAConfig(population_size=10, generations=12)
        self.collective = collective
        self.split_strategies = tuple(split_strategies)
        self.max_tp = max_tp
        #: The owning :class:`repro.api.Session`; it supplies the shared cache and
        #: worker pool.  The legacy ``cache=`` kwarg warns once and behaves as an
        #: implicit single-knob session; without either, the ambient session is used.
        self.session = resolve_loop_session(session, cache=cache, api="Watos(cache=)")
        #: One content-addressed cache shared by every (wafer, workload) point — the
        #: fingerprint covers the wafer, so heterogeneous candidates coexist safely.
        #: Attach a store (``EvaluationCache(store=path)``) to persist across runs.
        session_cache = self.session.cache if self.session is not None else None
        self.cache = session_cache if session_cache is not None else EvaluationCache()

    # ------------------------------------------------------------------ single point
    def optimize(
        self, wafer: WaferConfig, workload: TrainingWorkload, session=None
    ) -> Optional[WorkloadOutcome]:
        """Find the best training plan for one workload on one wafer.

        With a session (explicit, the instance's own, or the ambient one) the nested
        scheduler and GA loops borrow its worker pool; results are identical to the
        serial run.
        """
        resolved = resolve_loop_session(session, fallback=self.session)
        # Pools and integers both pass straight through to the nested loops (an
        # integer means ephemeral pools inside them, the legacy semantics).
        inner = SessionHandle(parallel=resolved.parallel if resolved is not None else None)
        evaluator = Evaluator(wafer, cache=self.cache)
        scheduler = CentralScheduler(
            wafer,
            evaluator=evaluator,
            session=inner,
            collective=self.collective,
            split_strategies=self.split_strategies,
            max_tp=self.max_tp,
        )
        best = scheduler.best(workload)
        if best is None:
            return None
        plan, result = best.plan, best.result
        ga_history: Tuple[float, ...] = ()
        if self.use_ga:
            optimizer = GeneticOptimizer(evaluator, workload, self.ga_config)
            ga_result = optimizer.optimize(plan, session=inner)
            if ga_result.best_result.throughput >= result.throughput:
                plan, result = ga_result.best_plan, ga_result.best_result
            ga_history = ga_result.history
        self.cache.flush()
        return WorkloadOutcome(
            wafer=wafer, workload=workload, plan=plan, result=result, ga_history=ga_history
        )

    # ------------------------------------------------------------------ full DSE
    def explore(
        self,
        workloads: Sequence[TrainingWorkload],
        parallel: Union[int, WorkerPool, None] = None,
        session=None,
        nest: str = "points",
    ) -> WatosResult:
        """Run the co-exploration over every candidate wafer and every workload.

        ``session`` supplies the worker pool (defaulting to the Watos instance's own
        session, then the ambient one); ``parallel`` is the deprecated spelling — a
        persistent :class:`WorkerPool` shared with other sweeps, or an integer for an
        ephemeral pool (negative = all CPUs) — and warns once.

        ``nest`` picks which loop level the pool accelerates:

        * ``"points"`` (default) — fan the (wafer × workload) points out over the
          workers; each point's inner scheduler/GA runs serially inside its worker.
        * ``"inner"`` — walk the points serially in this process and let the *nested*
          loops (the central scheduler's candidate pricing, the GA's per-generation
          scoring) borrow the pool.  Best when there are few points but deep inner
          searches.

        Both modes (and the serial run) are bit-identical: worker deltas are merged
        back in worker order and flushed to the shared cache's store when one is
        attached, and pricing is pure memoization — which prices directly against
        :attr:`cache` on the serial path, copying nothing.
        """
        if nest not in ("points", "inner"):
            raise ValueError(f"nest must be 'points' or 'inner', not {nest!r}")
        resolved = resolve_loop_session(
            session,
            parallel=parallel,
            api="Watos.explore(parallel=)",
            fallback=self.session,
        )
        parallel = resolved.parallel if resolved is not None else None
        points = [
            (wafer, workload) for wafer in self.candidates for workload in workloads
        ]
        task = _ExplorePointTask(self)
        if nest == "inner" and resolve_workers(parallel) > 1:
            # Outer loop serial, inner loops on the borrowed pool: every point still
            # prices against the shared cache directly (zero copies).  An integer
            # still means "this many workers" — it is promoted to one pool that
            # lives for the whole explore, not an ephemeral pool per inner call.
            if isinstance(parallel, WorkerPool):
                priced = [
                    task.price(point, cache=self.cache, inner_pool=parallel)
                    for point in points
                ]
            else:
                with WorkerPool(resolve_workers(parallel), cache=self.cache) as pool:
                    priced = [
                        task.price(point, cache=self.cache, inner_pool=pool)
                        for point in points
                    ]
        else:
            priced = parallel_map_merge(
                task, points, parallel=parallel, cache=self.cache
            )
        self.cache.flush()

        result = WatosResult()
        for (wafer, workload), (records, outcome) in zip(points, priced):
            result.exploration_records[f"{wafer.name}/{workload.model.name}"] = records
            if outcome is not None:
                result.outcomes.append(outcome)
        return result
