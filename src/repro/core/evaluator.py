"""End-to-end evaluator (the extended Astra-sim of paper §IV-F).

Given a wafer configuration, a training workload and a :class:`TrainingPlan`, the
evaluator prices one training iteration:

1. the memory model checks whether every stage's modelP + retained checkpoints (after
   recomputation and Sender→Helper balancing) fits the per-die DRAM;
2. the TP engine prices each stage's per-micro-batch forward/backward/recompute time;
3. the PP engine routes inter-stage and balancing traffic on the mesh;
4. the 1F1B simulator turns per-stage times and boundary delays into an iteration
   makespan;
5. utilisation and throughput metrics are derived from the makespan.

A plan that does not fit memory is returned with ``oom=True`` and an infinite iteration
time so that searchers can still rank it (and prune it).
"""

from __future__ import annotations

import copy
import itertools
import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.evalcache import (
    EvaluationCache,
    combine_fingerprints,
    fingerprint,
    hardware_fingerprint,
)
from repro.obs import tracer as _obs
from repro.core.parallel_map import WorkerPool, parallel_map, resolve_workers, task_cache
from repro.core.plan import RecomputeConfig, StagePlacement, TrainingPlan
from repro.core.pp_engine import PPEngine
from repro.core.tp_engine import TPEngine
from repro.core.placement import serpentine_placement
from repro.hardware.faults import FaultModel
from repro.hardware.template import WaferConfig
from repro.interconnect.collectives import CollectiveModel
from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.topology import MeshTopology
from repro.parallelism.pipeline import PipelineCostInputs, simulate_1f1b
from repro.predictor.lookup import OperatorPredictor
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.workload import TrainingWorkload

Coord = Tuple[int, int]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one training plan on one system."""

    iteration_time: float
    useful_flops: float
    recompute_flops: float
    oom: bool = False
    bubble_fraction: float = 0.0
    tp_comm_time: float = 0.0
    pp_comm_time: float = 0.0
    balance_exposed_time: float = 0.0
    stage_memory_bytes: Tuple[float, ...] = ()
    dram_utilization: float = 0.0
    d2d_utilization: float = 0.0
    compute_utilization: float = 0.0
    plan_label: str = ""
    system_label: str = ""

    @property
    def throughput(self) -> float:
        """Useful FLOP/s delivered (excludes recomputation work)."""
        if self.oom or self.iteration_time == 0 or math.isinf(self.iteration_time):
            return 0.0
        return self.useful_flops / self.iteration_time

    @property
    def total_throughput(self) -> float:
        """FLOP/s including recomputation (the paper's "Recomp Throughput" bars)."""
        if self.oom or self.iteration_time == 0 or math.isinf(self.iteration_time):
            return 0.0
        return (self.useful_flops + self.recompute_flops) / self.iteration_time

    @property
    def recompute_ratio(self) -> float:
        """Share of executed FLOPs that are recomputation."""
        total = self.useful_flops + self.recompute_flops
        return self.recompute_flops / total if total else 0.0

    @classmethod
    def out_of_memory(cls, plan_label: str = "", system_label: str = "") -> "EvaluationResult":
        return cls(
            iteration_time=float("inf"),
            useful_flops=0.0,
            recompute_flops=0.0,
            oom=True,
            plan_label=plan_label,
            system_label=system_label,
        )


#: Worker-resident evaluators, keyed by the parent instance's token.  Keeping the
#: evaluator alive across submissions preserves its TP-engine stage memos and
#: fingerprint memos — the PR-1 fast path — instead of rebuilding them (and
#: re-pickling the populated memo dicts) every generation.
_RESIDENT_EVALUATORS: "OrderedDict[str, Evaluator]" = OrderedDict()
_RESIDENT_LIMIT = 8
_EVALUATOR_IDS = itertools.count()


def _resident_evaluator(prototype: "Evaluator") -> "Evaluator":
    """The resident twin of a shipped evaluator, wired to the current task cache.

    The twin is replaced when the prototype's hardware state digest changed — fault
    models are mutated *in place* (robustness study), and pricing against a stale
    twin would cache pre-mutation results under post-mutation fingerprints.
    """
    token = prototype._resident_token
    evaluator = _RESIDENT_EVALUATORS.get(token)
    if evaluator is None or evaluator._resident_state != prototype._resident_state:
        _RESIDENT_EVALUATORS[token] = evaluator = prototype
        while len(_RESIDENT_EVALUATORS) > _RESIDENT_LIMIT:
            _RESIDENT_EVALUATORS.popitem(last=False)
    # LRU on use, not insertion: the evaluator serving every generation must not be
    # evicted just because other evaluators arrived after it.
    _RESIDENT_EVALUATORS.move_to_end(token)
    # Re-attach every call: the pool may have reset or re-bound its shards since.
    evaluator.cache = task_cache()
    return evaluator


class _PoolEvaluationTask:
    """Picklable closure pricing one plan in a worker process.

    Ships a stripped evaluator — no result cache (the parent answers hits before
    dispatch; worker-side hits come from the resident shard), no memo dicts (the
    worker's resident evaluator keeps its own, warm across submissions).
    """

    def __init__(self, evaluator: "Evaluator", workload: TrainingWorkload) -> None:
        self.evaluator = evaluator.stripped()
        self.workload = workload

    def __call__(self, plan: TrainingPlan) -> "EvaluationResult":
        return _resident_evaluator(self.evaluator).evaluate(self.workload, plan)


class Evaluator:
    """Prices training plans on a wafer configuration."""

    #: Host-offloading (Fig. 6b) moves evicted checkpoints over the host link; only this
    #: fraction of the transfer can be hidden behind compute.
    OFFLOAD_OVERLAP = 0.3

    def __init__(
        self,
        wafer: WaferConfig,
        predictor: Optional[OperatorPredictor] = None,
        faults: Optional[FaultModel] = None,
        fault_aware: bool = True,
        cache: Optional[EvaluationCache] = None,
        use_cache: bool = True,
        memoize_stages: bool = True,
    ) -> None:
        self.wafer = wafer
        self.faults = faults or FaultModel()
        self.fault_aware = fault_aware
        self.mesh = MeshTopology.from_wafer(wafer, self.faults)
        self._predictor = predictor
        self._tp_engines: Dict[Tuple, TPEngine] = {}
        #: Plan-level result cache (content-addressed; see :mod:`repro.core.evalcache`).
        #: ``use_cache=False`` gives the raw path benchmarks compare against.
        self.cache: Optional[EvaluationCache] = (
            cache if cache is not None else (EvaluationCache() if use_cache else None)
        )
        self.memoize_stages = memoize_stages
        #: Number of evaluations actually priced (cache misses + uncached calls).
        self.raw_evaluations = 0
        # Incremental per-instance state, hoisted out of evaluate(): one PP engine per
        # mesh, one memory model per model config, one operator graph per workload shape.
        self._pp_engine = PPEngine(self.mesh)
        self._memory_models: Dict[object, TrainingMemoryModel] = {}
        self._layer_operators: Dict[Tuple, List] = {}
        # Fingerprint component memos: the hardware digest is static while the fault
        # model is empty (it is recomputed per call otherwise, so in-place fault
        # injection still invalidates keys); workload/plan digests are memoized by
        # structural equality, which is exactly what makes repeated GA elites cheap.
        self._hardware_fp: Optional[str] = None
        self._workload_fps: Dict[TrainingWorkload, str] = {}
        self._plan_fps: Dict[TrainingPlan, str] = {}
        #: Identity token for worker-resident reuse: workers keep one live evaluator
        #: per parent instance, so repeated dispatches from the same evaluator find
        #: their memos warm.  (Per-process counter: fork-safe, never collides.)
        self._resident_token = f"{os.getpid()}:{next(_EVALUATOR_IDS)}"
        #: Hardware state digest stamped by :meth:`stripped` (None on live parents).
        self._resident_state: Optional[str] = None

    def stripped(self) -> "Evaluator":
        """A light copy for shipping to pool workers: no cache, no memo state.

        The copy shares the immutable inputs (wafer, faults, mesh, predictor) but
        carries empty memo dicts — the worker's resident evaluator repopulates them
        once and keeps them across submissions — and keeps the parent's
        :attr:`_resident_token`, which is what ties the two together.  The hardware
        state digest stamps the copy so a worker can tell a genuinely changed
        evaluator (in-place fault mutation) from a repeat shipment.
        """
        clone = copy.copy(self)
        clone.cache = None
        clone._tp_engines = {}
        clone._memory_models = {}
        clone._layer_operators = {}
        clone._workload_fps = {}
        clone._plan_fps = {}
        clone.raw_evaluations = 0
        if self.faults.is_empty:
            if self._hardware_fp is None:
                self._hardware_fp = hardware_fingerprint(
                    self.wafer, self.faults, self.fault_aware
                )
            clone._resident_state = self._hardware_fp
        else:
            clone._resident_state = hardware_fingerprint(
                self.wafer, self.faults, self.fault_aware
            )
        return clone

    # ------------------------------------------------------------------ helpers
    def _tp_engine(self, plan: TrainingPlan) -> TPEngine:
        key = (plan.collective, plan.split_strategy)
        engine = self._tp_engines.get(key)
        if engine is None:
            engine = TPEngine(
                self.wafer,
                predictor=self._predictor,
                collective=plan.collective,
                split_strategy=plan.split_strategy,
                memoize=self.memoize_stages,
            )
            self._tp_engines[key] = engine
        return engine

    def _memory_model(self, workload: TrainingWorkload) -> TrainingMemoryModel:
        model = self._memory_models.get(workload.model)
        if model is None:
            model = TrainingMemoryModel(workload.model)
            self._memory_models[workload.model] = model
        return model

    def _layer_ops(self, workload: TrainingWorkload):
        key = (workload.model, workload.micro_batch_size, workload.seq_len)
        operators = self._layer_operators.get(key)
        if operators is None:
            operators = workload.layer_operators()
            self._layer_operators[key] = operators
        return operators

    def default_placement(self, plan: TrainingPlan) -> StagePlacement:
        """Serpentine placement used when a plan does not specify one."""
        return serpentine_placement(
            self.wafer.dies_x, self.wafer.dies_y, plan.tp_shape, plan.parallelism.pp
        )

    def _stage_hardware(self, placement: StagePlacement, stage: int) -> Tuple[float, float]:
        """(compute throughput, link quality) of a stage's dies under the fault model."""
        if self.faults.is_empty:
            return 1.0, 1.0
        dies = placement.dies(stage)
        throughputs = [self.faults.die_throughput(d) for d in dies]
        if not self.fault_aware:
            # The non-robust baseline keeps its static work split, so the slowest die
            # gates the stage; a dead die stalls it almost completely.
            worst = min(throughputs)
            compute = max(worst, 0.05)
        else:
            # The robust scheduler rebalances work across healthy dies.
            avg = sum(throughputs) / len(throughputs)
            compute = max(avg, 0.05)
        qualities = []
        for die in dies:
            for neighbor in self.mesh.neighbors(die):
                qualities.append(self.faults.link_quality((die, neighbor)))
        if not qualities:
            link = 1.0
        elif self.fault_aware:
            healthy = [q for q in qualities if q > 0.0]
            link = (sum(healthy) / len(healthy)) if healthy else 0.05
        else:
            link = max(min(qualities), 0.05)
        return compute, max(link, 0.05)

    # ------------------------------------------------------------------ memory
    def stage_memory(
        self,
        workload: TrainingWorkload,
        plan: TrainingPlan,
        num_microbatches: int,
    ) -> List[float]:
        """Per-die memory footprint of every stage after recomputation and balancing."""
        memory = self._memory_model(workload)
        pp, tp = plan.parallelism.pp, plan.parallelism.tp
        operators = self._layer_ops(workload)
        recompute = plan.recompute if plan.recompute.num_stages == pp else RecomputeConfig.none(pp)
        fractions = [recompute.recompute_fraction(s, operators) for s in range(pp)]
        breakdown = memory.pipeline_breakdown(
            pp,
            tp,
            workload.micro_batch_size,
            workload.seq_len,
            num_microbatches,
            fractions,
        )
        footprints = [stage.total_bytes for stage in breakdown]
        # Mem_pair volumes are expressed per die of the stage (the same unit as the
        # footprints), so they shift directly between Sender and Helper stages.
        for pair in plan.mem_pairs:
            footprints[pair.sender_stage] -= pair.bytes_moved
            footprints[pair.helper_stage] += pair.bytes_moved
        return footprints

    # ------------------------------------------------------------------ evaluation
    def fingerprint(self, workload: TrainingWorkload, plan: TrainingPlan) -> str:
        """Content address of one (wafer, faults, workload, plan) evaluation."""
        if self.faults.is_empty:
            if self._hardware_fp is None:
                self._hardware_fp = hardware_fingerprint(
                    self.wafer, self.faults, self.fault_aware
                )
            hardware_fp = self._hardware_fp
        else:
            # Fault models can be mutated in place (robustness study); re-digest.
            hardware_fp = hardware_fingerprint(self.wafer, self.faults, self.fault_aware)
        workload_fp = self._workload_fps.get(workload)
        if workload_fp is None:
            workload_fp = fingerprint(workload)
            self._workload_fps[workload] = workload_fp
        plan_fp = self._plan_fps.get(plan)
        if plan_fp is None:
            plan_fp = fingerprint(plan)
            if len(self._plan_fps) >= 65536:
                self._plan_fps.clear()
            self._plan_fps[plan] = plan_fp
        return combine_fingerprints(hardware_fp, workload_fp, plan_fp)

    def evaluate(self, workload: TrainingWorkload, plan: TrainingPlan) -> EvaluationResult:
        """Price one training iteration of ``workload`` under ``plan``.

        Results are memoized in :attr:`cache` (when enabled) behind a structural
        fingerprint, so GA elites, duplicate children and repeated scheduler probes
        are priced exactly once.
        """
        if self.cache is None:
            self.raw_evaluations += 1
            # Manual span form: on this innermost path even a no-op context
            # manager would be measurable, the flag check is not.
            t0 = _obs.now() if _obs.enabled else 0.0
            result = self._evaluate_uncached(workload, plan)
            if _obs.enabled:
                _obs.add("pricing", t0, _obs.now())
            return result
        key = self.fingerprint(workload, plan)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        self.raw_evaluations += 1
        t0 = _obs.now() if _obs.enabled else 0.0
        result = self._evaluate_uncached(workload, plan)
        if _obs.enabled:
            _obs.add("pricing", t0, _obs.now())
        self.cache.put(key, result)
        return result

    def evaluate_many(
        self,
        workload: TrainingWorkload,
        plans: Sequence[TrainingPlan],
        parallel: Union[int, WorkerPool, None] = None,
    ) -> List[EvaluationResult]:
        """Price many plans, optionally on a worker pool, preserving order.

        This is the one pool-pricing path every search loop shares.  Plans the cache
        already knows are answered locally (counted as hits); the remaining *unique*
        plans are shipped behind a stripped evaluator, priced once each (counted as
        misses/raw evaluations), and the results absorbed back into the parent cache.
        With a persistent :class:`WorkerPool` the workers price against resident
        shards the pool keeps delta-synced with this cache, so per-generation
        dispatch cost no longer grows with the cache.  Results are identical to the
        serial path for any worker count.
        """
        pool = parallel if isinstance(parallel, WorkerPool) else None
        workers = resolve_workers(parallel)
        if pool is None and (workers <= 1 or len(plans) < 2):
            return [self.evaluate(workload, plan) for plan in plans]

        results: List[Optional[EvaluationResult]] = [None] * len(plans)
        keys: List[Optional[str]] = [None] * len(plans)
        pending: "Dict[TrainingPlan, List[int]]" = {}
        for index, plan in enumerate(plans):
            if self.cache is not None:
                key = self.fingerprint(workload, plan)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            pending.setdefault(plan, []).append(index)

        if pending:
            unique_plans = list(pending)
            task = _PoolEvaluationTask(self, workload)
            if pool is not None:
                pool.bind(self.cache)
                merge = None
                if self.cache is not None:
                    # No-op merge: the loop below puts every pending result into the
                    # parent cache itself (the carry's keys are a subset of those),
                    # and the parent already counted one miss per pending plan, so
                    # absorbing the carry would double-store entries and double-book
                    # shard counters.  The pool still records carry origins, which
                    # is what keeps entries from being echoed back to their pricer.
                    merge = lambda carry: None  # noqa: E731
                priced = pool.map(task, unique_plans, merge=merge)
            else:
                priced = parallel_map(task, unique_plans, parallel=workers)
            for plan, result in zip(unique_plans, priced):
                self.raw_evaluations += 1  # priced once per unique plan, pool-side
                for index in pending[plan]:
                    results[index] = result
                    if self.cache is not None and keys[index] is not None:
                        self.cache.put(keys[index], result)

        return results  # type: ignore[return-value]

    def _evaluate_uncached(
        self, workload: TrainingWorkload, plan: TrainingPlan
    ) -> EvaluationResult:
        parallelism = plan.parallelism
        tp, pp, dp = parallelism.tp, parallelism.pp, parallelism.dp
        if parallelism.world_size > self.wafer.num_dies:
            raise ValueError(
                f"plan needs {parallelism.world_size} dies but the wafer has "
                f"{self.wafer.num_dies}"
            )
        num_microbatches = workload.num_microbatches(dp)
        placement = plan.placement or self.default_placement(plan)

        # ---------------------------------------------------------------- memory check
        footprints = self.stage_memory(workload, plan, num_microbatches)
        capacity = self.wafer.die.dram_capacity
        memory_model = self._memory_model(workload)
        offload_traffic_bytes = 0.0
        if plan.offload_to_host:
            # Evicted checkpoints cross the host link twice per micro-batch (write on the
            # forward pass, read back for the backward pass).
            for stage, footprint in enumerate(footprints):
                overflow = max(0.0, footprint - capacity)
                if overflow == 0.0:
                    continue
                retained = memory_model.retained_microbatches(stage, pp, num_microbatches)
                offload_traffic_bytes += 2.0 * overflow / max(1, retained) * num_microbatches
            footprints = [min(f, capacity) for f in footprints]
        oom = any(f > capacity * 1.001 for f in footprints)
        if oom:
            return EvaluationResult.out_of_memory(plan.label(), self.wafer.name)

        # ---------------------------------------------------------------- stage times
        engine = self._tp_engine(plan)
        memory = memory_model
        layers = memory.layers_per_stage(pp)
        operators = self._layer_ops(workload)
        recompute = plan.recompute if plan.recompute.num_stages == pp else RecomputeConfig.none(pp)

        forward: List[float] = []
        backward: List[float] = []
        tp_comm_total = 0.0
        useful_flops = 0.0
        recompute_flops = 0.0
        for stage in range(pp):
            compute_q, link_q = self._stage_hardware(placement, stage)
            times = engine.stage_times(
                workload,
                stage,
                layers[stage],
                tp,
                pp,
                recomputed_ops=recompute.stage(stage),
                link_quality=link_q,
                compute_throughput=compute_q,
            )
            forward.append(times.forward)
            backward.append(times.backward_total)
            tp_comm_total += times.tp_comm * 3.0 * num_microbatches
            stage_fwd_flops = engine.stage_forward_flops(workload, stage, layers[stage], pp)
            useful_flops += 3.0 * stage_fwd_flops * num_microbatches
            recompute_flops += (
                recompute.extra_forward_flops(stage, operators)
                * layers[stage]
                * num_microbatches
            )

        # ---------------------------------------------------------------- inter-stage comm
        pp_engine = self._pp_engine
        activation_bytes = PPEngine.activation_bytes(workload)
        microbatch_dram_time = activation_bytes / self.wafer.die.dram_bandwidth
        comm_plan = pp_engine.plan(
            placement,
            activation_bytes,
            mem_pairs=plan.mem_pairs,
            microbatch_dram_time=microbatch_dram_time,
        )
        boundary_times = list(comm_plan.boundary_times) or [0.0] * max(0, pp - 1)

        # ---------------------------------------------------------------- pipeline makespan
        pipeline = simulate_1f1b(
            PipelineCostInputs(
                forward=forward,
                backward=backward,
                comm=boundary_times,
                num_microbatches=num_microbatches,
            )
        )
        iteration_time = pipeline.iteration_time
        iteration_time += comm_plan.balance_exposed_time

        # Data-parallel gradient all-reduce (only when DP > 1 on the wafer).
        if dp > 1:
            link = AlphaBetaLink(self.wafer.die.d2d_link_bandwidth, self.wafer.die.d2d_latency)
            grad_bytes = workload.model.num_parameters * 2.0 / (tp * pp)
            iteration_time += CollectiveModel(link, dp).ring_all_reduce(
                grad_bytes, bidirectional=True
            )

        # Host offloading penalty (Fig. 6b): evicted checkpoints cross the host link for
        # every micro-batch, and most of the transfer is exposed.
        if plan.offload_to_host and offload_traffic_bytes > 0:
            transfer = offload_traffic_bytes / self.wafer.host_bandwidth
            iteration_time += transfer * (1.0 - self.OFFLOAD_OVERLAP)

        # ---------------------------------------------------------------- utilisation
        busy_dies = tp * pp * dp
        compute_util = 0.0
        if iteration_time > 0 and not math.isinf(iteration_time):
            compute_util = (useful_flops + recompute_flops) / (
                self.wafer.die.flops_fp16 * busy_dies * iteration_time
            )
        dram_util = sum(min(f, capacity) for f in footprints) / (capacity * pp)
        d2d_util = comm_plan.link_utilization

        return EvaluationResult(
            iteration_time=iteration_time,
            useful_flops=useful_flops,
            recompute_flops=recompute_flops,
            oom=False,
            bubble_fraction=pipeline.bubble_fraction,
            tp_comm_time=tp_comm_total,
            pp_comm_time=sum(boundary_times) * num_microbatches,
            balance_exposed_time=comm_plan.balance_exposed_time,
            stage_memory_bytes=tuple(footprints),
            dram_utilization=min(1.0, dram_util),
            d2d_utilization=d2d_util,
            compute_utilization=min(1.0, compute_util),
            plan_label=plan.label(),
            system_label=self.wafer.name,
        )
