"""The WATOS co-exploration engine (Fig. 9): schedulers, engines, optimizer, evaluator."""

from repro.core.plan import (
    MemPair,
    RecomputeConfig,
    StagePlacement,
    TrainingPlan,
)
from repro.core.evaluator import Evaluator, EvaluationResult
from repro.core.tp_engine import TPEngine, StageTimes
from repro.core.pp_engine import PPEngine, InterStageCommPlan
from repro.core.central_scheduler import CentralScheduler, ExplorationRecord
from repro.core.recomputation import GcmrScheduler, GcmrPlan
from repro.core.placement import PlacementOptimizer, serpentine_placement, global_cost
from repro.core.dram_allocation import DramAllocator, DramAllocation
from repro.core.genetic import GeneticOptimizer, GAConfig, GAResult
from repro.core.framework import Watos, WatosResult
from repro.core.robustness import RobustnessEvaluator
from repro.core.hardware_dse import DieGranularityDse, DieDesignPoint

__all__ = [
    "MemPair",
    "RecomputeConfig",
    "StagePlacement",
    "TrainingPlan",
    "Evaluator",
    "EvaluationResult",
    "TPEngine",
    "StageTimes",
    "PPEngine",
    "InterStageCommPlan",
    "CentralScheduler",
    "ExplorationRecord",
    "GcmrScheduler",
    "GcmrPlan",
    "PlacementOptimizer",
    "serpentine_placement",
    "global_cost",
    "DramAllocator",
    "DramAllocation",
    "GeneticOptimizer",
    "GAConfig",
    "GAResult",
    "Watos",
    "WatosResult",
    "RobustnessEvaluator",
    "DieGranularityDse",
    "DieDesignPoint",
]
