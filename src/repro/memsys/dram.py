"""Per-die DRAM model: capacity tracking and bandwidth-limited access latency.

WSCs have the distinguishing property that D2D bandwidth usually exceeds per-die DRAM
bandwidth, so a *remote* DRAM access (reading a checkpoint parked on a Helper die) is
limited by the DRAM, not the mesh — which is why GCMR's cross-die checkpoint balancing
is nearly free (§IV-C-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class DramCapacityError(MemoryError):
    """Raised when an allocation exceeds the remaining DRAM capacity of a die."""


@dataclass
class DramModel:
    """One die's DRAM: a capacity budget plus a bandwidth-based access-time model."""

    capacity_bytes: float
    bandwidth: float
    access_latency: float = 200e-9
    allocations: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth <= 0:
            raise ValueError("DRAM capacity and bandwidth must be positive")

    # ------------------------------------------------------------------ capacity
    @property
    def allocated_bytes(self) -> float:
        return sum(self.allocations.values())

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.allocated_bytes

    @property
    def utilization(self) -> float:
        return self.allocated_bytes / self.capacity_bytes

    def allocate(self, tag: str, size_bytes: float) -> None:
        """Reserve ``size_bytes`` under ``tag``; accumulates if the tag already exists."""
        if size_bytes < 0:
            raise ValueError("allocation size cannot be negative")
        if size_bytes > self.free_bytes + 1e-6:
            raise DramCapacityError(
                f"allocation '{tag}' of {size_bytes / 1e9:.2f} GB exceeds the "
                f"{self.free_bytes / 1e9:.2f} GB free on this die"
            )
        self.allocations[tag] = self.allocations.get(tag, 0.0) + size_bytes

    def release(self, tag: str) -> float:
        """Free an allocation and return its size (0 if the tag is unknown)."""
        return self.allocations.pop(tag, 0.0)

    def reset(self) -> None:
        self.allocations.clear()

    # ------------------------------------------------------------------ access time
    def access_time(self, size_bytes: float) -> float:
        """Time to stream ``size_bytes`` to or from this DRAM."""
        if size_bytes < 0:
            raise ValueError("access size cannot be negative")
        if size_bytes == 0:
            return 0.0
        return self.access_latency + size_bytes / self.bandwidth

    def remote_access_time(self, size_bytes: float, d2d_bandwidth: float, hops: int = 1) -> float:
        """Access time when the data lives in another die's DRAM, ``hops`` links away.

        The transfer is limited by whichever of the DRAM and the D2D path is slower; on a
        WSC that is almost always the DRAM, which is the paper's overlap argument.
        """
        if d2d_bandwidth <= 0:
            raise ValueError("D2D bandwidth must be positive")
        if size_bytes == 0:
            return 0.0
        bottleneck = min(self.bandwidth, d2d_bandwidth)
        return self.access_latency + hops * 100e-9 + size_bytes / bottleneck
