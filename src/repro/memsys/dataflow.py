"""Intra-die dataflows and external-memory-access (EMA) analysis (paper Fig. 14).

For a GEMM of shape ``S × K`` times ``K × H`` executed on an ``m × n`` MAC array, the
three stationary dataflows reload different operands and therefore generate different
amounts of external (SRAM↔DRAM) traffic:

* input stationary  (IS):  EMA = S·H·K · (1/K + 1/m + 1/n)
* weight stationary (WS):  EMA = S·H·K · (1/n + 1/S + 1/m)
* output stationary (OS):  EMA = S·H·K · (1/n + 1/m + 1/H)

WATOS's TP engine picks, per operator, the dataflow that minimises EMA (the "hybrid
dataflow" of §IV-E-1).  Row stationary exists for convolutions and is treated as OS for
GEMM-shaped work.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.units import FP16_BYTES


class Dataflow(enum.Enum):
    """The stationary dataflow used to schedule a GEMM on the PE array."""

    OUTPUT_STATIONARY = "os"
    WEIGHT_STATIONARY = "ws"
    INPUT_STATIONARY = "is"
    ROW_STATIONARY = "rs"


def external_memory_accesses(
    s: int, h: int, k: int, array_rows: int, array_cols: int, dataflow: Dataflow
) -> float:
    """EMA element count of a GEMM (S×K)·(K×H) under ``dataflow`` on an m×n MAC array."""
    if min(s, h, k) <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if array_rows <= 0 or array_cols <= 0:
        raise ValueError("MAC array dimensions must be positive")
    m, n = float(array_rows), float(array_cols)
    shk = float(s) * float(h) * float(k)
    if dataflow is Dataflow.INPUT_STATIONARY:
        return shk * (1.0 / k + 1.0 / m + 1.0 / n)
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return shk * (1.0 / n + 1.0 / s + 1.0 / m)
    if dataflow in (Dataflow.OUTPUT_STATIONARY, Dataflow.ROW_STATIONARY):
        return shk * (1.0 / n + 1.0 / m + 1.0 / h)
    raise ValueError(f"unknown dataflow {dataflow!r}")


def external_memory_bytes(
    s: int, h: int, k: int, array_rows: int, array_cols: int, dataflow: Dataflow,
    element_bytes: int = FP16_BYTES,
) -> float:
    """EMA in bytes rather than elements."""
    return external_memory_accesses(s, h, k, array_rows, array_cols, dataflow) * element_bytes


def select_dataflow(
    s: int, h: int, k: int, array_rows: int, array_cols: int
) -> Tuple[Dataflow, float]:
    """The dataflow with the lowest EMA for a GEMM shape, and its EMA element count."""
    candidates = (
        Dataflow.OUTPUT_STATIONARY,
        Dataflow.WEIGHT_STATIONARY,
        Dataflow.INPUT_STATIONARY,
    )
    scored: Dict[Dataflow, float] = {
        df: external_memory_accesses(s, h, k, array_rows, array_cols, df) for df in candidates
    }
    best = min(scored, key=scored.get)
    return best, scored[best]
