"""Memory-system substrate: DRAM/SRAM access models and intra-die dataflow analysis."""

from repro.memsys.dataflow import Dataflow, external_memory_accesses, select_dataflow
from repro.memsys.dram import DramModel
from repro.memsys.sram import SramTiler, TilePlan

__all__ = [
    "Dataflow",
    "external_memory_accesses",
    "select_dataflow",
    "DramModel",
    "SramTiler",
    "TilePlan",
]
