"""Core-SRAM tiling: splitting a die-level GEMM into tiles that fit a core's SRAM.

The TP engine first partitions an operator across dies, then each die partitions its
share into basic computation tiles sized to the core SRAM (§IV-E-1).  The tiler here
chooses square-ish tiles and reports how many tile iterations the core needs, which the
analytical predictor turns into latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import FP16_BYTES


@dataclass(frozen=True)
class TilePlan:
    """Result of tiling a GEMM of shape (s, h, k) for one core."""

    tile_s: int
    tile_h: int
    tile_k: int
    num_tiles: int

    @property
    def tile_bytes(self) -> float:
        """Working-set bytes of one tile (input + weight + output)."""
        return FP16_BYTES * (
            self.tile_s * self.tile_k + self.tile_k * self.tile_h + self.tile_s * self.tile_h
        )


class SramTiler:
    """Chooses GEMM tiles that fit in a core's SRAM."""

    def __init__(self, sram_bytes: float, utilization: float = 0.8) -> None:
        if sram_bytes <= 0:
            raise ValueError("SRAM capacity must be positive")
        if not 0.0 < utilization <= 1.0:
            raise ValueError("SRAM utilisation target must be within (0, 1]")
        self.sram_bytes = sram_bytes
        self.utilization = utilization

    @property
    def budget_bytes(self) -> float:
        return self.sram_bytes * self.utilization

    def plan(self, s: int, h: int, k: int) -> TilePlan:
        """Tile a GEMM (S×K)·(K×H): shrink the largest dimension until the tile fits."""
        if min(s, h, k) <= 0:
            raise ValueError("GEMM dimensions must be positive")
        tile_s, tile_h, tile_k = s, h, k
        while self._working_set(tile_s, tile_h, tile_k) > self.budget_bytes:
            largest = max(tile_s, tile_h, tile_k)
            if largest <= 1:
                break
            if tile_s == largest:
                tile_s = max(1, tile_s // 2)
            elif tile_h == largest:
                tile_h = max(1, tile_h // 2)
            else:
                tile_k = max(1, tile_k // 2)
        num_tiles = (
            math.ceil(s / tile_s) * math.ceil(h / tile_h) * math.ceil(k / tile_k)
        )
        return TilePlan(tile_s=tile_s, tile_h=tile_h, tile_k=tile_k, num_tiles=num_tiles)

    @staticmethod
    def _working_set(tile_s: int, tile_h: int, tile_k: int) -> float:
        return FP16_BYTES * (tile_s * tile_k + tile_k * tile_h + tile_s * tile_h)

    def fits(self, s: int, h: int, k: int) -> bool:
        """True when the whole GEMM already fits the SRAM without tiling."""
        return self._working_set(s, h, k) <= self.budget_bytes
