"""Fault injection model for the robustness study (paper §VI-D, Fig. 22).

Two fault classes are modelled:

* **link faults** — a mesh link between two adjacent dies either degrades (its usable
  bandwidth drops to a fraction of nominal) or fails completely.
* **die faults** — a die either degrades (its cores run at a fraction of nominal
  throughput) or fails completely, in which case the die and all of its links are
  excluded from workload allocation.

The model is deterministic given a seed so that experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


def _canonical(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultyLink:
    """A degraded or dead mesh link.  ``quality`` is the remaining bandwidth fraction."""

    link: Link
    quality: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError("link quality must be within [0, 1]")


@dataclass(frozen=True)
class FaultyDie:
    """A degraded or dead die.  ``throughput`` is the remaining compute fraction."""

    die: Coord
    throughput: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.throughput <= 1.0:
            raise ValueError("die throughput must be within [0, 1]")


@dataclass
class FaultModel:
    """A set of injected faults plus helpers to query effective capacities."""

    link_faults: Dict[Link, FaultyLink] = field(default_factory=dict)
    die_faults: Dict[Coord, FaultyDie] = field(default_factory=dict)

    def add_link_fault(self, link: Link, quality: float) -> None:
        key = _canonical(link)
        self.link_faults[key] = FaultyLink(key, quality)

    def add_die_fault(self, die: Coord, throughput: float) -> None:
        self.die_faults[die] = FaultyDie(die, throughput)

    def link_quality(self, link: Link) -> float:
        """Remaining bandwidth fraction of a link (also zero if either endpoint is dead)."""
        key = _canonical(link)
        a, b = key
        if self.die_throughput(a) == 0.0 or self.die_throughput(b) == 0.0:
            return 0.0
        fault = self.link_faults.get(key)
        return fault.quality if fault is not None else 1.0

    def die_throughput(self, die: Coord) -> float:
        fault = self.die_faults.get(die)
        return fault.throughput if fault is not None else 1.0

    def dead_dies(self) -> FrozenSet[Coord]:
        return frozenset(c for c, f in self.die_faults.items() if f.throughput == 0.0)

    def dead_links(self) -> FrozenSet[Link]:
        return frozenset(l for l, f in self.link_faults.items() if f.quality == 0.0)

    @property
    def is_empty(self) -> bool:
        return not self.link_faults and not self.die_faults

    @classmethod
    def random(
        cls,
        dies_x: int,
        dies_y: int,
        link_fault_rate: float = 0.0,
        die_fault_rate: float = 0.0,
        degraded_fraction: float = 0.5,
        dead_share: float = 0.2,
        seed: int = 0,
    ) -> "FaultModel":
        """Inject faults uniformly at random.

        ``link_fault_rate`` / ``die_fault_rate`` are the fraction of links / dies that are
        faulty.  Of the faulty population, ``dead_share`` fail completely; the rest degrade
        to ``degraded_fraction`` of nominal capability.
        """
        if not 0.0 <= link_fault_rate <= 1.0 or not 0.0 <= die_fault_rate <= 1.0:
            raise ValueError("fault rates must be within [0, 1]")
        rng = random.Random(seed)
        model = cls()

        links: List[Link] = []
        for x in range(dies_x):
            for y in range(dies_y):
                if x + 1 < dies_x:
                    links.append(((x, y), (x + 1, y)))
                if y + 1 < dies_y:
                    links.append(((x, y), (x, y + 1)))
        faulty_links = rng.sample(links, int(round(link_fault_rate * len(links))))
        for link in faulty_links:
            quality = 0.0 if rng.random() < dead_share else degraded_fraction
            model.add_link_fault(link, quality)

        dies = [(x, y) for x in range(dies_x) for y in range(dies_y)]
        faulty_dies = rng.sample(dies, int(round(die_fault_rate * len(dies))))
        for die in faulty_dies:
            throughput = 0.0 if rng.random() < dead_share else degraded_fraction
            model.add_die_fault(die, throughput)
        return model
