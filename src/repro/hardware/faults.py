"""Fault injection model for the robustness study (paper §VI-D, Fig. 22).

Two fault classes are modelled:

* **link faults** — a mesh link between two adjacent dies either degrades (its usable
  bandwidth drops to a fraction of nominal) or fails completely.
* **die faults** — a die either degrades (its cores run at a fraction of nominal
  throughput) or fails completely, in which case the die and all of its links are
  excluded from workload allocation.

The model is deterministic given a seed so that experiments are reproducible.

Two views of the same fault process coexist here:

* the **static snapshot** — :meth:`FaultModel.random` draws one fault population,
  the shape the Fig. 22 robustness sweep prices; and
* the **timestamped event stream** — :class:`FaultInjector.schedule` draws the
  *same* fault population (identical RNG discipline, so folding the stream equals
  the snapshot) but spreads onsets over a horizon and optionally schedules
  repairs, the vocabulary the online scenario engine's traces speak
  (:mod:`repro.online.trace`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]

#: The fault-event kinds a :class:`FaultEvent` may carry (degrades carry the
#: remaining capability fraction in ``value``; repairs restore nominal).
FAULT_EVENT_KINDS = (
    "die_degrade",
    "die_fail",
    "die_repair",
    "link_degrade",
    "link_fail",
    "link_repair",
)


def _canonical(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultyLink:
    """A degraded or dead mesh link.  ``quality`` is the remaining bandwidth fraction."""

    link: Link
    quality: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError("link quality must be within [0, 1]")


@dataclass(frozen=True)
class FaultyDie:
    """A degraded or dead die.  ``throughput`` is the remaining compute fraction."""

    die: Coord
    throughput: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.throughput <= 1.0:
            raise ValueError("die throughput must be within [0, 1]")


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped change of the fault state (the trace vocabulary).

    ``kind`` is one of :data:`FAULT_EVENT_KINDS`.  Degrade events carry the
    remaining capability fraction in ``value`` (``die_fail``/``link_fail`` are the
    ``value == 0`` corner, kept as distinct kinds because the online engine treats
    a fail as a preemption, not just a slowdown); repair events restore the target
    to nominal.  Exactly one of ``die`` / ``link`` names the target.
    """

    time: float
    kind: str
    die: Optional[Coord] = None
    link: Optional[Link] = None
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_EVENT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_EVENT_KINDS}, not {self.kind!r}")
        if (self.die is None) == (self.link is None):
            raise ValueError("exactly one of die= / link= must name the target")
        if self.kind.startswith("die") and self.die is None:
            raise ValueError(f"{self.kind} events target a die")
        if self.kind.startswith("link") and self.link is None:
            raise ValueError(f"{self.kind} events target a link")
        if not 0.0 <= self.value <= 1.0:
            raise ValueError("value must be within [0, 1]")

    # ------------------------------------------------------------------ codecs
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict (the trace-line shape)."""
        data: Dict[str, Any] = {"kind": self.kind, "value": self.value}
        if self.die is not None:
            data["die"] = list(self.die)
        if self.link is not None:
            data["link"] = [list(self.link[0]), list(self.link[1])]
        return data

    @classmethod
    def from_dict(cls, time: float, data: Dict[str, Any]) -> "FaultEvent":
        die = data.get("die")
        link = data.get("link")
        return cls(
            time=float(time),
            kind=str(data.get("kind", "")),
            die=tuple(die) if die is not None else None,
            link=(tuple(link[0]), tuple(link[1])) if link is not None else None,
            value=float(data.get("value", 0.0)),
        )


@dataclass
class FaultModel:
    """A set of injected faults plus helpers to query effective capacities."""

    link_faults: Dict[Link, FaultyLink] = field(default_factory=dict)
    die_faults: Dict[Coord, FaultyDie] = field(default_factory=dict)

    def add_link_fault(self, link: Link, quality: float) -> None:
        key = _canonical(link)
        self.link_faults[key] = FaultyLink(key, quality)

    def add_die_fault(self, die: Coord, throughput: float) -> None:
        self.die_faults[die] = FaultyDie(die, throughput)

    def clear_link_fault(self, link: Link) -> None:
        """Restore a link to nominal (a ``link_repair`` event)."""
        self.link_faults.pop(_canonical(link), None)

    def clear_die_fault(self, die: Coord) -> None:
        """Restore a die to nominal (a ``die_repair`` event)."""
        self.die_faults.pop(die, None)

    def apply_event(self, event: FaultEvent) -> None:
        """Fold one timestamped :class:`FaultEvent` into this snapshot."""
        if event.kind in ("die_degrade", "die_fail"):
            self.add_die_fault(event.die, 0.0 if event.kind == "die_fail" else event.value)
        elif event.kind == "die_repair":
            self.clear_die_fault(event.die)
        elif event.kind in ("link_degrade", "link_fail"):
            self.add_link_fault(event.link, 0.0 if event.kind == "link_fail" else event.value)
        else:  # link_repair (kinds are validated at event construction)
            self.clear_link_fault(event.link)

    def effective_speed(self, dies_x: int, dies_y: int) -> float:
        """The fleet-level service-rate fraction this fault state leaves a wafer.

        The online engine's cheap reduction of the full fault-aware repricing: the
        mean remaining die throughput times the mean remaining quality of the mesh
        links, both over the wafer's nominal population.  Healthy wafer → 1.0; a
        wafer whose every die is dead → 0.0 (down).  Deterministic and O(faults),
        which is what lets a fault storm replay at trace speed.
        """
        dies = dies_x * dies_y
        if dies == 0:
            return 0.0
        die_speed = 1.0 - sum(
            1.0 - fault.throughput for fault in self.die_faults.values()
        ) / dies
        links = dies_x * (dies_y - 1) + dies_y * (dies_x - 1)
        if links == 0:
            return max(0.0, die_speed)
        link_speed = 1.0 - sum(
            1.0 - self.link_quality(link) for link in self.link_faults
        ) / links
        return max(0.0, die_speed) * max(0.0, link_speed)

    def link_quality(self, link: Link) -> float:
        """Remaining bandwidth fraction of a link (also zero if either endpoint is dead)."""
        key = _canonical(link)
        a, b = key
        if self.die_throughput(a) == 0.0 or self.die_throughput(b) == 0.0:
            return 0.0
        fault = self.link_faults.get(key)
        return fault.quality if fault is not None else 1.0

    def die_throughput(self, die: Coord) -> float:
        fault = self.die_faults.get(die)
        return fault.throughput if fault is not None else 1.0

    def dead_dies(self) -> FrozenSet[Coord]:
        return frozenset(c for c, f in self.die_faults.items() if f.throughput == 0.0)

    def dead_links(self) -> FrozenSet[Link]:
        return frozenset(l for l, f in self.link_faults.items() if f.quality == 0.0)

    @property
    def is_empty(self) -> bool:
        return not self.link_faults and not self.die_faults

    @classmethod
    def random(
        cls,
        dies_x: int,
        dies_y: int,
        link_fault_rate: float = 0.0,
        die_fault_rate: float = 0.0,
        degraded_fraction: float = 0.5,
        dead_share: float = 0.2,
        seed: int = 0,
    ) -> "FaultModel":
        """Inject faults uniformly at random.

        ``link_fault_rate`` / ``die_fault_rate`` are the fraction of links / dies that are
        faulty.  Of the faulty population, ``dead_share`` fail completely; the rest degrade
        to ``degraded_fraction`` of nominal capability.
        """
        if not 0.0 <= link_fault_rate <= 1.0 or not 0.0 <= die_fault_rate <= 1.0:
            raise ValueError("fault rates must be within [0, 1]")
        rng = random.Random(seed)
        model = cls()

        links: List[Link] = []
        for x in range(dies_x):
            for y in range(dies_y):
                if x + 1 < dies_x:
                    links.append(((x, y), (x + 1, y)))
                if y + 1 < dies_y:
                    links.append(((x, y), (x, y + 1)))
        faulty_links = rng.sample(links, int(round(link_fault_rate * len(links))))
        for link in faulty_links:
            quality = 0.0 if rng.random() < dead_share else degraded_fraction
            model.add_link_fault(link, quality)

        dies = [(x, y) for x in range(dies_x) for y in range(dies_y)]
        faulty_dies = rng.sample(dies, int(round(die_fault_rate * len(dies))))
        for die in faulty_dies:
            throughput = 0.0 if rng.random() < dead_share else degraded_fraction
            model.add_die_fault(die, throughput)
        return model


def _mesh_links(dies_x: int, dies_y: int) -> List[Link]:
    links: List[Link] = []
    for x in range(dies_x):
        for y in range(dies_y):
            if x + 1 < dies_x:
                links.append(((x, y), (x + 1, y)))
            if y + 1 < dies_y:
                links.append(((x, y), (x, y + 1)))
    return links


@dataclass
class FaultInjector:
    """Deterministic timestamped fault-event source (the trace-side §VI-D model).

    Configured exactly like :meth:`FaultModel.random` — the same fault rates, the
    same degraded/dead split — and :meth:`schedule` draws the fault *population*
    with the identical RNG call sequence, so with no repairs configured, folding
    the scheduled events (:meth:`model_at` at or past the horizon end) reproduces
    ``FaultModel.random(..., seed=seed)`` **exactly**.  Traces and the static
    robustness study therefore share one fault model; only the time axis differs.

    ``mean_repair_s`` > 0 additionally schedules an exponential-delay repair after
    each onset (repairs past the horizon end are dropped — the fault persists).
    """

    dies_x: int
    dies_y: int
    link_fault_rate: float = 0.0
    die_fault_rate: float = 0.0
    degraded_fraction: float = 0.5
    dead_share: float = 0.2
    mean_repair_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_fault_rate <= 1.0 or not 0.0 <= self.die_fault_rate <= 1.0:
            raise ValueError("fault rates must be within [0, 1]")
        if self.mean_repair_s < 0.0:
            raise ValueError("mean_repair_s must be non-negative")

    def schedule(
        self, seed: int, horizon: float, start: float = 0.0
    ) -> List[FaultEvent]:
        """The ordered fault events of one seeded storm over ``[start, start+horizon)``.

        Deterministic: same seed ⇒ the same events, bit for bit.  The fault
        population comes from the snapshot RNG stream (``random.Random(seed)``,
        the :meth:`FaultModel.random` discipline); onset and repair times come
        from an independent derived stream, so adding the time axis never
        perturbs *which* faults occur.
        """
        if horizon < 0.0:
            raise ValueError("horizon must be non-negative")
        rng = random.Random(seed)
        # A string seed hashes through SHA-512 (stable across processes); a tuple
        # seed would go through hash(), which PYTHONHASHSEED randomises.
        times = random.Random(f"{int(seed)}:fault-times")
        events: List[FaultEvent] = []

        links = _mesh_links(self.dies_x, self.dies_y)
        faulty_links = rng.sample(links, int(round(self.link_fault_rate * len(links))))
        for link in faulty_links:
            dead = rng.random() < self.dead_share
            onset = start + times.uniform(0.0, horizon)
            kind = "link_fail" if dead else "link_degrade"
            value = 0.0 if dead else self.degraded_fraction
            events.append(FaultEvent(time=onset, kind=kind, link=link, value=value))
            repair = self._repair_time(times, onset, start + horizon)
            if repair is not None:
                events.append(FaultEvent(time=repair, kind="link_repair", link=link, value=1.0))

        dies = [(x, y) for x in range(self.dies_x) for y in range(self.dies_y)]
        faulty_dies = rng.sample(dies, int(round(self.die_fault_rate * len(dies))))
        for die in faulty_dies:
            dead = rng.random() < self.dead_share
            onset = start + times.uniform(0.0, horizon)
            kind = "die_fail" if dead else "die_degrade"
            value = 0.0 if dead else self.degraded_fraction
            events.append(FaultEvent(time=onset, kind=kind, die=die, value=value))
            repair = self._repair_time(times, onset, start + horizon)
            if repair is not None:
                events.append(FaultEvent(time=repair, kind="die_repair", die=die, value=1.0))

        # Stable sort on time only: equal-time events keep generation order, so
        # the schedule is deterministic without inventing a cross-kind tiebreak.
        events.sort(key=lambda event: event.time)
        return events

    def _repair_time(
        self, times: random.Random, onset: float, end: float
    ) -> Optional[float]:
        """The repair instant after ``onset`` (``None`` = persists past the horizon).

        The exponential draw happens even when the repair lands past the horizon
        (and is then dropped), keeping the RNG call sequence independent of the
        horizon length.
        """
        if self.mean_repair_s <= 0.0:
            return None
        repair = onset + times.expovariate(1.0 / self.mean_repair_s)
        return repair if repair < end else None

    @staticmethod
    def model_at(
        events: Iterable[FaultEvent], time: float, base: Optional[FaultModel] = None
    ) -> FaultModel:
        """The static :class:`FaultModel` snapshot after folding events ≤ ``time``.

        The bridge back to the Fig. 22 study: with ``mean_repair_s == 0``,
        ``model_at(schedule(seed, horizon), start + horizon)`` equals
        ``FaultModel.random(..., seed=seed)`` field for field.
        """
        model = base if base is not None else FaultModel()
        for event in sorted(events, key=lambda event: event.time):
            if event.time <= time:
                model.apply_event(event)
        return model
