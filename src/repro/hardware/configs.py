"""Preset hardware configurations.

* The four representative wafer-scale configurations from Table II of the paper.
* The two compute-die variants described in §V-A (16×16 and 18×18 Dojo-style core arrays).
* GPU systems used as baselines: an 8× Blackwell-Ultra DGX node and the NVL72 GB300 rack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hardware.template import (
    ComputeDieConfig,
    CoreConfig,
    DieConfig,
    DramChipletConfig,
    WaferConfig,
)
from repro.units import GB, tbps, tflops


def compute_die_16x16() -> ComputeDieConfig:
    """Compute die variant 1: 21.92 mm × 22.81 mm, 16×16 Dojo-style cores (§V-A)."""
    return ComputeDieConfig(
        core_rows=16,
        core_cols=16,
        core=CoreConfig(),
        width_mm=21.92,
        height_mm=22.81,
        edge_io_bandwidth=tbps(12.0),
    )


def compute_die_18x18() -> ComputeDieConfig:
    """Compute die variant 2: 25.5 mm × 25.2 mm, 18×18 Dojo-style cores (§V-A)."""
    return ComputeDieConfig(
        core_rows=18,
        core_cols=18,
        core=CoreConfig(),
        width_mm=25.5,
        height_mm=25.2,
        edge_io_bandwidth=tbps(12.0),
    )


def _wafer(
    name: str,
    dies_x: int,
    dies_y: int,
    compute: ComputeDieConfig,
    dram_per_die_gb: float,
    dram_bw_tbps: float,
    d2d_bw_tbps: float,
    num_dram_chiplets: int,
) -> WaferConfig:
    chiplet = DramChipletConfig(
        capacity_bytes=dram_per_die_gb * GB / num_dram_chiplets,
        bandwidth=tbps(dram_bw_tbps) / num_dram_chiplets,
        interface_bandwidth=tbps(dram_bw_tbps) / num_dram_chiplets,
    )
    die = DieConfig(
        compute=compute,
        dram_chiplet=chiplet,
        num_dram_chiplets=num_dram_chiplets,
        d2d_bandwidth=tbps(d2d_bw_tbps),
    )
    return WaferConfig(name=name, dies_x=dies_x, dies_y=dies_y, die=die)


def wafer_config1() -> WaferConfig:
    """Table II Config 1: 64 dies (8×8), 512 TFLOPS/die, 48 GB & 1 TB/s DRAM, 4.5 TB/s D2D."""
    compute = ComputeDieConfig(
        core_rows=16,
        core_cols=16,
        core=CoreConfig(flops_fp16=tflops(2.0)),
        width_mm=21.92,
        height_mm=22.81,
        edge_io_bandwidth=tbps(12.0),
    )
    return _wafer("config1", 8, 8, compute, 48, 1.0, 4.5, 6)


def wafer_config2() -> WaferConfig:
    """Table II Config 2: 56 dies (7×8), 708 TFLOPS/die, 64 GB & 1.5 TB/s DRAM, 4.5 TB/s D2D."""
    compute = ComputeDieConfig(
        core_rows=18,
        core_cols=18,
        core=CoreConfig(flops_fp16=tflops(708.0 / 324.0)),
        width_mm=25.5,
        height_mm=25.2,
        edge_io_bandwidth=tbps(12.0),
    )
    return _wafer("config2", 7, 8, compute, 64, 1.5, 4.5, 4)


def wafer_config3() -> WaferConfig:
    """Table II Config 3: 56 dies (7×8), 708 TFLOPS/die, 70 GB & 2 TB/s DRAM, 4 TB/s D2D.

    This is the configuration the paper identifies as the universal optimum and uses for
    the overall comparison (§V-B, §V-C).
    """
    compute = ComputeDieConfig(
        core_rows=18,
        core_cols=18,
        core=CoreConfig(flops_fp16=tflops(708.0 / 324.0)),
        width_mm=25.5,
        height_mm=25.2,
        edge_io_bandwidth=tbps(12.0),
    )
    return _wafer("config3", 7, 8, compute, 70, 2.0, 4.0, 5)


def wafer_config4() -> WaferConfig:
    """Table II Config 4: 48 dies (6×8), 708 TFLOPS/die, 96 GB & 2.5 TB/s DRAM, 3.5 TB/s D2D."""
    compute = ComputeDieConfig(
        core_rows=18,
        core_cols=18,
        core=CoreConfig(flops_fp16=tflops(708.0 / 324.0)),
        width_mm=25.5,
        height_mm=25.2,
        edge_io_bandwidth=tbps(12.0),
    )
    return _wafer("config4", 6, 8, compute, 96, 2.5, 3.5, 6)


TABLE_II_CONFIGS: Dict[str, WaferConfig] = {}


def _build_table() -> None:
    for factory in (wafer_config1, wafer_config2, wafer_config3, wafer_config4):
        wafer = factory()
        TABLE_II_CONFIGS[wafer.name] = wafer


_build_table()


@dataclass(frozen=True)
class GpuConfig:
    """A single GPU used in the DGX / NVL72 baseline systems."""

    name: str = "blackwell-ultra"
    flops_fp16: float = tflops(5000.0)
    hbm_capacity: float = 288 * GB
    hbm_bandwidth: float = tbps(8.0)
    nvlink_bandwidth: float = tbps(1.8)
    nvlink_latency: float = 500e-9


@dataclass(frozen=True)
class GpuSystemConfig:
    """A cluster of GPUs connected by an all-to-all NVLink/NVSwitch fabric.

    ``inter_node_bandwidth`` applies once the system spans several DGX nodes (Fig. 24a).
    """

    name: str = "dgx-b300"
    num_gpus: int = 8
    gpus_per_node: int = 8
    gpu: GpuConfig = field(default_factory=GpuConfig)
    inter_node_bandwidth: float = 400e9
    inter_node_latency: float = 2e-6

    @property
    def num_nodes(self) -> int:
        return -(-self.num_gpus // self.gpus_per_node)

    @property
    def total_flops(self) -> float:
        return self.num_gpus * self.gpu.flops_fp16

    @property
    def total_hbm_capacity(self) -> float:
        return self.num_gpus * self.gpu.hbm_capacity


def dgx_b300_node(num_gpus: int = 8) -> GpuSystemConfig:
    """The 8× Blackwell Ultra node the paper compares against (40,000 TFLOPS, 2304 GB)."""
    return GpuSystemConfig(name="dgx-b300", num_gpus=num_gpus, gpus_per_node=8)


def dgx_b300_equalized(num_gpus: int = 8) -> GpuSystemConfig:
    """The §V-C fairness configuration of the DGX node.

    For the overall comparison the paper scales MG-GPU's DRAM from 2304 GB to 3920 GB to
    match the wafer's aggregate capacity and holds both systems at 2 TB/s of DRAM
    bandwidth per device, so the comparison isolates the interconnect and scheduling.
    """
    gpu = GpuConfig(
        name="blackwell-ultra-equalized",
        flops_fp16=tflops(5000.0),
        hbm_capacity=490 * GB,
        hbm_bandwidth=tbps(2.0),
        nvlink_bandwidth=tbps(1.8),
    )
    return GpuSystemConfig(name="dgx-b300-eq", num_gpus=num_gpus, gpus_per_node=8, gpu=gpu)


def nvl72_gb300(num_gpus: int = 56) -> GpuSystemConfig:
    """The NVL72 GB300 rack used in Fig. 1 (56 GPUs to match the 56-die WSC)."""
    return GpuSystemConfig(
        name="nvl72-gb300",
        num_gpus=num_gpus,
        gpus_per_node=72,
        gpu=GpuConfig(name="gb300", flops_fp16=tflops(708.0), hbm_capacity=288 * GB),
    )
