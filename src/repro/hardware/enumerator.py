"""Architecture candidate enumerator (the "Enumerator" box in Fig. 9).

Given the configurable parameters of the hardware template (die grid dimensions, compute
die variant, DRAM chiplet count per die), the enumerator exhaustively produces every
combination that satisfies the wafer area and IO constraints.  The co-exploration engine
then evaluates each surviving candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hardware.area import AreaModel
from repro.hardware.template import DieConfig, DramChipletConfig, WaferConfig
from repro.hardware.configs import compute_die_16x16, compute_die_18x18


@dataclass(frozen=True)
class CandidateSpec:
    """One point in the raw architecture parameter space before feasibility filtering."""

    dies_x: int
    dies_y: int
    num_dram_chiplets: int
    compute_variant: str

    @property
    def num_dies(self) -> int:
        return self.dies_x * self.dies_y


class ArchitectureEnumerator:
    """Enumerates feasible wafer configurations under area and IO constraints.

    Parameters
    ----------
    area_model:
        The area/IO feasibility checker.  Defaults to the standard 12-inch wafer model.
    grid_options:
        (dies_x, dies_y) pairs to consider.  Defaults to the grids that appear in the
        paper's Table II plus nearby points.
    dram_options:
        DRAM chiplet counts per die to consider.
    compute_variants:
        Named compute-die factories.  Defaults to the two §V-A variants.
    """

    def __init__(
        self,
        area_model: Optional[AreaModel] = None,
        grid_options: Optional[Sequence[Tuple[int, int]]] = None,
        dram_options: Optional[Sequence[int]] = None,
        compute_variants: Optional[Sequence[str]] = None,
        dram_chiplet: Optional[DramChipletConfig] = None,
        wafer_template: Optional[WaferConfig] = None,
    ) -> None:
        self.area_model = area_model or AreaModel()
        self.grid_options = list(grid_options or [(6, 8), (7, 8), (8, 8), (6, 6), (7, 7)])
        self.dram_options = list(dram_options or [2, 3, 4, 5, 6])
        self.compute_variants = list(compute_variants or ["16x16", "18x18"])
        self.dram_chiplet = dram_chiplet or DramChipletConfig()
        self.wafer_template = wafer_template or WaferConfig()
        self._factories = {"16x16": compute_die_16x16, "18x18": compute_die_18x18}

    def register_compute_variant(self, name: str, factory) -> None:
        """Add a custom compute-die variant (used by the die-granularity DSE, Fig. 25)."""
        self._factories[name] = factory
        if name not in self.compute_variants:
            self.compute_variants.append(name)

    def specs(self) -> Iterator[CandidateSpec]:
        """Yield every raw combination of the configurable parameters."""
        for dies_x, dies_y in self.grid_options:
            for num_dram in self.dram_options:
                for variant in self.compute_variants:
                    yield CandidateSpec(dies_x, dies_y, num_dram, variant)

    def build(self, spec: CandidateSpec) -> WaferConfig:
        """Materialise a :class:`WaferConfig` from a spec, applying the IO budget."""
        compute = self._factories[spec.compute_variant]()
        die = DieConfig(
            compute=compute,
            dram_chiplet=self.dram_chiplet,
            num_dram_chiplets=spec.num_dram_chiplets,
        )
        die = self.area_model.apply_io_budget(die)
        name = (
            f"wafer-{spec.dies_x}x{spec.dies_y}-{spec.compute_variant}"
            f"-hbm{spec.num_dram_chiplets}"
        )
        return replace(
            self.wafer_template,
            name=name,
            dies_x=spec.dies_x,
            dies_y=spec.dies_y,
            die=die,
        )

    def enumerate(self) -> List[WaferConfig]:
        """All feasible wafer configurations (area + IO constraints satisfied)."""
        feasible: List[WaferConfig] = []
        for spec in self.specs():
            wafer = self.build(spec)
            if self.area_model.fits(wafer) and wafer.die.d2d_bandwidth >= self.area_model.min_d2d_bandwidth:
                feasible.append(wafer)
        return feasible

    def enumerate_with_rejects(self) -> Tuple[List[WaferConfig], List[WaferConfig]]:
        """Both the feasible and the rejected candidates, useful for reporting."""
        feasible: List[WaferConfig] = []
        rejected: List[WaferConfig] = []
        for spec in self.specs():
            wafer = self.build(spec)
            ok = (
                self.area_model.fits(wafer)
                and wafer.die.d2d_bandwidth >= self.area_model.min_d2d_bandwidth
            )
            (feasible if ok else rejected).append(wafer)
        return feasible, rejected
