"""Configurable wafer-scale hardware template, area accounting and configuration presets."""

from repro.hardware.template import (
    CoreConfig,
    ComputeDieConfig,
    DramChipletConfig,
    DieConfig,
    WaferConfig,
)
from repro.hardware.area import AreaModel, AreaBudgetError
from repro.hardware.configs import (
    TABLE_II_CONFIGS,
    wafer_config1,
    wafer_config2,
    wafer_config3,
    wafer_config4,
)
from repro.hardware.enumerator import ArchitectureEnumerator, CandidateSpec
from repro.hardware.faults import FaultModel, FaultyLink, FaultyDie

__all__ = [
    "CoreConfig",
    "ComputeDieConfig",
    "DramChipletConfig",
    "DieConfig",
    "WaferConfig",
    "AreaModel",
    "AreaBudgetError",
    "TABLE_II_CONFIGS",
    "wafer_config1",
    "wafer_config2",
    "wafer_config3",
    "wafer_config4",
    "ArchitectureEnumerator",
    "CandidateSpec",
    "FaultModel",
    "FaultyLink",
    "FaultyDie",
]
