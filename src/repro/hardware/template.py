"""The configurable wafer-scale hardware template (paper §II-A, Fig. 3).

The template is a three-level hierarchy:

* :class:`WaferConfig` — the whole wafer-scale chip: a 2D mesh of identical dies on a
  ~198 mm × 198 mm usable area, connected by die-to-die (D2D) links.
* :class:`DieConfig` — one mesh tile: a compute die plus its attached HBM/DRAM chiplets
  and its share of D2D interconnect bandwidth.
* :class:`ComputeDieConfig` / :class:`CoreConfig` — the compute die is an array of cores,
  each with a PE array for GEMMs, a vector unit and a private SRAM.

All the parameters the paper lists as "adjustable" are explicit fields here, which is what
makes the architecture design-space exploration possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.units import GB, MB, tflops


@dataclass(frozen=True)
class CoreConfig:
    """A single compute core (PE array + vector unit + SRAM).

    The default values follow the Dojo-style core the paper configures in §V-A:
    2.04 FP16 TFLOPS and 1.25 MB of SRAM at 2 GHz.
    """

    flops_fp16: float = tflops(2.04)
    sram_bytes: float = 1.25 * MB
    frequency_hz: float = 2.0e9
    vector_flops: float = tflops(0.128)

    def __post_init__(self) -> None:
        if self.flops_fp16 <= 0:
            raise ValueError("core compute power must be positive")
        if self.sram_bytes <= 0:
            raise ValueError("core SRAM capacity must be positive")


@dataclass(frozen=True)
class ComputeDieConfig:
    """A compute die: a 2D array of cores plus the die-level NoC.

    ``width_mm`` / ``height_mm`` give the silicon footprint used by the area model.
    ``edge_io_bandwidth`` is the total peripheral interconnect bandwidth available across
    the four edges of the die (12 TB/s in the paper's setup); it is shared between D2D
    links and HBM interfaces, which is the root of the compute/memory/communication
    trade-off in Fig. 4.
    """

    core_rows: int = 16
    core_cols: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    width_mm: float = 21.92
    height_mm: float = 22.81
    edge_io_bandwidth: float = 12.0e12
    noc_bandwidth: float = 2.0e12
    noc_hop_latency: float = 5e-9

    def __post_init__(self) -> None:
        if self.core_rows <= 0 or self.core_cols <= 0:
            raise ValueError("core array dimensions must be positive")
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise ValueError("compute die dimensions must be positive")
        if self.edge_io_bandwidth <= 0:
            raise ValueError("edge IO bandwidth must be positive")

    @property
    def num_cores(self) -> int:
        return self.core_rows * self.core_cols

    @property
    def flops_fp16(self) -> float:
        """Peak FP16 throughput of the whole die."""
        return self.num_cores * self.core.flops_fp16

    @property
    def sram_bytes(self) -> float:
        """Aggregate SRAM across all cores."""
        return self.num_cores * self.core.sram_bytes

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def aspect_ratio(self) -> float:
        long_edge = max(self.width_mm, self.height_mm)
        short_edge = min(self.width_mm, self.height_mm)
        return long_edge / short_edge


@dataclass(frozen=True)
class DramChipletConfig:
    """One HBM/DRAM chiplet bonded next to (or on top of) a compute die."""

    capacity_bytes: float = 16 * GB
    bandwidth: float = 0.5e12
    width_mm: float = 4.92
    height_mm: float = 8.13
    interface_bandwidth: float = 0.5e12

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("DRAM capacity must be positive")
        if self.bandwidth <= 0:
            raise ValueError("DRAM bandwidth must be positive")

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm


@dataclass(frozen=True)
class DieConfig:
    """One mesh tile: a compute die with its DRAM chiplets and D2D link budget.

    ``d2d_bandwidth`` is the aggregate die-to-die bandwidth this die can sustain across
    its mesh links (i.e. what is left of ``edge_io_bandwidth`` after HBM interfaces are
    provisioned); ``d2d_link_bandwidth`` is the bandwidth of a single mesh link to one
    neighbour.
    """

    compute: ComputeDieConfig = field(default_factory=ComputeDieConfig)
    dram_chiplet: DramChipletConfig = field(default_factory=DramChipletConfig)
    num_dram_chiplets: int = 4
    d2d_bandwidth: float = 4.5e12
    d2d_latency: float = 100e-9
    stacked_3d: bool = False

    def __post_init__(self) -> None:
        if self.num_dram_chiplets < 0:
            raise ValueError("number of DRAM chiplets cannot be negative")
        if self.d2d_bandwidth < 0:
            raise ValueError("D2D bandwidth cannot be negative")

    @property
    def dram_capacity(self) -> float:
        return self.num_dram_chiplets * self.dram_chiplet.capacity_bytes

    @property
    def dram_bandwidth(self) -> float:
        return self.num_dram_chiplets * self.dram_chiplet.bandwidth

    @property
    def flops_fp16(self) -> float:
        return self.compute.flops_fp16

    @property
    def d2d_link_bandwidth(self) -> float:
        """Bandwidth of one mesh link (the aggregate is spread over four directions)."""
        return self.d2d_bandwidth / 4.0

    @property
    def footprint_mm2(self) -> float:
        """Silicon footprint of the tile (compute die plus 2.5D-placed DRAM chiplets).

        With 3D stacking the DRAM sits on top of the compute die and stops competing for
        wafer area (§VI-E), so only the compute die counts.
        """
        if self.stacked_3d:
            return self.compute.area_mm2
        return self.compute.area_mm2 + self.num_dram_chiplets * self.dram_chiplet.area_mm2


@dataclass(frozen=True)
class WaferConfig:
    """A full wafer-scale chip: a ``dies_x`` × ``dies_y`` mesh of identical dies."""

    name: str = "wafer"
    dies_x: int = 8
    dies_y: int = 8
    die: DieConfig = field(default_factory=DieConfig)
    wafer_width_mm: float = 198.32
    wafer_height_mm: float = 198.32
    host_bandwidth: float = 160e9
    wafer_to_wafer_bandwidth: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dies_x <= 0 or self.dies_y <= 0:
            raise ValueError("die grid dimensions must be positive")
        if self.wafer_width_mm <= 0 or self.wafer_height_mm <= 0:
            raise ValueError("wafer dimensions must be positive")

    @property
    def num_dies(self) -> int:
        return self.dies_x * self.dies_y

    @property
    def total_flops(self) -> float:
        return self.num_dies * self.die.flops_fp16

    @property
    def total_dram_capacity(self) -> float:
        return self.num_dies * self.die.dram_capacity

    @property
    def total_dram_bandwidth(self) -> float:
        return self.num_dies * self.die.dram_bandwidth

    @property
    def usable_area_mm2(self) -> float:
        return self.wafer_width_mm * self.wafer_height_mm

    @property
    def occupied_area_mm2(self) -> float:
        return self.num_dies * self.die.footprint_mm2

    def with_die(self, die: DieConfig) -> "WaferConfig":
        """Return a copy of this wafer with a different per-die configuration."""
        return replace(self, die=die)

    def with_grid(self, dies_x: int, dies_y: int) -> "WaferConfig":
        """Return a copy of this wafer with a different die grid."""
        return replace(self, dies_x=dies_x, dies_y=dies_y)

    def describe(self) -> Dict[str, float]:
        """A flat summary used by reports and the enumerator."""
        return {
            "num_dies": self.num_dies,
            "total_tflops": self.total_flops / 1e12,
            "dram_per_die_gb": self.die.dram_capacity / GB,
            "dram_bw_per_die_tbps": self.die.dram_bandwidth / 1e12,
            "d2d_bw_per_die_tbps": self.die.d2d_bandwidth / 1e12,
            "occupied_area_mm2": self.occupied_area_mm2,
            "usable_area_mm2": self.usable_area_mm2,
        }


def scale_wafer_compute(wafer: WaferConfig, target_flops: float) -> WaferConfig:
    """Scale the per-core compute power so the wafer reaches ``target_flops``.

    Used by the benchmark harness to hold compute power equal between systems being
    compared (the paper equalises WSC and GPU compute before comparing, §V-C).
    """
    if target_flops <= 0:
        raise ValueError("target compute power must be positive")
    scale = target_flops / wafer.total_flops
    core = replace(wafer.die.compute.core, flops_fp16=wafer.die.compute.core.flops_fp16 * scale)
    compute = replace(wafer.die.compute, core=core)
    die = replace(wafer.die, compute=compute)
    return wafer.with_die(die)
