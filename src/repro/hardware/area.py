"""Wafer area and IO-budget accounting (paper §III-B, Fig. 4).

The wafer provides roughly 40,000 mm² of usable area.  Every DRAM chiplet placed next to
a compute die consumes both silicon area (shrinking the budget left for compute dies) and
peripheral IO lanes on the compute die (shrinking the bandwidth left for D2D links).
:class:`AreaModel` captures both effects so that the enumerator can generate only
physically realisable wafer configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.hardware.template import DieConfig, WaferConfig


class AreaBudgetError(ValueError):
    """Raised when a configuration does not fit in the wafer area or IO budget."""


@dataclass(frozen=True)
class AreaModel:
    """Checks and derives area/IO feasibility of wafer configurations.

    ``packing_efficiency`` accounts for scribe lines, power delivery and keep-out zones:
    only this fraction of the raw wafer rectangle can actually hold dies.
    """

    packing_efficiency: float = 0.92
    min_d2d_bandwidth: float = 0.5e12

    def usable_area(self, wafer: WaferConfig) -> float:
        return wafer.usable_area_mm2 * self.packing_efficiency

    def area_utilization(self, wafer: WaferConfig) -> float:
        """Fraction of the usable wafer area occupied by compute + DRAM silicon."""
        return wafer.occupied_area_mm2 / self.usable_area(wafer)

    def fits(self, wafer: WaferConfig) -> bool:
        """True when the die grid fits the wafer both by area and by linear dimensions."""
        if wafer.occupied_area_mm2 > self.usable_area(wafer):
            return False
        tile_w, tile_h = self.tile_dimensions(wafer.die)
        return (
            tile_w * wafer.dies_x <= wafer.wafer_width_mm
            and tile_h * wafer.dies_y <= wafer.wafer_height_mm
        )

    def validate(self, wafer: WaferConfig) -> None:
        """Raise :class:`AreaBudgetError` if the configuration is infeasible."""
        if not self.fits(wafer):
            raise AreaBudgetError(
                f"configuration '{wafer.name}' needs {wafer.occupied_area_mm2:.0f} mm² "
                f"({wafer.dies_x}x{wafer.dies_y} dies) but only "
                f"{self.usable_area(wafer):.0f} mm² is usable"
            )
        if self.derive_d2d_bandwidth(wafer.die) < self.min_d2d_bandwidth:
            raise AreaBudgetError(
                f"configuration '{wafer.name}' leaves less than "
                f"{self.min_d2d_bandwidth / 1e12:.1f} TB/s of D2D bandwidth after "
                f"provisioning {wafer.die.num_dram_chiplets} DRAM interfaces"
            )

    def tile_dimensions(self, die: DieConfig) -> Tuple[float, float]:
        """Bounding-box width/height (mm) of one mesh tile.

        DRAM chiplets are packed along the long edge of the compute die (as in Fig. 3);
        with 3D stacking they do not enlarge the footprint.
        """
        compute = die.compute
        if die.stacked_3d or die.num_dram_chiplets == 0:
            return compute.width_mm, compute.height_mm
        per_column = max(1, int(compute.height_mm // die.dram_chiplet.height_mm))
        columns = -(-die.num_dram_chiplets // per_column)  # ceil division
        width = compute.width_mm + columns * die.dram_chiplet.width_mm
        return width, compute.height_mm

    def derive_d2d_bandwidth(self, die: DieConfig) -> float:
        """D2D bandwidth left after HBM interfaces take their share of the edge IO.

        This encodes trade-off (2) of Fig. 4: the compute die's peripheral IO is fixed, so
        every DRAM interface provisioned reduces the bandwidth available for mesh links.
        With 3D stacking the DRAM uses hybrid bonding instead of edge IO, so the full edge
        budget goes to D2D links.
        """
        if die.stacked_3d:
            return die.compute.edge_io_bandwidth
        consumed = die.num_dram_chiplets * die.dram_chiplet.interface_bandwidth
        return max(0.0, die.compute.edge_io_bandwidth - consumed)

    def apply_io_budget(self, die: DieConfig) -> DieConfig:
        """Return a copy of ``die`` whose D2D bandwidth respects the IO budget."""
        return replace(die, d2d_bandwidth=self.derive_d2d_bandwidth(die))

    def max_dram_chiplets(self, die: DieConfig, wafer: WaferConfig) -> int:
        """Largest DRAM chiplet count per die that keeps the grid on the wafer."""
        best = 0
        for count in range(0, 17):
            candidate = replace(die, num_dram_chiplets=count)
            trial = wafer.with_die(self.apply_io_budget(candidate))
            if self.fits(trial) and self.derive_d2d_bandwidth(candidate) >= self.min_d2d_bandwidth:
                best = count
        return best
