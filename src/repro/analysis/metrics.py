"""Metric helpers: normalisation, speedups and utilisation summaries.

The paper normalises every figure to its lowest-performing configuration (value = 1);
:func:`normalize` reproduces that convention.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.core.evaluator import EvaluationResult
from repro.core.plan import StagePlacement


def normalize(values: Mapping[str, float], mode: str = "min") -> Dict[str, float]:
    """Normalise a dict of values to its minimum ("min") or maximum ("max") entry.

    Entries that are zero, infinite or NaN are kept as 0.0 so OOM configurations remain
    visible in the reports without breaking the normalisation.
    """
    finite = [v for v in values.values() if v > 0 and math.isfinite(v)]
    if not finite:
        return {k: 0.0 for k in values}
    reference = min(finite) if mode == "min" else max(finite)
    out: Dict[str, float] = {}
    for key, value in values.items():
        if value <= 0 or not math.isfinite(value):
            out[key] = 0.0
        else:
            out[key] = value / reference
    return out


def normalize_results(
    results: Mapping[str, EvaluationResult], metric: str = "throughput"
) -> Dict[str, float]:
    """Normalise a dict of evaluation results by throughput or iteration time."""
    if metric == "throughput":
        values = {k: r.throughput for k, r in results.items()}
        return normalize(values, mode="min")
    if metric == "total_throughput":
        values = {k: r.total_throughput for k, r in results.items()}
        return normalize(values, mode="min")
    if metric == "iteration_time":
        values = {k: r.iteration_time for k, r in results.items()}
        return normalize(values, mode="min")
    raise ValueError(f"unknown metric '{metric}'")


def speedup(new: float, baseline: float) -> float:
    """Ratio of ``new`` over ``baseline`` (0 when the baseline is degenerate)."""
    if baseline <= 0 or not math.isfinite(baseline):
        return 0.0
    return new / baseline


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of the positive finite entries."""
    positive = [v for v in values if v > 0 and math.isfinite(v)]
    if not positive:
        return 0.0
    log_sum = sum(math.log(v) for v in positive)
    return math.exp(log_sum / len(positive))


def utilization_heatmap(
    placement: StagePlacement,
    stage_memory_bytes: Sequence[float],
    capacity_bytes: float,
    dies_x: int,
    dies_y: int,
) -> List[List[float]]:
    """A dies_y × dies_x grid of per-die DRAM utilisation (Fig. 17a style heatmap)."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    grid = [[0.0 for _ in range(dies_x)] for _ in range(dies_y)]
    for stage in range(placement.num_stages):
        utilisation = min(1.0, stage_memory_bytes[stage] / capacity_bytes)
        for (x, y) in placement.dies(stage):
            grid[y][x] = utilisation
    return grid
