"""Metrics and report formatting for the benchmark harness."""

from repro.analysis.metrics import (
    normalize,
    normalize_results,
    speedup,
    geomean,
    utilization_heatmap,
)
from repro.analysis.reporting import format_table, format_series, Report

__all__ = [
    "normalize",
    "normalize_results",
    "speedup",
    "geomean",
    "utilization_heatmap",
    "format_table",
    "format_series",
    "Report",
]
