"""Plain-text report formatting used by the benchmark harness.

The benchmarks print the same rows / series the paper's figures plot; these helpers keep
that output consistent and readable in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence


def format_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
) -> str:
    """Format a dict-of-dicts as an aligned text table.

    ``rows`` maps row label → {column label → value}.
    """
    if not rows:
        return f"{title}\n(no data)"
    if columns is None:
        columns = sorted({c for row in rows.values() for c in row})
    header = ["config"] + list(columns)
    body: List[List[str]] = []
    for label, row in rows.items():
        body.append([label] + [
            f"{row[c]:.{precision}f}" if c in row and row[c] is not None else "-"
            for c in columns
        ])
    widths = [max(len(str(line[i])) for line in [header] + body) for i in range(len(header))]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))))
    for line in body:
        lines.append("  ".join(str(line[i]).ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Sequence[float]], precision: int = 3) -> str:
    """Format named numeric series (e.g. GA convergence curves) as text."""
    lines = [title, "-" * len(title)]
    for name, values in series.items():
        formatted = ", ".join(f"{v:.{precision}f}" for v in values)
        lines.append(f"{name}: [{formatted}]")
    return "\n".join(lines)


@dataclass
class Report:
    """Accumulates named sections and renders them as one text document."""

    title: str
    sections: List[str] = field(default_factory=list)

    def add_table(
        self,
        name: str,
        rows: Mapping[str, Mapping[str, float]],
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        self.sections.append(format_table(name, rows, columns))

    def add_series(self, name: str, series: Mapping[str, Sequence[float]]) -> None:
        self.sections.append(format_series(name, series))

    def add_text(self, text: str) -> None:
        self.sections.append(text)

    def render(self) -> str:
        banner = "=" * len(self.title)
        return "\n\n".join([f"{banner}\n{self.title}\n{banner}"] + self.sections)

    def __str__(self) -> str:
        return self.render()
