"""WATOS reproduction: LLM training strategy and wafer-scale architecture co-exploration.

The package is organised around the structure of the paper:

* :mod:`repro.hardware` — the configurable wafer-scale hardware template, area model,
  Table II configurations and the architecture enumerator.
* :mod:`repro.workloads` — LLM model zoo, transformer operator graphs and the training
  memory-footprint model.
* :mod:`repro.parallelism` — DP/TP/PP/FSDP strategy algebra, the 1F1B pipeline schedule
  and the Megatron / Cerebras baseline strategy generators.
* :mod:`repro.interconnect` — 2D-mesh / mesh-switch / multi-wafer topologies, XY routing
  and collective-communication cost models.
* :mod:`repro.memsys` — DRAM/SRAM access models and intra-die dataflow (OS/WS/IS) EMA
  analysis.
* :mod:`repro.predictor` — analytical and DNN-based operator latency/memory predictors
  plus the offline lookup table used during scheduling.
* :mod:`repro.core` — the WATOS co-exploration engine itself: central scheduler, GCMR
  recomputation scheduler, memory scheduler (placement + DRAM allocation), GA-based
  global optimizer, TP/PP execution engines and the evaluator.
* :mod:`repro.baselines` — GPU systems and prior DSE frameworks used for comparison.
* :mod:`repro.analysis` — metrics and report formatting helpers.
* :mod:`repro.api` — the unified Session runtime: one entry point owning the worker
  pool, the shared evaluation cache and every search loop (``Session.run(spec)``),
  plus the ``python -m repro`` CLI.
"""

from repro.hardware.configs import (
    TABLE_II_CONFIGS,
    wafer_config1,
    wafer_config2,
    wafer_config3,
    wafer_config4,
)
from repro.workloads.models import MODEL_ZOO, get_model
from repro.workloads.workload import TrainingWorkload
from repro.parallelism.strategies import ParallelismConfig
from repro.core.framework import Watos, WatosResult
from repro.core.evaluator import Evaluator, EvaluationResult
from repro.api import (
    ExperimentSpec,
    RunResult,
    Session,
    default_session,
)

__version__ = "0.1.0"

__all__ = [
    "ExperimentSpec",
    "RunResult",
    "Session",
    "default_session",
    "TABLE_II_CONFIGS",
    "wafer_config1",
    "wafer_config2",
    "wafer_config3",
    "wafer_config4",
    "MODEL_ZOO",
    "get_model",
    "TrainingWorkload",
    "ParallelismConfig",
    "Watos",
    "WatosResult",
    "Evaluator",
    "EvaluationResult",
    "__version__",
]
