"""Parallelism configuration algebra.

A :class:`ParallelismConfig` fixes the data-parallel (DP), tensor-parallel (TP) and
pipeline-parallel (PP) degrees.  The central scheduler enumerates feasible (TP, PP)
splits of the model-parallel dies with :func:`enumerate_tp_pp`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class ParallelismConfig:
    """Degrees of the three parallelism dimensions (Fig. 1's D(x)T(y)P(z) notation)."""

    dp: int = 1
    tp: int = 1
    pp: int = 1

    def __post_init__(self) -> None:
        if self.dp <= 0 or self.tp <= 0 or self.pp <= 0:
            raise ValueError("all parallelism degrees must be positive")

    @property
    def model_parallel_size(self) -> int:
        """Dies holding one model replica (TP × PP)."""
        return self.tp * self.pp

    @property
    def world_size(self) -> int:
        return self.dp * self.tp * self.pp

    def fits(self, num_devices: int) -> bool:
        return self.world_size <= num_devices

    def with_dp(self, dp: int) -> "ParallelismConfig":
        return replace(self, dp=dp)

    def label(self) -> str:
        """The D(x)T(y)P(z) label used in the paper's figures."""
        return f"D({self.dp})T({self.tp})P({self.pp})"


def _divisors(value: int) -> List[int]:
    return [d for d in range(1, value + 1) if value % d == 0]


def enumerate_tp_pp(
    model_parallel_dies: int,
    num_layers: int,
    require_even_tp: bool = True,
    max_tp: int = 0,
) -> Iterator[Tuple[int, int]]:
    """Yield feasible (tp, pp) pairs with ``tp × pp == model_parallel_dies``.

    ``require_even_tp`` reflects the 2D-mesh requirement in Alg. 1 that a TP instance
    uses an even number of dies (so a ring can be embedded without a dangling die);
    TP = 1 is always allowed.  PP is capped by the layer count so every stage holds at
    least one layer.
    """
    if model_parallel_dies <= 0:
        raise ValueError("model-parallel die count must be positive")
    for tp in _divisors(model_parallel_dies):
        pp = model_parallel_dies // tp
        if pp > num_layers:
            continue
        if max_tp and tp > max_tp:
            continue
        if require_even_tp and tp > 1 and tp % 2 != 0:
            continue
        yield tp, pp
