"""Megatron-LM's parallelism heuristic (the paper's "MG-optimal" baseline, §III-A).

Megatron picks the tensor-parallel degree first — as large as needed to fit a layer's
model state in device memory, up to 8 (one NVLink island) — and assigns the rest of the
model-parallel dies to pipeline stages.  The heuristic knows nothing about the wafer's
2D-mesh topology, which is exactly the blind spot WATOS exploits (Fig. 5a).
"""

from __future__ import annotations


from repro.parallelism.strategies import ParallelismConfig
from repro.workloads.memory import TrainingMemoryModel
from repro.workloads.models import ModelConfig


def megatron_parallelism(
    model: ModelConfig,
    num_devices: int,
    device_memory_bytes: float,
    max_tp: int = 8,
    global_batch_size: int = 512,
) -> ParallelismConfig:
    """Return Megatron's recommended (DP, TP, PP) for ``num_devices`` devices.

    The rule reproduced here (matching the MG-optimal settings the paper quotes, e.g.
    (TP, PP) = (8, 4) for Llama-30B on 32 dies and (8, 8) on 64 dies):

    1. pick TP from the model scale — Megatron keeps TP inside one NVLink island and
       uses the full island (TP = 8) for tens-of-billions-parameter models, TP = 4 for
       ~10 B models and TP = 2 below that;
    2. grow PP until the whole model's state fits the TP×PP group;
    3. whatever devices remain become data parallel.
    """
    if num_devices <= 0:
        raise ValueError("need at least one device")
    if device_memory_bytes <= 0:
        raise ValueError("device memory must be positive")

    memory = TrainingMemoryModel(model)

    params = model.num_parameters
    if params >= 20e9:
        tp = 8
    elif params >= 8e9:
        tp = 4
    elif params >= 2e9:
        tp = 2
    else:
        tp = 1
    tp = min(tp, max_tp, num_devices)
    while num_devices % tp != 0 and tp > 1:
        tp //= 2

    pp = 1
    while pp < num_devices // tp:
        total_state = memory.total_model_state_bytes()
        if total_state / (tp * pp) <= 0.8 * device_memory_bytes:
            break
        pp *= 2
    pp = max(1, min(pp, model.num_layers, num_devices // tp))

    dp = max(1, num_devices // (tp * pp))
    dp = min(dp, global_batch_size)
    return ParallelismConfig(dp=dp, tp=tp, pp=pp)
