"""Parallelism strategies: DP/TP/PP algebra, the 1F1B pipeline schedule and baseline
strategy generators (Megatron, Cerebras weight streaming, FSDP)."""

from repro.parallelism.strategies import ParallelismConfig, enumerate_tp_pp
from repro.parallelism.pipeline import PipelineCostInputs, PipelineResult, simulate_1f1b
from repro.parallelism.partition import TPSplitStrategy, factor_shapes
from repro.parallelism.megatron import megatron_parallelism
from repro.parallelism.cerebras import CerebrasWeightStreaming
from repro.parallelism.fsdp import fsdp_traffic_bytes

__all__ = [
    "ParallelismConfig",
    "enumerate_tp_pp",
    "PipelineCostInputs",
    "PipelineResult",
    "simulate_1f1b",
    "TPSplitStrategy",
    "factor_shapes",
    "megatron_parallelism",
    "CerebrasWeightStreaming",
    "fsdp_traffic_bytes",
]
