"""Cerebras weight-streaming execution model (the paper's "Cerebras" baseline).

Weight streaming keeps activations resident across the whole wafer and executes the
model **layer by layer**: for each layer, its weights are broadcast from the memory
(MemoryX-style) store to all compute dies, the layer is computed data-parallel over the
batch, and gradients are reduced back.  Communication therefore scales with the model
parallel degree and with the parameter volume per layer, which is why the gap to WATOS
widens for small batches and short sequences (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.template import WaferConfig
from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.collectives import CollectiveModel
from repro.units import FP16_BYTES
from repro.workloads.transformer import layer_flops
from repro.workloads.workload import TrainingWorkload


@dataclass(frozen=True)
class CerebrasResult:
    """Per-iteration cost of the weight-streaming execution."""

    iteration_time: float
    compute_time: float
    weight_stream_time: float
    gradient_reduce_time: float

    @property
    def exposed_comm_time(self) -> float:
        return self.iteration_time - self.compute_time


class CerebrasWeightStreaming:
    """Cost model of Cerebras-style weight streaming on a wafer configuration."""

    def __init__(self, wafer: WaferConfig, compute_efficiency: float = 0.45,
                 overlap_fraction: float = 0.6) -> None:
        if not 0.0 < compute_efficiency <= 1.0:
            raise ValueError("compute efficiency must be within (0, 1]")
        if not 0.0 <= overlap_fraction <= 1.0:
            raise ValueError("overlap fraction must be within [0, 1]")
        self.wafer = wafer
        self.compute_efficiency = compute_efficiency
        self.overlap_fraction = overlap_fraction

    def evaluate(self, workload: TrainingWorkload) -> CerebrasResult:
        """Iteration time of one forward+backward pass under weight streaming."""
        model = workload.model
        num_dies = self.wafer.num_dies
        link = AlphaBetaLink(self.wafer.die.d2d_link_bandwidth, self.wafer.die.d2d_latency)
        collective = CollectiveModel(link, num_dies)

        # Compute: the batch is spread data-parallel over every die, layer by layer.
        fwd_flops_per_layer = layer_flops(model, workload.global_batch_size, workload.seq_len)
        total_flops = 3.0 * fwd_flops_per_layer * model.num_layers
        compute_time = total_flops / (self.wafer.total_flops * self.compute_efficiency)

        # Weight streaming: each layer's weights are broadcast to all dies in the forward
        # pass and again in the backward pass.
        layer_weight_bytes = model.params_per_layer * FP16_BYTES
        stream_time = 2.0 * model.num_layers * collective.broadcast(layer_weight_bytes)

        # Gradients are reduced across all dies once per layer.
        reduce_time = model.num_layers * collective.ring_all_reduce(
            layer_weight_bytes, bidirectional=True
        )

        comm_time = stream_time + reduce_time
        exposed = comm_time * (1.0 - self.overlap_fraction)
        return CerebrasResult(
            iteration_time=compute_time + exposed,
            compute_time=compute_time,
            weight_stream_time=stream_time,
            gradient_reduce_time=reduce_time,
        )
