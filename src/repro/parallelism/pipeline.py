"""1F1B pipeline-parallel schedule simulator (paper §II-B, Fig. 8).

The simulator builds the dependency graph of forward/backward micro-batch tasks under
the one-forward-one-backward schedule and computes the iteration makespan, per-stage
busy time and bubble time.  Stage execution times may differ per stage (which is exactly
what recomputation and memory balancing perturb), so a closed-form bubble formula is not
enough — the event-driven simulation below handles heterogeneous stages and inter-stage
communication delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class PipelineCostInputs:
    """Per-stage costs feeding the 1F1B simulation.

    ``forward`` / ``backward`` are per-micro-batch execution times per stage (backward
    should already include any recomputation overhead).  ``comm`` holds the inter-stage
    activation transfer time between stage ``i`` and ``i+1`` (length ``pp - 1``).
    """

    forward: Sequence[float]
    backward: Sequence[float]
    comm: Sequence[float]
    num_microbatches: int

    def __post_init__(self) -> None:
        pp = len(self.forward)
        if pp == 0:
            raise ValueError("need at least one pipeline stage")
        if len(self.backward) != pp:
            raise ValueError("forward/backward stage counts differ")
        if len(self.comm) != max(0, pp - 1):
            raise ValueError("need exactly pp - 1 inter-stage communication times")
        if self.num_microbatches <= 0:
            raise ValueError("need at least one micro-batch")
        if any(t < 0 for t in list(self.forward) + list(self.backward) + list(self.comm)):
            raise ValueError("times cannot be negative")

    @property
    def num_stages(self) -> int:
        return len(self.forward)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of simulating one 1F1B iteration."""

    iteration_time: float
    stage_busy_time: Tuple[float, ...]
    stage_finish_time: Tuple[float, ...]

    @property
    def num_stages(self) -> int:
        return len(self.stage_busy_time)

    @property
    def bubble_time(self) -> float:
        """Total idle time summed over stages."""
        return sum(self.iteration_time - busy for busy in self.stage_busy_time)

    @property
    def bubble_fraction(self) -> float:
        total = self.iteration_time * self.num_stages
        return self.bubble_time / total if total > 0 else 0.0

    def stage_utilization(self, stage: int) -> float:
        if self.iteration_time == 0:
            return 0.0
        return self.stage_busy_time[stage] / self.iteration_time


Task = Tuple[str, int, int]  # (kind, stage, microbatch)


def _stage_task_order(stage: int, pp: int, n: int) -> List[Task]:
    """The 1F1B task order for one stage: warmup forwards, steady 1F1B pairs, cooldown."""
    warmup = min(pp - stage - 1, n)
    order: List[Task] = [("F", stage, m) for m in range(warmup)]
    next_fwd, next_bwd = warmup, 0
    # Steady state: alternate one forward, one backward.
    while next_fwd < n:
        order.append(("F", stage, next_fwd))
        next_fwd += 1
        order.append(("B", stage, next_bwd))
        next_bwd += 1
    # Cooldown: remaining backwards.
    while next_bwd < n:
        order.append(("B", stage, next_bwd))
        next_bwd += 1
    return order


def simulate_1f1b(inputs: PipelineCostInputs) -> PipelineResult:
    """Simulate one iteration of the 1F1B schedule and return its makespan.

    Dependencies honoured:

    * ``F(s, m)`` waits for ``F(s-1, m)`` plus the inter-stage transfer;
    * ``B(s, m)`` waits for ``B(s+1, m)`` plus the inter-stage transfer;
    * every task waits for the previous task in its own stage's 1F1B order.
    """
    pp, n = inputs.num_stages, inputs.num_microbatches
    orders = [_stage_task_order(s, pp, n) for s in range(pp)]
    pointers = [0] * pp
    finish: Dict[Task, float] = {}
    stage_free = [0.0] * pp
    stage_busy = [0.0] * pp
    remaining = sum(len(order) for order in orders)

    def dependency_ready(task: Task) -> Tuple[bool, float]:
        kind, stage, micro = task
        if kind == "F":
            if stage == 0:
                return True, 0.0
            upstream = finish.get(("F", stage - 1, micro))
            if upstream is None:
                return False, 0.0
            return True, upstream + inputs.comm[stage - 1]
        if stage == pp - 1:
            upstream = finish.get(("F", stage, micro))
            if upstream is None:
                return False, 0.0
            return True, upstream
        downstream = finish.get(("B", stage + 1, micro))
        if downstream is None:
            return False, 0.0
        return True, downstream + inputs.comm[stage]

    while remaining > 0:
        progressed = False
        for stage in range(pp):
            if pointers[stage] >= len(orders[stage]):
                continue
            task = orders[stage][pointers[stage]]
            ready, dep_time = dependency_ready(task)
            if not ready:
                continue
            kind = task[0]
            duration = inputs.forward[stage] if kind == "F" else inputs.backward[stage]
            start = max(stage_free[stage], dep_time)
            end = start + duration
            finish[task] = end
            stage_free[stage] = end
            stage_busy[stage] += duration
            pointers[stage] += 1
            remaining -= 1
            progressed = True
        if not progressed:
            raise RuntimeError("1F1B schedule deadlocked; dependency graph is inconsistent")

    iteration_time = max(stage_free)
    return PipelineResult(
        iteration_time=iteration_time,
        stage_busy_time=tuple(stage_busy),
        stage_finish_time=tuple(stage_free),
    )


def analytic_1f1b_time(
    forward: float, backward: float, pp: int, num_microbatches: int
) -> float:
    """Closed-form 1F1B iteration time for homogeneous stages (used as a cross-check)."""
    if pp <= 0 or num_microbatches <= 0:
        raise ValueError("stages and micro-batches must be positive")
    per_micro = forward + backward
    return (num_microbatches + pp - 1) * per_micro
