"""1F1B pipeline-parallel schedule simulator (paper §II-B, Fig. 8).

The simulator builds the dependency graph of forward/backward micro-batch tasks under
the one-forward-one-backward schedule and computes the iteration makespan, per-stage
busy time and bubble time.  Stage execution times may differ per stage (which is exactly
what recomputation and memory balancing perturb), so a closed-form bubble formula is not
enough — the event-driven simulation below handles heterogeneous stages and inter-stage
communication delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class PipelineCostInputs:
    """Per-stage costs feeding the 1F1B simulation.

    ``forward`` / ``backward`` are per-micro-batch execution times per stage (backward
    should already include any recomputation overhead).  ``comm`` holds the inter-stage
    activation transfer time between stage ``i`` and ``i+1`` (length ``pp - 1``).
    """

    forward: Sequence[float]
    backward: Sequence[float]
    comm: Sequence[float]
    num_microbatches: int

    def __post_init__(self) -> None:
        pp = len(self.forward)
        if pp == 0:
            raise ValueError("need at least one pipeline stage")
        if len(self.backward) != pp:
            raise ValueError("forward/backward stage counts differ")
        if len(self.comm) != max(0, pp - 1):
            raise ValueError("need exactly pp - 1 inter-stage communication times")
        if self.num_microbatches <= 0:
            raise ValueError("need at least one micro-batch")
        if any(t < 0 for t in list(self.forward) + list(self.backward) + list(self.comm)):
            raise ValueError("times cannot be negative")

    @property
    def num_stages(self) -> int:
        return len(self.forward)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of simulating one 1F1B iteration."""

    iteration_time: float
    stage_busy_time: Tuple[float, ...]
    stage_finish_time: Tuple[float, ...]

    @property
    def num_stages(self) -> int:
        return len(self.stage_busy_time)

    @property
    def bubble_time(self) -> float:
        """Total idle time summed over stages."""
        return sum(self.iteration_time - busy for busy in self.stage_busy_time)

    @property
    def bubble_fraction(self) -> float:
        total = self.iteration_time * self.num_stages
        return self.bubble_time / total if total > 0 else 0.0

    def stage_utilization(self, stage: int) -> float:
        if self.iteration_time == 0:
            return 0.0
        return self.stage_busy_time[stage] / self.iteration_time


Task = Tuple[str, int, int]  # (kind, stage, microbatch)


def _stage_task_order(stage: int, pp: int, n: int) -> List[Task]:
    """The 1F1B task order for one stage: warmup forwards, steady 1F1B pairs, cooldown."""
    warmup = min(pp - stage - 1, n)
    order: List[Task] = [("F", stage, m) for m in range(warmup)]
    next_fwd, next_bwd = warmup, 0
    # Steady state: alternate one forward, one backward.
    while next_fwd < n:
        order.append(("F", stage, next_fwd))
        next_fwd += 1
        order.append(("B", stage, next_bwd))
        next_bwd += 1
    # Cooldown: remaining backwards.
    while next_bwd < n:
        order.append(("B", stage, next_bwd))
        next_bwd += 1
    return order


@lru_cache(maxsize=64)
def _topo_schedule(pp: int, n: int) -> Tuple[Tuple[int, bool, int], ...]:
    """A topological order of the 1F1B task graph as (stage, is_forward, microbatch).

    The dependency graph is *structural* — it depends only on (pp, n), never on the
    stage times — so one event-driven scheduling pass per (pp, n) shape yields an
    execution order every simulation call can replay with pure arithmetic.  The pass
    itself is the classic ready-queue scheme: each stage consumes its fixed 1F1B order
    and a worklist of stages whose head task has all cross-stage dependencies met
    executes tasks as completions unblock them, O(tasks) overall.
    """
    orders: List[List[Tuple[bool, int]]] = [
        [(kind == "F", micro) for kind, _, micro in _stage_task_order(s, pp, n)]
        for s in range(pp)
    ]
    pointers = [0] * pp
    done_f = [[False] * n for _ in range(pp)]
    done_b = [[False] * n for _ in range(pp)]

    def head_ready(stage: int) -> bool:
        ptr = pointers[stage]
        if ptr >= len(orders[stage]):
            return False
        is_forward, micro = orders[stage][ptr]
        if is_forward:
            return stage == 0 or done_f[stage - 1][micro]
        if stage == pp - 1:
            return done_f[stage][micro]
        return done_b[stage + 1][micro]

    ready = [stage for stage in range(pp) if head_ready(stage)]
    queued = [stage in ready for stage in range(pp)]
    schedule: List[Tuple[int, bool, int]] = []
    while ready:
        stage = ready.pop()
        queued[stage] = False
        is_forward, micro = orders[stage][pointers[stage]]
        (done_f if is_forward else done_b)[stage][micro] = True
        pointers[stage] += 1
        schedule.append((stage, is_forward, micro))
        # A completion can unblock this stage's own next task (including the last
        # stage's B(m) waiting on its own F(m)) and one cross-stage dependent.
        if head_ready(stage):
            ready.append(stage)
            queued[stage] = True
        neighbor = stage + 1 if is_forward else stage - 1
        if 0 <= neighbor < pp and not queued[neighbor] and head_ready(neighbor):
            ready.append(neighbor)
            queued[neighbor] = True

    if len(schedule) != 2 * pp * n:
        raise RuntimeError("1F1B schedule deadlocked; dependency graph is inconsistent")
    return tuple(schedule)


def simulate_1f1b(inputs: PipelineCostInputs) -> PipelineResult:
    """Simulate one iteration of the 1F1B schedule and return its makespan.

    Dependencies honoured:

    * ``F(s, m)`` waits for ``F(s-1, m)`` plus the inter-stage transfer;
    * ``B(s, m)`` waits for ``B(s+1, m)`` plus the inter-stage transfer;
    * every task waits for the previous task in its own stage's 1F1B order.

    The simulator is event-driven in two halves: :func:`_topo_schedule` runs the
    ready-queue scheduling pass once per (pp, µbatches) shape and memoizes the resulting
    topological task order, and each call replays that order with one arithmetic step
    per task — O(tasks) instead of the former O(pp² · µbatches) polling scan.  Because
    every stage serialises its own tasks through ``stage_free`` and a task's start time
    depends only on already-finished dependencies, any topological replay computes
    times identical to the reference simulator's (``simulate_1f1b_reference``).
    """
    pp, n = inputs.num_stages, inputs.num_microbatches
    forward, backward = list(inputs.forward), list(inputs.backward)
    comm = list(inputs.comm)
    finish_f = [[0.0] * n for _ in range(pp)]
    finish_b = [[0.0] * n for _ in range(pp)]
    stage_free = [0.0] * pp
    stage_busy = [0.0] * pp
    last = pp - 1

    for stage, is_forward, micro in _topo_schedule(pp, n):
        if is_forward:
            dep = 0.0 if stage == 0 else finish_f[stage - 1][micro] + comm[stage - 1]
            duration = forward[stage]
        else:
            if stage == last:
                dep = finish_f[stage][micro]
            else:
                dep = finish_b[stage + 1][micro] + comm[stage]
            duration = backward[stage]
        start = stage_free[stage]
        if dep > start:
            start = dep
        end = start + duration
        if is_forward:
            finish_f[stage][micro] = end
        else:
            finish_b[stage][micro] = end
        stage_free[stage] = end
        stage_busy[stage] += duration

    iteration_time = max(stage_free)
    return PipelineResult(
        iteration_time=iteration_time,
        stage_busy_time=tuple(stage_busy),
        stage_finish_time=tuple(stage_free),
    )


def simulate_1f1b_reference(inputs: PipelineCostInputs) -> PipelineResult:
    """The original O(pp² · µbatches) polling-scan simulator.

    Kept as the oracle for randomized equivalence tests of the event-driven scheduler
    above; produces bit-for-bit identical results.
    """
    pp, n = inputs.num_stages, inputs.num_microbatches
    orders = [_stage_task_order(s, pp, n) for s in range(pp)]
    pointers = [0] * pp
    finish: Dict[Task, float] = {}
    stage_free = [0.0] * pp
    stage_busy = [0.0] * pp
    remaining = sum(len(order) for order in orders)

    def dependency_ready(task: Task) -> Tuple[bool, float]:
        kind, stage, micro = task
        if kind == "F":
            if stage == 0:
                return True, 0.0
            upstream = finish.get(("F", stage - 1, micro))
            if upstream is None:
                return False, 0.0
            return True, upstream + inputs.comm[stage - 1]
        if stage == pp - 1:
            upstream = finish.get(("F", stage, micro))
            if upstream is None:
                return False, 0.0
            return True, upstream
        downstream = finish.get(("B", stage + 1, micro))
        if downstream is None:
            return False, 0.0
        return True, downstream + inputs.comm[stage]

    while remaining > 0:
        progressed = False
        for stage in range(pp):
            if pointers[stage] >= len(orders[stage]):
                continue
            task = orders[stage][pointers[stage]]
            ready, dep_time = dependency_ready(task)
            if not ready:
                continue
            kind = task[0]
            duration = inputs.forward[stage] if kind == "F" else inputs.backward[stage]
            start = max(stage_free[stage], dep_time)
            end = start + duration
            finish[task] = end
            stage_free[stage] = end
            stage_busy[stage] += duration
            pointers[stage] += 1
            remaining -= 1
            progressed = True
        if not progressed:
            raise RuntimeError("1F1B schedule deadlocked; dependency graph is inconsistent")

    iteration_time = max(stage_free)
    return PipelineResult(
        iteration_time=iteration_time,
        stage_busy_time=tuple(stage_busy),
        stage_finish_time=tuple(stage_free),
    )


def analytic_1f1b_time(
    forward: float, backward: float, pp: int, num_microbatches: int
) -> float:
    """Closed-form 1F1B iteration time for homogeneous stages (used as a cross-check)."""
    if pp <= 0 or num_microbatches <= 0:
        raise ValueError("stages and micro-batches must be positive")
    per_micro = forward + backward
    return (num_microbatches + pp - 1) * per_micro
