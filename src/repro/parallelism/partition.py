"""Tensor-parallel split strategies and mesh shapes for TP groups.

A GEMM can be partitioned along batch (B), sequence (S), hidden (H) or reduction (K)
dimensions (Fig. 13).  The split strategy determines which collective closes the
partial results and therefore the communication volume; the TP group's physical shape
on the mesh determines how well the ring embeds (Fig. 5b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.units import FP16_BYTES


class TPSplitStrategy(enum.Enum):
    """Which tensor dimension the TP engine partitions."""

    HIDDEN = "hidden"        # Megatron column/row parallel — all-reduce on activations
    SEQUENCE = "sequence"    # sequence parallel — all-gather + reduce-scatter
    BATCH = "batch"          # batch split — gradient all-reduce only
    REDUCTION = "reduction"  # K-dim split — all-reduce on partial sums


def factor_shapes(group_size: int) -> List[Tuple[int, int]]:
    """All (a, b) rectangle shapes with a*b == group_size, e.g. 4 → (1,4),(2,2),(4,1)."""
    if group_size <= 0:
        raise ValueError("group size must be positive")
    shapes = []
    for a in range(1, group_size + 1):
        if group_size % a == 0:
            shapes.append((a, group_size // a))
    return shapes


def best_mesh_shape(group_size: int, mesh_x: int, mesh_y: int) -> Tuple[int, int]:
    """The most square TP-group shape that fits the mesh dimensions."""
    candidates = [
        (a, b) for a, b in factor_shapes(group_size) if a <= mesh_x and b <= mesh_y
    ]
    if not candidates:
        raise ValueError(
            f"a TP group of {group_size} dies does not fit a {mesh_x}x{mesh_y} mesh"
        )
    return min(candidates, key=lambda ab: abs(ab[0] - ab[1]))


@dataclass(frozen=True)
class SplitCost:
    """Communication volume a split strategy induces per layer per micro-batch."""

    strategy: TPSplitStrategy
    allreduce_bytes: float
    allgather_bytes: float


def split_communication(
    strategy: TPSplitStrategy,
    batch: int,
    seq: int,
    hidden: int,
    tp: int,
    allreduces_per_layer: int = 2,
) -> SplitCost:
    """Per-layer communication volume of a TP split strategy.

    The hidden (Megatron) split all-reduces the activation after each row-parallel GEMM;
    sequence parallelism swaps those for all-gather + reduce-scatter of the same volume;
    batch split needs no activation communication (but replicates weights); the reduction
    split all-reduces partial sums of the same activation size.
    """
    if tp <= 0:
        raise ValueError("tensor parallel degree must be positive")
    activation = float(batch * seq * hidden * FP16_BYTES)
    if tp == 1:
        return SplitCost(strategy, 0.0, 0.0)
    if strategy is TPSplitStrategy.HIDDEN:
        return SplitCost(strategy, allreduces_per_layer * activation, 0.0)
    if strategy is TPSplitStrategy.SEQUENCE:
        return SplitCost(strategy, 0.0, 2 * allreduces_per_layer * activation)
    if strategy is TPSplitStrategy.BATCH:
        return SplitCost(strategy, 0.0, 0.0)
    if strategy is TPSplitStrategy.REDUCTION:
        return SplitCost(strategy, allreduces_per_layer * activation, 0.0)
    raise ValueError(f"unknown split strategy {strategy!r}")
