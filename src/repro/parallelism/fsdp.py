"""FSDP (fully sharded data parallel) traffic model (paper Fig. 6a).

FSDP shards weights, gradients and optimizer states across the data-parallel group and
re-materialises full weights layer by layer with all-gathers (forward and backward) plus
a reduce-scatter of gradients.  The traffic is proportional to the *parameter* volume
rather than the activation volume, which congests the wafer's 2D-mesh NoC and drops its
bandwidth utilisation 20–40% below a TP configuration that moves only activations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interconnect.alphabeta import AlphaBetaLink
from repro.interconnect.collectives import CollectiveModel
from repro.units import FP16_BYTES
from repro.workloads.models import ModelConfig


@dataclass(frozen=True)
class FsdpCost:
    """Per-iteration communication cost and volume of FSDP over a sharding group."""

    allgather_bytes: float
    reduce_scatter_bytes: float
    comm_time: float

    @property
    def total_bytes(self) -> float:
        return self.allgather_bytes + self.reduce_scatter_bytes


def fsdp_traffic_bytes(model: ModelConfig) -> float:
    """Parameter bytes FSDP moves per iteration: two all-gathers + one reduce-scatter."""
    param_bytes = model.num_parameters * FP16_BYTES
    return 3.0 * param_bytes


def fsdp_cost(model: ModelConfig, group_size: int, link: AlphaBetaLink) -> FsdpCost:
    """Communication time of FSDP over ``group_size`` dies connected by ``link``."""
    if group_size <= 0:
        raise ValueError("sharding group size must be positive")
    param_bytes = model.num_parameters * FP16_BYTES
    collective = CollectiveModel(link, group_size)
    allgather = 2.0 * param_bytes
    reduce_scatter = param_bytes
    comm_time = (
        2.0 * collective.ring_all_gather(param_bytes, bidirectional=True)
        + collective.reduce_scatter(param_bytes, bidirectional=True)
    )
    return FsdpCost(
        allgather_bytes=allgather,
        reduce_scatter_bytes=reduce_scatter,
        comm_time=comm_time,
    )
