"""Distributed sweep fabric: a ``repro serve`` coordinator plus connecting hosts.

The single-box sweep runtime (supervised :class:`~repro.core.parallel_map.WorkerPool`,
cell retry/quarantine, the two-level scheduler) is promoted to many hosts here: one
``repro serve`` daemon owns the authoritative result/cache stores and a leased cell
queue, and any number of ``Session(store="host:port/ns")`` hosts claim cells from it
under heartbeat-renewed leases.  The detect/requeue/quarantine semantics are the same
ones PR 6 proved locally — a host that misses its heartbeat window has its leased
cells requeued with the attempt count carried, and a cell that keeps killing hosts is
quarantined as a ``status="failed"`` row under the *global* retry budget.

Layering: :mod:`repro.fabric.protocol` (framing, endpoints, errors) and
:mod:`repro.fabric.leases` (lease table + append-only journal) are stdlib-only and
import nothing from the rest of the package, so the chaos harness can hook the wire
without cycles; :mod:`repro.fabric.server` and :mod:`repro.fabric.client` sit above
the API stores.
"""

from repro.fabric.client import FabricClient
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    Endpoint,
    FabricConnectionError,
    FabricError,
    FabricProtocolError,
    looks_like_endpoint,
    parse_endpoint,
)
from repro.fabric.server import FabricCoordinator

__all__ = [
    "PROTOCOL_VERSION",
    "Endpoint",
    "FabricClient",
    "FabricConnectionError",
    "FabricCoordinator",
    "FabricError",
    "FabricProtocolError",
    "looks_like_endpoint",
    "parse_endpoint",
]
