"""Wire protocol of the sweep fabric: JSON lines over TCP, stdlib only.

One frame is one JSON object terminated by a newline — the same torn-tail discipline
as the JSONL stores: a writer killed mid-frame leaves a partial line with no
terminator, and the reader treats any unterminated line as EOF rather than an error,
so a torn handoff degrades to a dropped connection (which lease expiry then heals),
never to a half-parsed command.

The module also owns endpoint parsing (``host:port[/namespace]``, the string a
``Session(store=...)`` uses to reach a coordinator) and the **network chaos hook**:
:class:`~repro.core.chaos.ChaosMonkey` installs a callable here that every frame
send passes through, so seeded connection drops, heartbeat delays and torn mid-frame
writes can be injected at deterministic points without the runtime importing the
chaos harness.  Nothing in this module imports from the rest of the package.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "Endpoint",
    "FabricConnectionError",
    "FabricError",
    "FabricProtocolError",
    "looks_like_endpoint",
    "net_hook",
    "offline_fallback_hint",
    "parse_endpoint",
    "recv_frame",
    "send_frame",
    "set_net_hook",
]

#: Version of the fabric wire protocol.  Bumped on incompatible change; the hello
#: handshake rejects version-mismatched peers with an actionable error instead of
#: letting two incompatible hosts corrupt one queue.
PROTOCOL_VERSION = 1

#: Default namespace a bare ``host:port`` endpoint resolves to.
DEFAULT_NAMESPACE = "default"


class FabricError(RuntimeError):
    """Base class of every fabric failure."""


class FabricProtocolError(FabricError):
    """The peer spoke, but wrongly: bad frame, version or namespace mismatch."""


class FabricConnectionError(FabricError):
    """The coordinator could not be reached (connect, or reconnect budget spent)."""


def offline_fallback_hint() -> str:
    """The degradation advice every connection-failure message carries."""
    return (
        "offline fallback: run the sweep locally with --results <file> and fold the "
        "stores together later with `repro results merge`"
    )


# ------------------------------------------------------------------ endpoints
@dataclass(frozen=True)
class Endpoint:
    """A parsed ``host:port[/namespace]`` coordinator address."""

    host: str
    port: int
    namespace: str = DEFAULT_NAMESPACE

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __str__(self) -> str:
        return f"{self.host}:{self.port}/{self.namespace}"


_ENDPOINT_SHAPE = re.compile(r"^(?P<host>[^/:\s]+):(?P<port>[^/\s]*)(?:/(?P<ns>.*))?$")


def looks_like_endpoint(value: Any) -> bool:
    """Whether a ``store=`` string names a coordinator rather than a file.

    The shape is ``host:port[/namespace]`` — one colon, no path separators before
    it.  A string that *looks* like an endpoint but has a malformed port is still
    claimed here (and :func:`parse_endpoint` raises the actionable error), because
    ``localhost:70b7`` is a typoed address, not a plausible cache filename.
    """
    if not isinstance(value, str):
        return False
    match = _ENDPOINT_SHAPE.match(value)
    if match is None:
        return False
    # ``sweep.jsonl:old`` and friends stay files: a host part with a suffix dot and
    # a non-numeric port is far more likely a mistyped path than an address.
    host, port = match.group("host"), match.group("port")
    if "." in host and not host.replace(".", "").isdigit() and not port.isdigit():
        return False
    return True


def parse_endpoint(value: str, default_namespace: str = DEFAULT_NAMESPACE) -> Endpoint:
    """Parse ``host:port[/namespace]``, failing with an actionable message.

    >>> parse_endpoint("127.0.0.1:7077/prod")
    Endpoint(host='127.0.0.1', port=7077, namespace='prod')
    """
    match = _ENDPOINT_SHAPE.match(str(value))
    if match is None:
        raise ValueError(
            f"{value!r}: not a coordinator endpoint — expected host:port[/namespace], "
            "e.g. 127.0.0.1:7077/prod"
        )
    host, port, namespace = match.group("host"), match.group("port"), match.group("ns")
    if not port.isdigit() or not 0 <= int(port) <= 65535:
        raise ValueError(
            f"bad port {port!r} in {value!r} — expected host:port[/namespace] with a "
            "numeric port, e.g. 127.0.0.1:7077/prod"
        )
    if namespace == "":
        # ``host:port/`` — a dangling slash is a truncated namespace, not a default.
        raise ValueError(
            f"{value!r}: empty namespace after '/' — drop the slash for the "
            f"'{default_namespace}' namespace or name one, e.g. {host}:{port}/prod"
        )
    return Endpoint(host=host, port=int(port), namespace=namespace or default_namespace)


# ------------------------------------------------------------------ chaos hook
#: When set, every frame send calls ``hook(direction, op)``.  The hook may sleep
#: (heartbeat delay), raise a ``ConnectionError`` (seeded drop), or return the
#: string ``"tear"`` to make :func:`send_frame` write half the frame and abort —
#: the torn mid-frame write a SIGKILL between ``write`` and the newline leaves.
_NET_HOOK: Optional[Callable[[str, str], Optional[str]]] = None


def set_net_hook(hook: Optional[Callable[[str, str], Optional[str]]]) -> None:
    global _NET_HOOK
    _NET_HOOK = hook


def net_hook() -> Optional[Callable[[str, str], Optional[str]]]:
    return _NET_HOOK


# ------------------------------------------------------------------ framing
def send_frame(wfile, message: Dict[str, Any]) -> None:
    """Write one frame (JSON object + newline) and flush.

    Raises whatever the transport raises on a dead peer (``ConnectionError`` /
    ``OSError``); the chaos hook can force the torn-write variant deterministically.
    """
    data = (json.dumps(message) + "\n").encode("utf-8")
    hook = _NET_HOOK
    if hook is not None:
        action = hook("send", str(message.get("op", "")))
        if action == "tear":
            wfile.write(data[: max(1, len(data) // 2)])
            wfile.flush()
            raise ConnectionResetError("chaos: torn mid-frame write")
    wfile.write(data)
    wfile.flush()


def recv_frame(rfile) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on EOF *or* a torn (unterminated) trailing line.

    A frame that is terminated but unparseable is a protocol violation and raises
    :class:`FabricProtocolError` — the peer is confused, not dead.
    """
    line = rfile.readline()
    if not line or not line.endswith(b"\n"):
        return None  # EOF, or the peer died mid-frame: either way the frame is gone
    try:
        frame = json.loads(line.decode("utf-8"))
    except ValueError as exc:
        raise FabricProtocolError(f"unparseable fabric frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise FabricProtocolError(f"fabric frame must be an object, got {type(frame).__name__}")
    return frame
