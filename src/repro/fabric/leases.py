"""Leased cell queue: grants, heartbeat renewal, expiry, and the recovery journal.

A *lease* is the coordinator's claim record for one in-flight sweep cell: which host
holds it, which (global) attempt it is, and when it expires.  Hosts renew every lease
they hold with one heartbeat; a host that misses its window has its leases
**expired** — the cells go back on the queue with the attempt count carried, so the
retry budget spans hosts exactly the way a single-box
:class:`~repro.core.retry.RetryPolicy` spans worker crashes.

The :class:`LeaseJournal` is the tiny append-only half of coordinator crash
recovery.  The result store already records every *completed* cell; the journal
records the queue's other transitions (cell registered, lease granted, cell
requeued, cell settled), so a restarted coordinator can rebuild exactly the pending
set and per-cell attempt counts — no cell lost, none forgotten mid-lease.  Rows are
JSON lines under the same torn-tail discipline as every other append-only store in
the repo: a row cut short by a kill is skipped on replay, costing at most one
transition that lease expiry then re-derives.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["CellState", "Lease", "LeaseJournal", "LeaseTable"]

#: Journal format marker (first line of the file).
_JOURNAL_FORMAT = "watos-lease-journal"


@dataclass
class Lease:
    """One granted cell: who holds it, which attempt, and when it expires."""

    cell_id: str
    host: str
    attempt: int
    expires_at: float  # time.monotonic() deadline, renewed by heartbeats

    def expired(self, now: Optional[float] = None) -> bool:
        return (time.monotonic() if now is None else now) > self.expires_at


@dataclass
class CellState:
    """Everything the coordinator tracks for one registered cell."""

    cell_id: str
    #: Provenance shipped at registration (kind/label/spec dict) — enough to write
    #: a quarantine row for a cell whose final attempt died with its host.
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Global attempts consumed so far (bumped at grant time, carried by requeues).
    attempts: int = 0
    #: Hosts that registered this cell (only they can claim it — hosts running
    #: different matrices share one queue without being handed foreign work).
    hosts: set = field(default_factory=set)


class LeaseTable:
    """In-memory lease state, owned by the coordinator's single dispatcher thread.

    Not thread-safe by design: every mutation happens on the dispatcher, which is
    what makes grant/renew/expire ordering deterministic under test.
    """

    def __init__(self, lease_s: float = 10.0) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        self.lease_s = lease_s
        self._leases: Dict[str, Lease] = {}  # cell_id -> lease

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._leases

    def get(self, cell_id: str) -> Optional[Lease]:
        return self._leases.get(cell_id)

    def grant(self, cell_id: str, host: str, attempt: int) -> Lease:
        """Lease one cell to one host.  Double-granting a live lease is a bug."""
        if cell_id in self._leases:
            raise RuntimeError(f"cell {cell_id} is already leased to {self._leases[cell_id].host}")
        lease = Lease(cell_id, host, attempt, time.monotonic() + self.lease_s)
        self._leases[cell_id] = lease
        return lease

    def renew(self, host: str, now: Optional[float] = None) -> int:
        """One heartbeat: push every lease the host holds out by the lease window."""
        now = time.monotonic() if now is None else now
        renewed = 0
        for lease in self._leases.values():
            if lease.host == host:
                lease.expires_at = now + self.lease_s
                renewed += 1
        return renewed

    def release(self, cell_id: str) -> Optional[Lease]:
        """Drop the lease on a settled (completed/failed/requeued) cell."""
        return self._leases.pop(cell_id, None)

    def expired(self, now: Optional[float] = None) -> List[Lease]:
        """Leases whose host missed its heartbeat window (not yet released)."""
        now = time.monotonic() if now is None else now
        return [lease for lease in self._leases.values() if lease.expired(now)]

    def held_by(self, host: str) -> List[Lease]:
        return [lease for lease in self._leases.values() if lease.host == host]


class LeaseJournal:
    """Append-only queue-transition log for coordinator restart recovery.

    Events (one JSON object per line, ``e`` is the event tag):

    * ``reg``     — cell registered: ``{"e": "reg", "c": id, "m": meta}``
    * ``grant``   — lease granted:   ``{"e": "grant", "c": id, "h": host, "a": attempt}``
    * ``requeue`` — cell back on the queue (failed attempt / dead host), attempts
      carried: ``{"e": "requeue", "c": id, "a": attempts}``
    * ``done``    — cell settled (ok or quarantined): ``{"e": "done", "c": id}``
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = None
        #: Rows skipped during the most recent :meth:`replay` (torn tail, noise).
        self.replay_errors = 0

    # ------------------------------------------------------------------ writing
    def _open(self):
        if self._handle is None:
            fresh = not os.path.exists(self.path)
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._handle.write(json.dumps({"format": _JOURNAL_FORMAT}) + "\n")
                self._handle.flush()
        return self._handle

    def append(self, event: str, cell_id: str, **fields: Any) -> None:
        handle = self._open()
        handle.write(json.dumps({"e": event, "c": cell_id, **fields}) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------ replay
    def replay(self) -> Tuple[Dict[str, CellState], List[str], List[str]]:
        """Rebuild queue state: ``(cells, pending_ids, interrupted_ids)``.

        ``pending_ids`` are cells registered or requeued but not granted/settled at
        the crash, in arrival order.  ``interrupted_ids`` are cells that were *under
        lease* when the coordinator died — their hosts may or may not still be
        alive, so the caller requeues them (attempts carried); if the original host
        later completes one anyway, the result store's later-duplicates-win put
        makes the double harmless.
        """
        self.replay_errors = 0
        cells: Dict[str, CellState] = {}
        pending: List[str] = []
        leased: List[str] = []
        done: set = set()
        if not os.path.exists(self.path):
            return cells, pending, leased
        with open(self.path, "r", encoding="utf-8") as handle:
            first = handle.readline()
            try:
                header = json.loads(first) if first.endswith("\n") else None
            except ValueError:
                header = None
            if not isinstance(header, dict) or header.get("format") != _JOURNAL_FORMAT:
                self.replay_errors += 1
                return cells, pending, leased
            for line in handle:
                if not line.endswith("\n"):
                    self.replay_errors += 1  # torn tail: the transition is re-derived
                    break
                try:
                    row = json.loads(line)
                    event, cell_id = str(row["e"]), str(row["c"])
                except (ValueError, KeyError, TypeError):
                    self.replay_errors += 1
                    continue
                if event == "reg":
                    if cell_id not in cells:
                        cells[cell_id] = CellState(cell_id, meta=dict(row.get("m") or {}))
                        pending.append(cell_id)
                elif event == "grant":
                    state = cells.setdefault(cell_id, CellState(cell_id))
                    state.attempts = int(row.get("a", state.attempts + 1))
                    if cell_id in pending:
                        pending.remove(cell_id)
                    if cell_id not in leased:
                        leased.append(cell_id)
                elif event == "requeue":
                    state = cells.setdefault(cell_id, CellState(cell_id))
                    state.attempts = int(row.get("a", state.attempts))
                    if cell_id in leased:
                        leased.remove(cell_id)
                    if cell_id not in pending:
                        pending.append(cell_id)
                elif event == "done":
                    done.add(cell_id)
                    if cell_id in pending:
                        pending.remove(cell_id)
                    if cell_id in leased:
                        leased.remove(cell_id)
        for cell_id in done:
            cells.pop(cell_id, None)
        return cells, pending, leased
