"""Host-side fabric client: one socket, bounded reconnect, heartbeat thread.

A :class:`FabricClient` is what a ``Session(store="host:port/ns")`` talks through.
It owns one TCP connection to the coordinator, replays the hello handshake on every
(re)connect, and keeps all requests on one lock so the heartbeat thread and the
claim loop share the socket without interleaving frames.

Degradation ladder, in order:

1. coordinator unreachable at connect → :class:`FabricConnectionError` immediately,
   naming ``repro serve`` and the offline fallback — nothing half-starts;
2. connection lost mid-sweep → bounded reconnect with exponential backoff (the
   hello is replayed, so a restarted coordinator is picked up transparently);
3. reconnect budget spent → :class:`FabricConnectionError` again, and the session
   locally quarantines whatever cell was in flight.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Union

from repro.core.evalcache import decode_value, encode_value
from repro.obs import tracer as _obs
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    Endpoint,
    FabricConnectionError,
    FabricError,
    FabricProtocolError,
    offline_fallback_hint,
    parse_endpoint,
    recv_frame,
    send_frame,
)

__all__ = ["FabricClient"]

#: Distinguishes two Sessions in one process — host identity must be unique per
#: client, or the coordinator would renew both clients' leases on one heartbeat.
_CLIENT_COUNTER = itertools.count(1)


class FabricClient:
    """One host's connection to a ``repro serve`` coordinator."""

    def __init__(
        self,
        endpoint: Union[str, Endpoint],
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        reconnect_attempts: int = 3,
        backoff_s: float = 0.25,
        host_id: Optional[str] = None,
    ) -> None:
        self.endpoint = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.reconnect_attempts = int(reconnect_attempts)
        self.backoff_s = float(backoff_s)
        self.host_id = host_id or (
            f"{socket.gethostname()}-{os.getpid()}-{next(_CLIENT_COUNTER)}"
        )
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._hb_stop = threading.Event()
        self._hb_thread: Optional[threading.Thread] = None
        self._closed = False
        #: Set when the reconnect budget was spent; further requests fail fast.
        self.lost = False
        #: The coordinator's lease window, learned from the hello reply — the
        #: heartbeat interval derives from it so clients never tune two knobs.
        self.lease_s = 10.0
        self._connect()  # fail at construction, not first claim

    # ------------------------------------------------------------------ transport
    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self.endpoint.host, self.endpoint.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise FabricConnectionError(
                f"could not reach coordinator at {self.endpoint.address}: {exc}. "
                f"Is `repro serve <store-dir> --bind {self.endpoint.address}` running "
                f"there? {offline_fallback_hint()}"
            ) from exc
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._hello()

    def _hello(self) -> None:
        send_frame(
            self._wfile,
            {
                "op": "hello",
                "version": PROTOCOL_VERSION,
                "namespace": self.endpoint.namespace,
                "host": self.host_id,
            },
        )
        reply = recv_frame(self._rfile)
        if reply is None:
            raise ConnectionResetError("coordinator closed the connection during hello")
        if reply.get("ok"):
            self.lease_s = float(reply.get("lease_s", self.lease_s))
            return
        kind = reply.get("kind")
        if kind == "version":
            raise FabricProtocolError(
                f"coordinator at {self.endpoint.address} speaks fabric protocol "
                f"v{reply.get('version')}, this client speaks v{PROTOCOL_VERSION} — "
                "upgrade the older side (client and `repro serve` must come from "
                "compatible checkouts)"
            )
        if kind == "namespace":
            served = str(reply.get("namespace", ""))
            from repro.api.spec import did_you_mean

            suggestion = did_you_mean(self.endpoint.namespace, [served])
            hint = (
                f"; did you mean '{suggestion}'?"
                if suggestion
                else f" (it serves namespace '{served}')"
            )
            raise FabricProtocolError(
                f"coordinator at {self.endpoint.address} does not serve namespace "
                f"'{self.endpoint.namespace}'{hint} Connect with "
                f"{self.endpoint.address}/{served} or start a coordinator for "
                f"'{self.endpoint.namespace}'."
            )
        raise FabricProtocolError(
            f"coordinator at {self.endpoint.address} rejected the handshake: "
            f"{reply.get('error', 'unknown error')}"
        )

    def _teardown(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = self._wfile = self._sock = None

    def request(self, op: str, **payload: Any) -> Dict[str, Any]:
        """One command/reply round trip, reconnecting with backoff on a dead link.

        Protocol-level rejections (version, namespace, malformed frames) raise
        :class:`FabricProtocolError` immediately — reconnecting cannot fix them.
        Transport failures consume the reconnect budget; once it is spent the
        client is marked :attr:`lost` and raises :class:`FabricConnectionError`.
        """
        frame = {"op": op, **payload}
        with _obs.span("fabric.request", tag=op), self._lock:
            if self._closed:
                raise FabricConnectionError("fabric client is closed")
            if self.lost:
                raise FabricConnectionError(
                    f"connection to {self.endpoint.address} was already lost "
                    f"(reconnect budget spent). {offline_fallback_hint()}"
                )
            last_error: Optional[BaseException] = None
            for attempt in range(self.reconnect_attempts + 1):
                if attempt:
                    time.sleep(self.backoff_s * (2 ** (attempt - 1)))
                try:
                    if self._sock is None:
                        self._connect()
                    send_frame(self._wfile, frame)
                    reply = recv_frame(self._rfile)
                    if reply is None:
                        raise ConnectionResetError("coordinator closed the connection")
                except FabricConnectionError as exc:
                    last_error = exc  # reconnect refused; keep burning the budget
                    continue
                except (ConnectionError, OSError) as exc:
                    last_error = exc
                    self._teardown()
                    continue
                if not reply.get("ok", False):
                    raise FabricError(
                        f"coordinator rejected {op}: {reply.get('error', 'unknown error')}"
                    )
                return reply
            self.lost = True
            self._teardown()
            raise FabricConnectionError(
                f"lost connection to coordinator at {self.endpoint.address} and could "
                f"not reconnect after {self.reconnect_attempts} attempts "
                f"(last error: {last_error}). In-flight cells will be quarantined "
                f"locally. {offline_fallback_hint()}"
            )

    # ------------------------------------------------------------------ heartbeats
    def start_heartbeats(self, interval_s: Optional[float] = None) -> None:
        """Renew this host's leases on a daemon thread (default: a third of the
        coordinator's lease window, so two beats can be lost before expiry).

        Heartbeat failures are swallowed — the claim loop sees the same dead link on
        its next request and owns the error path; two threads racing to report one
        failure would double-quarantine.
        """
        if self._hb_thread is not None:
            return
        if interval_s is None:
            interval_s = max(self.lease_s / 3.0, 0.05)

        def beat() -> None:
            while not self._hb_stop.wait(interval_s):
                try:
                    self.request("heartbeat", host=self.host_id)
                except FabricError:
                    pass

        self._hb_thread = threading.Thread(target=beat, name="fabric-heartbeat", daemon=True)
        self._hb_thread.start()

    # ------------------------------------------------------------------ commands
    def register(
        self,
        cells: List[Dict[str, Any]],
        max_attempts: int,
        skip_failed: bool = False,
    ) -> Dict[str, Any]:
        return self.request(
            "register",
            host=self.host_id,
            cells=cells,
            max_attempts=max_attempts,
            skip_failed=skip_failed,
        )

    def claim(self) -> Dict[str, Any]:
        return self.request("claim", host=self.host_id)

    def complete(self, cell_id: str, record: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("complete", host=self.host_id, cell=cell_id, record=record)

    def fail(self, cell_id: str, record: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("fail", host=self.host_id, cell=cell_id, record=record)

    def cache_pull(self) -> Dict[str, Any]:
        """The coordinator's cache, decoded and ready to seed a local cache."""
        reply = self.request("cache_pull")
        return {
            str(key): decode_value(value)
            for key, value in (reply.get("entries") or {}).items()
        }

    def cache_push(self, entries: Dict[str, Any]) -> int:
        """Ship freshly priced entries; returns how many the coordinator adopted."""
        if not entries:
            return 0
        encoded = {key: encode_value(value) for key, value in entries.items()}
        return int(self.request("cache_push", entries=encoded).get("adopted", 0))

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=2.0)
        with self._lock:
            self._closed = True
            if self._wfile is not None:
                try:
                    send_frame(self._wfile, {"op": "bye"})
                except (ConnectionError, OSError):
                    pass
            self._teardown()

    def __enter__(self) -> "FabricClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
