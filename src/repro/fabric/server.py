"""The ``repro serve`` coordinator: authoritative stores plus a leased cell queue.

One :class:`FabricCoordinator` owns a store directory::

    <store-dir>/results.jsonl   # the authoritative ResultStore (rows, statuses)
    <store-dir>/cache.jsonl     # the authoritative evaluation-cache store
    <store-dir>/leases.jsonl    # the append-only lease journal (restart recovery)

and serves the fabric protocol over TCP.  Hosts register the cells of the matrix
they are sweeping (content-derived ids make concurrent registrations of the same
matrix merge), then claim cells one at a time under heartbeat-renewed leases and
stream completed rows back write-through.  Work-stealing falls out of the queue: a
fast host simply claims more cells than a slow one.

Concurrency model (the ``radical.utils`` bridge idiom): connection handlers run on
threads but never touch state — every command is enqueued to one **dispatcher
thread** that owns the queue, the lease table, the journal and both stores.  That
single writer is what makes grant/requeue/quarantine ordering deterministic and
keeps the sqlite/JSONL backends free of cross-thread use.  A reaper timer enqueues
a tick like any other command; expired leases are requeued with the attempt count
carried, and a cell whose granted attempt already reached the global budget is
quarantined as a ``status="failed"`` row exactly as the local retry loop would.

Restart recovery: completed cell ids come from the result store, queue transitions
from the journal; leases that were live at the crash are requeued (their hosts may
have died with the coordinator).  If a presumed-dead host completes anyway, the
result store's later-duplicates-win put makes the double write harmless — pricing
is pure, so both rows are byte-identical.
"""

from __future__ import annotations

import os
import queue
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.evalcache import EvaluationCache, decode_value, encode_value
from repro.api.results import open_result_store, record_status
from repro.fabric.leases import CellState, LeaseJournal, LeaseTable
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    FabricProtocolError,
    recv_frame,
    send_frame,
)

__all__ = ["FabricCoordinator"]

#: Filenames inside a coordinator store directory.
RESULTS_FILENAME = "results.jsonl"
CACHE_FILENAME = "cache.jsonl"
JOURNAL_FILENAME = "leases.jsonl"


class _Handler(socketserver.StreamRequestHandler):
    """One connected host: hello handshake, then a command/reply loop."""

    def handle(self) -> None:  # pragma: no cover - exercised via live sockets
        coordinator: "FabricCoordinator" = self.server.coordinator  # type: ignore[attr-defined]
        try:
            hello = recv_frame(self.rfile)
        except FabricProtocolError as exc:
            self._reply({"ok": False, "kind": "protocol", "error": str(exc)})
            return
        if hello is None:
            return
        reply = coordinator.check_hello(hello)
        if not self._reply(reply) or not reply.get("ok"):
            return
        while True:
            try:
                frame = recv_frame(self.rfile)
            except FabricProtocolError as exc:
                self._reply({"ok": False, "kind": "protocol", "error": str(exc)})
                return
            if frame is None or frame.get("op") == "bye":
                return
            if not self._reply(coordinator.dispatch(frame)):
                return

    def _reply(self, message: Dict[str, Any]) -> bool:
        try:
            send_frame(self.wfile, message)
            return True
        except (ConnectionError, OSError):
            return False  # host went away mid-reply; lease expiry cleans up


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class FabricCoordinator:
    """Owns the authoritative stores and the leased cell queue (see module docstring)."""

    def __init__(
        self,
        store_dir: str,
        namespace: str = "default",
        lease_s: float = 10.0,
        tick_s: Optional[float] = None,
        default_max_attempts: int = 3,
    ) -> None:
        self.store_dir = str(store_dir)
        os.makedirs(self.store_dir, exist_ok=True)
        self.namespace = str(namespace)
        self.lease_s = float(lease_s)
        #: How often expired leases are reaped; a quarter window keeps detection
        #: latency well under one lease without busy-polling.
        self.tick_s = float(tick_s) if tick_s is not None else max(self.lease_s / 4.0, 0.05)
        self.default_max_attempts = int(default_max_attempts)

        self.results = open_result_store(os.path.join(self.store_dir, RESULTS_FILENAME))
        self.cache = EvaluationCache(
            max_entries=None, store=os.path.join(self.store_dir, CACHE_FILENAME)
        )
        self.journal = LeaseJournal(os.path.join(self.store_dir, JOURNAL_FILENAME))
        self.leases = LeaseTable(lease_s=self.lease_s)

        #: cell_id -> CellState for every registered, not-yet-settled cell.
        self._cells: Dict[str, CellState] = {}
        #: FIFO of claimable cell ids (registered or requeued, not leased).
        self._pending: List[str] = []
        #: Settled cell ids (ok or quarantined rows in the result store).
        self._completed: set = set()
        #: host -> last heartbeat wall-clock (observability only).
        self._hosts_seen: Dict[str, float] = {}
        #: Counters surfaced by the ``stats`` op and asserted by the chaos tests.
        self.requeues = 0
        self.quarantines = 0
        self.expiries = 0

        self._requests: "queue.Queue" = queue.Queue()
        self._server: Optional[_Server] = None
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._recover()

    # ------------------------------------------------------------------ recovery
    def _recover(self) -> None:
        """Rebuild the queue from the result store plus the lease journal."""
        for cell_id, record in self.results.load().items():
            del record
            self._completed.add(cell_id)
        cells, pending, interrupted = self.journal.replay()
        for cell_id, state in cells.items():
            if cell_id in self._completed:
                continue
            self._cells[cell_id] = state
        for cell_id in pending + interrupted:
            if cell_id in self._completed or cell_id not in self._cells:
                continue
            if cell_id not in self._pending:
                self._pending.append(cell_id)
        for cell_id in interrupted:
            # The lease died with the previous coordinator; put the transition on
            # the record so a second restart replays to the same queue.
            if cell_id in self._cells:
                self.journal.append("requeue", cell_id, a=self._cells[cell_id].attempts)
                self.requeues += 1

    # ------------------------------------------------------------------ lifecycle
    def start(self, bind: str = "127.0.0.1:0") -> str:
        """Bind, start the handler/dispatcher/reaper threads, return ``host:port``."""
        host, _, port = bind.partition(":")
        self._server = _Server((host or "127.0.0.1", int(port or 0)), _Handler)
        self._server.coordinator = self  # type: ignore[attr-defined]
        self._threads = [
            threading.Thread(target=self._server.serve_forever, name="fabric-accept", daemon=True),
            threading.Thread(target=self._dispatch_loop, name="fabric-dispatch", daemon=True),
            threading.Thread(target=self._reap_loop, name="fabric-reaper", daemon=True),
        ]
        for thread in self._threads:
            thread.start()
        return self.address

    @property
    def address(self) -> str:
        if self._server is None:
            raise RuntimeError("coordinator is not serving (call start())")
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def stop(self) -> None:
        """Stop serving and close every store.  Idempotent."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        self._requests.put(None)  # unblock the dispatcher
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.cache.flush()
        self.cache.close()
        self.results.close()
        self.journal.close()

    def __enter__(self) -> "FabricCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ handshake
    def check_hello(self, hello: Dict[str, Any]) -> Dict[str, Any]:
        """Validate a peer's hello (stateless, safe outside the dispatcher)."""
        if hello.get("op") != "hello":
            return {"ok": False, "kind": "protocol", "error": "expected a hello frame first"}
        version = hello.get("version")
        if version != PROTOCOL_VERSION:
            return {
                "ok": False,
                "kind": "version",
                "error": f"fabric protocol v{version} != server v{PROTOCOL_VERSION}",
                "version": PROTOCOL_VERSION,
            }
        namespace = str(hello.get("namespace", ""))
        if namespace != self.namespace:
            return {
                "ok": False,
                "kind": "namespace",
                "error": f"namespace {namespace!r} is not served here",
                "namespace": self.namespace,
            }
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "namespace": self.namespace,
            "lease_s": self.lease_s,
        }

    # ------------------------------------------------------------------ dispatch
    def dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Run one command on the dispatcher thread and wait for its reply."""
        reply_queue: "queue.Queue" = queue.Queue()
        self._requests.put((frame, reply_queue))
        return reply_queue.get()

    def _dispatch_loop(self) -> None:
        handlers = {
            "register": self._op_register,
            "claim": self._op_claim,
            "heartbeat": self._op_heartbeat,
            "complete": self._op_complete,
            "fail": self._op_fail,
            "cache_pull": self._op_cache_pull,
            "cache_push": self._op_cache_push,
            "stats": self._op_stats,
            "_tick": self._op_tick,
        }
        while True:
            item = self._requests.get()
            if item is None:
                return
            frame, reply_queue = item
            handler = handlers.get(str(frame.get("op", "")))
            if handler is None:
                error = f"unknown op {frame.get('op')!r}"
                reply = {"ok": False, "kind": "protocol", "error": error}
            else:
                try:
                    reply = handler(frame)
                except Exception as exc:  # surface, don't kill the dispatcher
                    error = f"{type(exc).__name__}: {exc}"
                    reply = {"ok": False, "kind": "internal", "error": error}
            if reply_queue is not None:
                reply_queue.put(reply)

    def _reap_loop(self) -> None:
        while not self._stop.wait(self.tick_s):
            self._requests.put(({"op": "_tick"}, None))

    # ------------------------------------------------------------------ queue ops
    def _op_register(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Merge a host's matrix into the queue; reply with already-settled ids.

        A cell with an ``ok`` row in the store is settled.  A cell with a *failed*
        row is re-registered (fresh budget) unless the host asked ``skip_failed``
        — the same resume semantics as a local sweep.
        """
        host = str(frame.get("host", ""))
        skip_failed = bool(frame.get("skip_failed", False))
        max_attempts = int(frame.get("max_attempts", self.default_max_attempts))
        completed: List[str] = []
        registered = 0
        for cell in frame.get("cells", []):
            cell_id = str(cell["id"])
            if cell_id in self._completed:
                record = self.results.get(cell_id)
                failed = record is not None and record_status(record) == "failed"
                if not failed or skip_failed:
                    completed.append(cell_id)
                    continue
                self._completed.discard(cell_id)  # re-attempt under a fresh budget
            state = self._cells.get(cell_id)
            if state is None:
                state = CellState(
                    cell_id,
                    meta={
                        "kind": cell.get("kind", "?"),
                        "label": cell.get("label", ""),
                        "spec": cell.get("spec"),
                        "max_attempts": max_attempts,
                    },
                )
                self._cells[cell_id] = state
                self._pending.append(cell_id)
                self.journal.append("reg", cell_id, m=state.meta)
                registered += 1
            state.hosts.add(host)
        self._hosts_seen[host] = time.time()
        return {"ok": True, "completed": completed, "registered": registered}

    def _op_claim(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Lease the oldest pending cell this host registered, bumping its attempt.

        No claimable cell: ``wait`` while any of the host's cells could still come
        back (leased elsewhere, or pending under another host's exclusive claim
        set), ``drained`` once every cell the host registered is settled.
        """
        host = str(frame.get("host", ""))
        for index, cell_id in enumerate(self._pending):
            state = self._cells.get(cell_id)
            if state is None:
                continue
            if state.hosts and host not in state.hosts:
                continue  # another matrix's cell; this host cannot price it
            del self._pending[index]
            state.attempts += 1
            self.journal.append("grant", cell_id, h=host, a=state.attempts)
            self.leases.grant(cell_id, host, state.attempts)
            return {
                "ok": True,
                "cell": cell_id,
                "attempt": state.attempts,
                "max_attempts": int(state.meta.get("max_attempts", self.default_max_attempts)),
            }
        outstanding = any(host in state.hosts for state in self._cells.values())
        if outstanding:
            return {"ok": True, "wait": True, "poll_s": min(self.tick_s, 0.25)}
        return {"ok": True, "drained": True}

    def _op_heartbeat(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        host = str(frame.get("host", ""))
        renewed = self.leases.renew(host)
        self._hosts_seen[host] = time.time()
        return {"ok": True, "renewed": renewed}

    def _op_complete(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Write one completed row through and settle the cell.

        Idempotent under requeue races: a presumed-dead host completing a cell that
        was already requeued (or even re-completed elsewhere) just overwrites with
        byte-identical bytes — later duplicates win, nothing is priced differently.
        """
        cell_id = str(frame.get("cell", ""))
        record = frame.get("record") or {}
        self.results.put(cell_id, record)
        self.journal.append("done", cell_id)
        self.leases.release(cell_id)
        if cell_id in self._pending:
            self._pending.remove(cell_id)
        self._cells.pop(cell_id, None)
        self._completed.add(cell_id)
        return {"ok": True}

    def _op_fail(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """One failed attempt: requeue with attempts carried, or quarantine.

        Stale reports — the host's lease already expired and the reaper requeued
        (or quarantined) the cell — are acknowledged without acting, so one failure
        never burns two attempts.
        """
        host = str(frame.get("host", ""))
        cell_id = str(frame.get("cell", ""))
        lease = self.leases.get(cell_id)
        if lease is None or lease.host != host:
            return {"ok": True, "stale": True, "quarantined": cell_id in self._completed}
        state = self._cells.get(cell_id)
        self.leases.release(cell_id)
        if state is None:
            return {"ok": True, "stale": True, "quarantined": cell_id in self._completed}
        max_attempts = int(state.meta.get("max_attempts", self.default_max_attempts))
        if state.attempts >= max_attempts:
            record = frame.get("record") or self._quarantine_record(
                state, f"attempt {state.attempts} failed on host {host}"
            )
            self.results.put(cell_id, record)
            self.journal.append("done", cell_id)
            self._cells.pop(cell_id, None)
            self._completed.add(cell_id)
            self.quarantines += 1
            return {"ok": True, "quarantined": True}
        self.journal.append("requeue", cell_id, a=state.attempts)
        self._pending.append(cell_id)
        self.requeues += 1
        return {"ok": True, "quarantined": False}

    def _op_tick(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Reap expired leases: requeue (attempts carried) or quarantine dead cells."""
        del frame
        for lease in self.leases.expired():
            self.leases.release(lease.cell_id)
            self.expiries += 1
            state = self._cells.get(lease.cell_id)
            if state is None or lease.cell_id in self._completed:
                continue
            max_attempts = int(state.meta.get("max_attempts", self.default_max_attempts))
            if state.attempts >= max_attempts:
                record = self._quarantine_record(
                    state,
                    f"host {lease.host} lost its lease (missed the heartbeat window) "
                    f"on attempt {state.attempts}/{max_attempts}",
                )
                self.results.put(lease.cell_id, record)
                self.journal.append("done", lease.cell_id)
                self._cells.pop(lease.cell_id, None)
                self._completed.add(lease.cell_id)
                self.quarantines += 1
            else:
                self.journal.append("requeue", lease.cell_id, a=state.attempts)
                self._pending.append(lease.cell_id)
                self.requeues += 1
        return {"ok": True}

    def _quarantine_record(self, state: CellState, reason: str) -> Dict[str, Any]:
        """A ``status="failed"`` row for a cell whose attempt died with its host."""
        return {
            "result": {
                "kind": state.meta.get("kind", "?"),
                "label": state.meta.get("label", ""),
                "cell_id": state.cell_id,
                "plan": None,
                "oom": None,
                "status": "failed",
                "error": reason,
                "metrics": {},
            },
            "spec": state.meta.get("spec"),
            "seconds": 0.0,
            "attempts": state.attempts,
            "written_at": time.time(),
        }

    # ------------------------------------------------------------------ cache ops
    def _op_cache_pull(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Ship the authoritative cache (encoded) to a warm-starting host."""
        del frame
        entries = {key: encode_value(value) for key, value in self.cache.export().items()}
        return {"ok": True, "entries": entries}

    def _op_cache_push(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Absorb a host's freshly priced entries into the authoritative cache."""
        decoded = {
            str(key): decode_value(value) for key, value in (frame.get("entries") or {}).items()
        }
        adopted = self.cache.absorb(decoded)
        if adopted:
            self.cache.flush()
        return {"ok": True, "adopted": adopted}

    # ------------------------------------------------------------------ stats
    def _op_stats(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        del frame
        return {
            "ok": True,
            "namespace": self.namespace,
            "pending": len(self._pending),
            "leased": len(self.leases),
            "registered": len(self._cells),
            "completed": len(self._completed),
            "hosts": sorted(self._hosts_seen),
            "requeues": self.requeues,
            "quarantines": self.quarantines,
            "expiries": self.expiries,
            "cache_entries": len(self.cache),
        }

    # ------------------------------------------------------------------ test hooks
    def snapshot(self) -> Dict[str, Any]:
        """Queue counters via the dispatcher (so tests see a consistent view)."""
        return self.dispatch({"op": "stats"})
