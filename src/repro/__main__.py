"""``python -m repro`` — the Session-runtime command line (see repro.api.cli)."""

from repro.api.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
